"""``repro.omp`` — the documented front-end surface of the reproduction.

One import gives the whole OpenMP-flavoured programming model::

    from repro import omp

    @omp.omp_kernel("#pragma omp target device(CLOUD) map(to: A) map(from: B)",
                    "#pragma omp parallel for",
                    loop_var="i", trip_count="n",
                    reads=("A",), writes=("B",))
    def scale(lo, hi, arrays, scalars):
        arrays["B"][lo:hi] = 2 * arrays["A"][lo:hi]

    with omp.target_data(device="CLOUD", map_to={"A": a}) as env:
        scale.offload(arrays={"A": a, "B": b}, scalars={"n": n})

The module mirrors the split of the OpenMP accelerator model:

* *directives* — :func:`omp_kernel`, :class:`TargetRegion`,
  :func:`region_from_source`, :func:`offload`, :func:`target_data`,
  :func:`target_update`, and the task-graph clauses
  (``offload(..., nowait=True, depend=omp.depend(in_="E"))`` /
  :func:`taskwait`, docs/TASKGRAPH.md);
* *runtime routines* — :func:`omp_get_num_devices`,
  :func:`omp_get_default_device` / :func:`omp_set_default_device`,
  :func:`omp_target_alloc` / :func:`omp_target_free` /
  :func:`omp_target_is_present`;
* *infrastructure types* — devices, configuration, reports, events.

The package-root aliases for these names (``from repro import ...``)
finished their deprecation cycle and were removed; the tombstone
``AttributeError`` names the replacement import (removal list in
``docs/API.md``).  Import from ``repro.omp`` (model surface) or the
defining submodule (internals).

Module-level helpers operate on :meth:`OffloadRuntime.default` unless an
explicit ``runtime=`` is given, matching the global-state flavour of the C
API they are named after.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

import numpy as np

from repro.analysis import AnalysisError, AnalysisReport, verify_region
from repro.core.api import (
    FlopsPerIter,
    OffloadOptions,
    ParallelLoop,
    RegionError,
    TargetRegion,
    offload,
    omp_get_num_devices,
)
from repro.core.buffers import Buffer, ExecutionMode
from repro.core.config import CloudConfig, load_config
from repro.core.data_env import DataEnvError, DataEnvReport, MapEntry
from repro.core.decorators import OmpKernel, omp_kernel
from repro.core.device import Device, DeviceError
from repro.core.omp_ast import MapType
from repro.core.parser import DirectiveError, parse_pragma
from repro.core.plugin_cloud import CloudDevice
from repro.core.plugin_host import HostDevice
from repro.core.report import OffloadReport
from repro.core.runtime import (
    DEVICE_HOST,
    MapValue,
    OffloadRuntime,
    TargetDataScope,
)
from repro.core.source_scan import region_from_source
from repro.core.taskgraph import Depend, TaskHandle, depend
from repro.metrics.figures import demo_config
from repro.simtime.timeline import Phase

__all__ = [
    # directives / regions
    "TargetRegion", "ParallelLoop", "RegionError", "FlopsPerIter",
    "omp_kernel", "OmpKernel", "region_from_source", "parse_pragma",
    "DirectiveError",
    # offload execution
    "offload", "OffloadOptions", "ExecutionMode", "Buffer", "OffloadReport",
    # deferred target tasks (nowait / depend / taskwait)
    "taskwait", "depend", "Depend", "TaskHandle",
    # persistent data environments
    "target_data", "target_data_begin", "target_data_end", "target_update",
    "TargetDataScope", "DataEnvError", "DataEnvReport", "MapEntry", "MapType",
    # user-level runtime routines
    "omp_get_num_devices", "omp_get_default_device", "omp_set_default_device",
    "omp_target_alloc", "omp_target_free", "omp_target_is_present",
    # devices and configuration
    "OffloadRuntime", "Device", "DeviceError", "CloudDevice", "HostDevice",
    "DEVICE_HOST", "CloudConfig", "load_config", "demo_config",
    # analysis + timeline
    "AnalysisError", "AnalysisReport", "verify_region", "Phase",
]


def _runtime(runtime: OffloadRuntime | None) -> OffloadRuntime:
    return runtime if runtime is not None else OffloadRuntime.default()


# --------------------------------------------------- default-device routines
def omp_get_default_device(runtime: OffloadRuntime | None = None) -> int:
    """``omp_get_default_device()``."""
    return _runtime(runtime).get_default_device()


def omp_set_default_device(ident: Union[int, str],
                           runtime: OffloadRuntime | None = None) -> None:
    """``omp_set_default_device()`` (accepts a device name too)."""
    _runtime(runtime).set_default_device(ident)


# ------------------------------------------------------ deferred target tasks
def taskwait(runtime: OffloadRuntime | None = None) -> list[OffloadReport]:
    """``#pragma omp taskwait``: execute every deferred (``nowait``) target
    region enqueued on the runtime and block until all complete.

    This is where the task graph is built and compatible chained regions
    fuse into single Spark jobs; see :meth:`OffloadRuntime.taskwait` and
    docs/TASKGRAPH.md.  Returns the reports in enqueue order (an empty list
    when nothing was pending)."""
    return _runtime(runtime).taskwait()


# ------------------------------------------------ persistent data environment
def target_data(
    device: Union[int, str, None] = None,
    *,
    map_to: Mapping[str, MapValue] | None = None,
    map_from: Mapping[str, MapValue] | None = None,
    map_tofrom: Mapping[str, MapValue] | None = None,
    map_alloc: Mapping[str, MapValue] | None = None,
    densities: Mapping[str, float] | None = None,
    mode: ExecutionMode | None = None,
    runtime: OffloadRuntime | None = None,
):
    """``#pragma omp target data`` on the default (or given) runtime; see
    :meth:`OffloadRuntime.target_data`."""
    return _runtime(runtime).target_data(
        device, map_to=map_to, map_from=map_from, map_tofrom=map_tofrom,
        map_alloc=map_alloc, densities=densities, mode=mode)


def target_data_begin(
    device: Union[int, str, None] = None,
    *,
    runtime: OffloadRuntime | None = None,
    **map_clauses,
) -> TargetDataScope:
    """``omp target enter data``; see
    :meth:`OffloadRuntime.target_data_begin`."""
    return _runtime(runtime).target_data_begin(device, **map_clauses)


def target_data_end(scope: TargetDataScope) -> DataEnvReport:
    """``omp target exit data``; see
    :meth:`OffloadRuntime.target_data_end`."""
    return scope.runtime.target_data_end(scope)


def target_update(
    scope: TargetDataScope,
    *,
    to: "str | Iterable[str] | None" = None,
    from_: "str | Iterable[str] | None" = None,
) -> DataEnvReport:
    """``#pragma omp target update``; see
    :meth:`OffloadRuntime.target_update`."""
    return scope.runtime.target_update(scope, to=to, from_=from_)


# --------------------------------------------------- target memory routines
def omp_target_alloc(
    name: str,
    length: int,
    *,
    device: Union[int, str, None] = None,
    runtime: OffloadRuntime | None = None,
    dtype=np.float32,
    density: float = 1.0,
) -> str:
    """``omp_target_alloc()``: reserve device space for ``name`` without any
    host association (a persistent ``alloc`` map entry).  Returns ``name`` —
    the reproduction's analogue of the device pointer.  Pair with
    :func:`omp_target_free`."""
    rt = _runtime(runtime)
    dev = rt._resolve_device(device)
    dev.initialize()
    buf = Buffer(name, length=length, dtype=dtype, density=density)
    if dev.env.is_mapped(name):
        raise DataEnvError(f"{name!r} is already mapped on {dev.name}")
    dev.env.begin(buf, MapType.ALLOC, persistent=True)
    return name


def omp_target_free(
    name: str,
    *,
    device: Union[int, str, None] = None,
    runtime: OffloadRuntime | None = None,
) -> None:
    """``omp_target_free()``: release an :func:`omp_target_alloc` entry."""
    rt = _runtime(runtime)
    dev = rt._resolve_device(device)
    dev.env.end(name)


def omp_target_is_present(
    name: str,
    *,
    device: Union[int, str, None] = None,
    runtime: OffloadRuntime | None = None,
) -> bool:
    """``omp_target_is_present()``: does the device hold a map entry?"""
    rt = _runtime(runtime)
    dev = rt._resolve_device(device)
    return dev.env.is_mapped(name)
