"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <benchmark>`` — offload one paper workload (functional at a test
  size, or modeled at paper scale with ``--modeled``) and print the report;
* ``figures [benchmark ...]`` — regenerate Figure 4 / Figure 5 tables;
* ``headlines`` — the Section-IV paper-vs-measured table;
* ``validate`` — run every workload functionally against its NumPy oracle;
* ``lint`` — statically verify offload regions (map clauses, dataflow,
  partitions, races) and exit with the worst severity found
  (``--fix-maps`` appends the inferred-clause suggestions);
* ``infer`` — run clause inference and print the provably minimal
  map/partition pragmas per region, with per-array evidence;
* ``profile`` — critical-path profile of one offload: span dependency
  graph, cost/byte attribution per phase, straggler diagnostics and
  what-if estimates (``--json``, ``--folded``, ``--trace``, ``--gantt``;
  see docs/OBSERVABILITY.md, "Profiling");
* ``graph`` — print the inferred task graph of a benchmark's offload
  chain: nodes, dependence edges, fusion groups and waves, plus any
  fusion rejections (see docs/TASKGRAPH.md);
* ``bench`` — run paper benchmarks under instrumentation, write
  ``BENCH_<name>.json`` and optionally fail on milestone regressions
  (``--compare``; see docs/OBSERVABILITY.md);
* ``chaos`` — seeded fault-injection sweeps with oracle and invariant
  checks (see docs/RESILIENCE.md);
* ``config <path>`` — write an example cloud_rtl.ini.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.api import offload
from repro.core.buffers import ExecutionMode
from repro.core.config import write_example_config
from repro.core.plugin_cloud import CloudDevice
from repro.core.runtime import OffloadRuntime
from repro.metrics.figures import (
    CORE_SWEEP,
    demo_config,
    figure4_series,
    figure5_series,
    headline_numbers,
)
from repro.metrics.tables import format_percent, format_table
from repro.workloads import WORKLOADS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OmpCloud reproduction: the cloud as an OpenMP offloading device",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="offload one benchmark")
    run.add_argument("benchmark", choices=sorted(WORKLOADS))
    run.add_argument("--cores", type=int, default=32,
                     help="physical cores granted to the job (default 32)")
    run.add_argument("--workers", type=int, default=16,
                     help="worker nodes in the cluster (default 16)")
    run.add_argument("--size", type=int, default=None,
                     help="problem size N/M (default: test size, or paper size with --modeled)")
    run.add_argument("--density", type=float, default=1.0,
                     help="input nonzero density (1.0 dense, 0.05 sparse)")
    run.add_argument("--modeled", action="store_true",
                     help="paper-scale modeled run (no data allocated)")
    run.add_argument("--gantt", action="store_true",
                     help="render an ASCII Gantt chart of the offload timeline")
    run.add_argument("--json", action="store_true",
                     help="print the report as JSON instead of the summary")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="export the timeline as a Chrome/Perfetto trace file")

    figures = sub.add_parser("figures", help="regenerate Figure 4/5 tables")
    figures.add_argument("benchmarks", nargs="*", default=None,
                         help="benchmarks to include (default: all)")
    figures.add_argument("--csv", metavar="PATH", default=None,
                         help="also export the full sweep grid as CSV")

    sub.add_parser("headlines", help="Section-IV paper-vs-measured numbers")
    validate = sub.add_parser("validate",
                              help="verify every kernel against its oracle")
    validate.add_argument("--json", action="store_true",
                          help="machine-readable per-workload report")
    sub.add_parser("calibration", help="print the performance-model constants")

    lint = sub.add_parser(
        "lint", help="statically verify offload regions (see docs/ANALYSIS.md)")
    lint.add_argument("targets", nargs="+",
                      help="benchmark name, 'all', a Python module (.py), or "
                           "annotated C source")
    lint.add_argument("--json", action="store_true",
                      help="emit diagnostics as JSON")
    lint.add_argument("--size", type=int, default=None,
                      help="problem size for benchmark targets "
                           "(default: test size)")
    lint.add_argument("--fix-maps", action="store_true",
                      help="append inferred-clause fix-it suggestions "
                           "(see docs/ANALYSIS.md, 'Clause inference')")

    infer = sub.add_parser(
        "infer", help="synthesize minimal map/partition clauses "
                      "(see docs/ANALYSIS.md)")
    infer.add_argument("targets", nargs="+",
                       help="benchmark name, 'all', a Python module (.py), "
                            "or annotated C source")
    infer.add_argument("--json", action="store_true",
                       help="emit inference reports as JSON")
    infer.add_argument("--size", type=int, default=None,
                       help="problem size for benchmark targets "
                            "(default: test size)")

    profile = sub.add_parser(
        "profile", help="critical-path profile of one benchmark offload "
                        "(see docs/OBSERVABILITY.md, 'Profiling')")
    profile.add_argument("benchmark",
                         choices=sorted({*WORKLOADS, "chained_3mm"}))
    profile.add_argument("--cores", type=int, default=32,
                         help="physical cores granted to the job (default 32)")
    profile.add_argument("--workers", type=int, default=16,
                         help="worker nodes in the cluster (default 16)")
    profile.add_argument("--size", type=int, default=None,
                         help="problem size N/M (default: paper size, or "
                              "test size with --quick)")
    profile.add_argument("--density", type=float, default=1.0,
                         help="input nonzero density (1.0 dense, 0.05 sparse)")
    profile.add_argument("--quick", action="store_true",
                         help="test-size modeled run")
    profile.add_argument("--json", action="store_true",
                         help="machine-readable profile report")
    profile.add_argument("--folded", metavar="PATH", default=None,
                         help="write folded flamegraph stacks "
                              "(flamegraph.pl / speedscope format)")
    profile.add_argument("--folded-mode", choices=["busy", "critical"],
                         default="busy",
                         help="flamegraph view: resource-seconds (busy) or "
                              "critical-path self time (critical)")
    profile.add_argument("--trace", metavar="PATH", default=None,
                         help="export a Chrome/Perfetto trace with the "
                              "critical-path highlight track")
    profile.add_argument("--gantt", action="store_true",
                         help="render an ASCII Gantt chart with the "
                              "[critical] lane")

    graph = sub.add_parser(
        "graph", help="print a benchmark's inferred task graph "
                      "(see docs/TASKGRAPH.md)")
    graph.add_argument("benchmark",
                       choices=sorted({*WORKLOADS, "chained_3mm"}))
    graph.add_argument("--size", type=int, default=None,
                       help="problem size N/M (default: test size)")
    graph.add_argument("--unmanaged", action="store_true",
                       help="plan without a target-data environment (shows "
                            "the intermediate-not-resident degradation)")
    graph.add_argument("--json", action="store_true",
                       help="machine-readable plan")

    bench = sub.add_parser(
        "bench", help="instrumented benchmark runs + regression check")
    bench.add_argument("targets", nargs="*",
                       help="benchmark names or 'all' (default: from the "
                            "--compare baseline, else all)")
    bench.add_argument("--cores", type=int, default=32,
                       help="physical cores granted to the job (default 32)")
    bench.add_argument("--workers", type=int, default=16,
                       help="worker nodes in the cluster (default 16)")
    bench.add_argument("--size", type=int, default=None,
                       help="problem size N/M (default: paper size, or test "
                            "size with --quick)")
    bench.add_argument("--density", type=float, default=1.0,
                       help="input nonzero density (1.0 dense, 0.05 sparse)")
    bench.add_argument("--quick", action="store_true",
                       help="test-size runs (what the CI bench job executes)")
    bench.add_argument("--out", metavar="DIR", default=".",
                       help="directory for BENCH_<name>.json (default: .)")
    bench.add_argument("--json", action="store_true",
                       help="also print each payload to stdout")
    bench.add_argument("--compare", metavar="BASELINE", default=None,
                       help="BENCH_*.json file or directory of them; exit "
                            "non-zero when a milestone regresses past the "
                            "threshold")
    bench.add_argument("--threshold", type=float, default=0.10,
                       help="relative regression threshold (default 0.10)")

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection sweeps (see docs/RESILIENCE.md)")
    chaos.add_argument("benchmarks", nargs="*",
                       help="benchmark names or 'all' (default: all)")
    chaos.add_argument("--seeds", type=int, default=5,
                       help="seeds per benchmark (default 5)")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first seed value (default 0)")
    chaos.add_argument("--recovery", choices=["none", "restart", "resume"],
                       default="resume",
                       help="recovery policy under test (default resume)")
    chaos.add_argument("--journal-dir", metavar="DIR", default=None,
                       help="dump each run's offload journal here")
    chaos.add_argument("--json", action="store_true",
                       help="machine-readable per-run report")

    config = sub.add_parser("config", help="write an example cloud_rtl.ini")
    config.add_argument("path")
    return parser


def _cmd_run(args) -> int:
    spec = WORKLOADS[args.benchmark]
    runtime = OffloadRuntime()
    runtime.register(CloudDevice(demo_config(n_workers=args.workers),
                                 physical_cores=args.cores))
    if args.modeled:
        size = args.size if args.size is not None else spec.paper_size
        region = spec.build_region("CLOUD")
        densities = {i.name: args.density for c in region.maps for i in c.items}
        report = offload(region, scalars=spec.scalars(size),
                         runtime=runtime, mode=ExecutionMode.MODELED,
                         densities=densities)
    else:
        size = args.size if args.size is not None else spec.test_size
        scalars = spec.scalars(size)
        arrays = spec.inputs(size, density=args.density, seed=0)
        expected = spec.reference({k: v.copy() for k, v in arrays.items()}, scalars)
        report = offload(spec.build_region("CLOUD"), arrays=arrays,
                         scalars=scalars, runtime=runtime)
        for key, want in expected.items():
            if not np.allclose(arrays[key], want, rtol=3e-5, atol=1e-4):
                print(f"VERIFICATION FAILED for output {key!r}", file=sys.stderr)
                return 1
        print(f"verified: {args.benchmark} output matches the NumPy oracle")
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    if args.gantt:
        from repro.metrics.gantt import render_gantt

        print()
        print(render_gantt(report.timeline, width=100, max_rows=24))
    if args.trace:
        from repro.metrics.tracing import write_chrome_trace

        write_chrome_trace(report.timeline, args.trace)
        print(f"wrote Chrome/Perfetto trace to {args.trace}")
    return 0


def _cmd_figures(args) -> int:
    names = args.benchmarks or sorted(WORKLOADS)
    for name in names:
        if name not in WORKLOADS:
            print(f"unknown benchmark {name!r}; known: {sorted(WORKLOADS)}",
                  file=sys.stderr)
            return 2
    for name in names:
        spec = WORKLOADS[name]
        rows4 = figure4_series(name, CORE_SWEEP)
        print(format_table(
            ["cores", "OmpThread", "full", "spark", "computation"],
            [[r.cores, r.omp_thread, r.cloud_full, r.cloud_spark,
              r.cloud_computation] for r in rows4],
            title=f"Figure {spec.figure_panel.split('/')[0]} - {name} (speedups)",
        ))
        print()
        rows5 = figure5_series(name, CORE_SWEEP)
        print(format_table(
            ["data", "cores", "host-comm s", "spark-ovh s", "compute s"],
            [[r.density_label, r.cores, r.host_comm_s, r.spark_overhead_s,
              r.computation_s] for r in rows5],
            title=f"Figure {spec.figure_panel.split('/')[1]} - {name} (breakdown)",
        ))
        print()
    if args.csv:
        from repro.metrics.sweep import sweep, to_csv

        rows = sweep(names, CORE_SWEEP, densities=(1.0, 0.05))
        with open(args.csv, "w") as fh:
            fh.write(to_csv(rows))
        print(f"wrote sweep CSV to {args.csv}")
    return 0


def _cmd_headlines() -> int:
    h = headline_numbers()
    rows = []
    for key, value in h.items():
        rows.append([key, format_percent(value) if "overhead" in key else f"{value:.1f}"])
    print(format_table(["quantity", "measured"], rows,
                       title="Section IV headline numbers"))
    return 0


def _cmd_validate(args) -> int:
    import json

    from repro.analysis import json_report

    items: list[dict[str, object]] = []
    for name, spec in sorted(WORKLOADS.items()):
        runtime = OffloadRuntime()
        runtime.register(CloudDevice(demo_config(n_workers=4), physical_cores=16))
        scalars = spec.scalars(spec.test_size)
        arrays = spec.inputs(spec.test_size, density=1.0, seed=1)
        expected = spec.reference({k: v.copy() for k, v in arrays.items()}, scalars)
        offload(spec.build_region("CLOUD"), arrays=arrays, scalars=scalars,
                runtime=runtime)
        ok = all(np.allclose(arrays[k], v, rtol=3e-5, atol=1e-4)
                 for k, v in expected.items())
        max_err = max(
            (float(np.max(np.abs(arrays[k] - v))) for k, v in expected.items()),
            default=0.0,
        )
        items.append({"name": name, "ok": ok, "max_abs_error": max_err})
        if not args.json:
            print(f"{name:10s} {'OK' if ok else 'FAILED'}")
    all_ok = all(bool(item["ok"]) for item in items)
    if args.json:
        print(json.dumps(json_report("validate", all_ok, items), indent=2))
    return 0 if all_ok else 1


def _analysis_targets(args):
    """Resolve lint/infer CLI targets to ``(region, scalars,
    usage_reliable, origin)`` tuples plus the report of scan/build
    problems.  ``origin`` names the target a region came from — regions
    sharing an origin execute as one program, which is what the OMP203
    fusable-chain advisory reasons over.

    Returns ``(None, None)`` after printing to stderr when a file target
    cannot be read (the callers exit 2, matching the old lint behavior).
    """
    from repro.analysis import (
        AnalysisReport,
        python_file_regions,
        source_regions,
    )

    targets: list[str] = []
    for target in args.targets:
        if target == "all":
            targets.extend(sorted(WORKLOADS))
        else:
            targets.append(target)

    resolved = []
    report = AnalysisReport()
    for target in targets:
        if target in WORKLOADS:
            spec = WORKLOADS[target]
            size = args.size if args.size is not None else spec.test_size
            resolved.append(
                (spec.build_region("CLOUD"), spec.scalars(size), True, target))
        elif target.endswith(".py"):
            regions, part = python_file_regions(target)
            report.extend(part.diagnostics)
            resolved.extend((region, None, True, target)
                            for region in regions)
        else:
            try:
                with open(target) as fh:
                    text = fh.read()
            except OSError as exc:
                print(f"cannot read lint target {target!r}: {exc}",
                      file=sys.stderr)
                return None, None
            regions, part = source_regions(text, name=target)
            report.extend(part.diagnostics)
            # Scanned sources carry no bodies: access sets were inferred
            # from the pragmas, so absence-based checks are unreliable.
            resolved.extend((region, None, False, target)
                            for region in regions)
    return resolved, report


def _cmd_lint(args) -> int:
    import json

    from repro.analysis import (
        check_fusable_chains,
        json_report,
        verify_region,
    )

    resolved, report = _analysis_targets(args)
    if resolved is None:
        return 2
    for region, scalars, usage_reliable, _origin in resolved:
        report.extend(verify_region(
            region, scalars, usage_reliable=usage_reliable).diagnostics)

    # OMP203 advisory: regions from one target execute as one program, so
    # a fusable chain among them is a missed nowait/taskwait opportunity.
    by_origin: dict[str, list] = {}
    for region, scalars, _usage_reliable, origin in resolved:
        by_origin.setdefault(origin, []).append((region, scalars))
    for items in by_origin.values():
        merged_scalars: dict = {}
        for _region, scalars in items:
            merged_scalars.update(scalars or {})
        report.extend(check_fusable_chains(
            [region for region, _scalars in items], merged_scalars or None))

    suggestions: list[dict] = []
    if args.fix_maps:
        from repro.analysis import infer_region

        for region, scalars, _usage_reliable, _origin in resolved:
            rep = infer_region(region, scalars)
            if not rep.degraded:
                suggestions.extend(rep.suggestions())

    if args.json:
        payload = json_report(
            "lint", report.ok, [d.to_dict() for d in report.diagnostics])
        if args.fix_maps:
            payload["suggestions"] = suggestions
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        if args.fix_maps and suggestions:
            print("suggested fixes:")
            for sug in suggestions:
                loop = sug.get("loop")
                where = f"loop({loop}) " if loop else ""
                print(f"  {sug['region']}: {where}{sug['suggested']}")
    return report.exit_code


def _cmd_infer(args) -> int:
    import json

    from repro.analysis import infer_region, json_report

    resolved, report = _analysis_targets(args)
    if resolved is None:
        return 2
    reports = [infer_region(region, scalars)
               for region, scalars, _usage_reliable, _origin in resolved]
    if args.json:
        ok = report.ok and all(not rep.degraded for rep in reports)
        payload = json_report("infer", ok, [rep.to_item() for rep in reports])
        print(json.dumps(payload, indent=2))
    else:
        if report.diagnostics:
            print(report.render())
        for rep in reports:
            print(rep.render())
        if not reports:
            print("no regions to analyze")
    return report.exit_code


def _cmd_profile(args) -> int:
    import dataclasses as _dc
    import json

    from repro.analysis import json_report
    from repro.obs.events import EventBus, use_bus
    from repro.obs.profile import (
        WhatIf,
        inferred_upload_scale,
        profile_offloads,
    )
    from repro.simtime.timeline import Phase

    bus = EventBus(keep_history=True)
    rt = OffloadRuntime()
    # Manage the instances so the billing ledger has real line items for the
    # dollar attribution (the profiler's whole point).
    dev = CloudDevice(_dc.replace(demo_config(n_workers=args.workers),
                                  manage_instances=True),
                      physical_cores=args.cores)
    rt.register(dev)

    reports = []
    infer_target = None  # (region, scalars) for the inferred-minimal what-if
    if args.benchmark == "chained_3mm":
        from repro.workloads.polybench import mm3_chain_regions

        spec = WORKLOADS["3mm"]
        n = args.size if args.size is not None else (
            spec.test_size if args.quick else spec.paper_size)
        names = ("A", "B", "C", "D", "E", "F", "G")
        with use_bus(bus):
            with rt.target_data(
                    device="CLOUD",
                    map_to={v: n * n for v in ("A", "B", "C", "D")},
                    map_alloc={"E": n * n, "F": n * n},
                    densities={v: args.density for v in names},
                    mode=ExecutionMode.MODELED):
                for region in mm3_chain_regions("CLOUD"):
                    reports.append(offload(
                        region, scalars={"N": n}, runtime=rt,
                        mode=ExecutionMode.MODELED,
                        lengths={v: n * n for v in names},
                        densities={v: args.density for v in names}))
    else:
        spec = WORKLOADS[args.benchmark]
        n = args.size if args.size is not None else (
            spec.test_size if args.quick else spec.paper_size)
        region = spec.build_region("CLOUD")
        scalars = spec.scalars(n)
        densities = {i.name: args.density
                     for c in region.maps for i in c.items}
        with use_bus(bus):
            reports.append(offload(region, scalars=scalars, runtime=rt,
                                   mode=ExecutionMode.MODELED,
                                   densities=densities))
        infer_target = (region, scalars)

    profiles = profile_offloads(bus, reports, ledger=dev.billing_ledger)
    ok = True
    items = []
    extras: list[list[WhatIf]] = []
    for prof in profiles:
        item = prof.to_item()
        extra: list[WhatIf] = []
        if infer_target is not None:
            scale = inferred_upload_scale(infer_target[0], infer_target[1],
                                          prof, bus.events)
            if scale is not None:
                extra.append(WhatIf(
                    "inferred_minimal_upload",
                    prof.scaled_phases({Phase.HOST_UPLOAD: scale}),
                    prof.wall_s))
        item["what_if"].extend(w.to_dict() for w in extra)
        total = sum(prof.phase_self_s.values())
        ok = (ok and prof.critical_s <= prof.wall_s + prof.graph.eps
              and abs(total - prof.wall_s) <= 0.01 * max(prof.wall_s, 1e-9))
        items.append(item)
        extras.append(extra)

    if args.json:
        print(json.dumps(json_report("profile", ok, items), indent=2))
    else:
        for i, prof in enumerate(profiles):
            if i:
                print()
            print(prof.render())
            for w in extras[i]:
                print(f"    {w.name:<15} {w.estimate_s:10.3f} s  "
                      f"(-{w.saved_s:.3f} s, -{w.saved_pct:.1f}%)")

    last = profiles[-1]
    if args.gantt:
        from repro.metrics.gantt import render_gantt

        print()
        print(render_gantt(reports[-1].timeline, width=100, max_rows=24,
                           critical=last.critical_spans))
    if args.folded:
        from repro.obs.flamegraph import folded_stacks

        with open(args.folded, "w") as fh:
            for prof in profiles:
                fh.write(folded_stacks(prof, mode=args.folded_mode))
        print(f"wrote folded flamegraph stacks to {args.folded}")
    if args.trace:
        from repro.metrics.tracing import write_chrome_trace

        write_chrome_trace(reports[-1].timeline, args.trace,
                           events=bus.events, critical=last.critical_spans)
        print(f"wrote Chrome/Perfetto trace to {args.trace}")
    return 0 if ok else 1


def _cmd_graph(args) -> int:
    import json

    from repro.analysis import json_report
    from repro.core.taskgraph import GraphNode, build_plan

    if args.benchmark == "chained_3mm":
        from repro.workloads.polybench import mm3_chain_regions

        spec = WORKLOADS["3mm"]
        n = args.size if args.size is not None else spec.test_size
        regions = mm3_chain_regions("CLOUD")
        scalars = {"N": n}
        env = {} if args.unmanaged else {
            "A": "to", "B": "to", "C": "to", "D": "to",
            "E": "alloc", "F": "alloc",
        }
    else:
        spec = WORKLOADS[args.benchmark]
        n = args.size if args.size is not None else spec.test_size
        regions = [spec.build_region("CLOUD")]
        scalars = dict(spec.scalars(n))
        env = {}

    itemsize = np.dtype(np.float32).itemsize
    nodes = [
        GraphNode(
            index=i, region=region, device="CLOUD", host=False,
            mode="modeled", strict=False, depend=None, scalars=scalars,
            nbytes={item.name: n * n * itemsize
                    for clause in region.maps for item in clause.items},
        )
        for i, region in enumerate(regions)
    ]
    plan = build_plan(nodes, resident=lambda _dev, name: env.get(name))

    if args.json:
        payload = {
            "benchmark": args.benchmark,
            "size": n,
            "managed": not args.unmanaged,
            "nodes": [
                {"index": node.index, "region": node.region.name,
                 "device": node.device, "mode": node.mode,
                 "reads": sorted(node.reads), "writes": sorted(node.writes)}
                for node in plan.nodes
            ],
            "edges": [
                {"src": e.src, "dst": e.dst, "kind": e.kind,
                 "arrays": list(e.arrays)}
                for e in plan.edges
            ],
            "groups": [
                {"members": [plan.nodes[i].region.name for i in g.members],
                 "fused": g.fused, "wave": g.wave,
                 "elided": list(g.elided),
                 "materialized": list(g.materialized),
                 "bytes_saved": g.bytes_saved}
                for g in plan.groups
            ],
            "waves": [list(wave) for wave in plan.waves],
            "rejected": [
                {"members": list(members), "reason": reason}
                for members, reason in plan.rejected
            ],
        }
        print(json.dumps(json_report("graph", True, [payload]), indent=2))
        return 0

    managed = "unmanaged" if args.unmanaged else "managed env"
    print(f"task graph: {args.benchmark} (size {n}, device CLOUD, {managed})")
    print("  nodes:")
    for node in plan.nodes:
        print(f"    [{node.index}] {node.region.name:<12s} "
              f"reads {', '.join(sorted(node.reads)) or '-':<12s} "
              f"writes {', '.join(sorted(node.writes)) or '-'}")
    print("  edges:")
    if not plan.edges:
        print("    (none)")
    for e in plan.edges:
        print(f"    [{e.src}] -> [{e.dst}]  {e.kind} "
              f"({', '.join(e.arrays)})")
    print("  schedule:")
    for wi, wave in enumerate(plan.waves):
        print(f"    wave {wi}:")
        for gi in wave:
            g = plan.groups[gi]
            names = " + ".join(plan.nodes[i].region.name for i in g.members)
            if g.fused:
                detail = f"FUSED  {names}"
                if g.elided:
                    detail += f"   elides {', '.join(g.elided)}"
                if g.materialized:
                    detail += f"   materializes {', '.join(g.materialized)}"
                detail += f"   saves {g.bytes_saved} wire bytes"
            else:
                detail = names
            print(f"      group {gi}: {detail}")
    if plan.rejected:
        print("  rejected fusions:")
        for members, reason in plan.rejected:
            print(f"    {' + '.join(members)}: {reason}")
    return 0


def _cmd_bench(args) -> int:
    import json
    import os

    from repro.obs.bench import (
        EXTRA_BENCHMARKS,
        bench_filename,
        compare,
        load_bench,
        run_benchmark,
        write_bench,
    )

    known = sorted({*WORKLOADS, *EXTRA_BENCHMARKS})

    # Baselines: one file, or a directory of BENCH_<name>.json.
    baselines: dict[str, dict] = {}
    if args.compare:
        if os.path.isdir(args.compare):
            for entry in sorted(os.listdir(args.compare)):
                if entry.startswith("BENCH_") and entry.endswith(".json"):
                    payload = load_bench(os.path.join(args.compare, entry))
                    baselines[str(payload["benchmark"])] = payload
        else:
            payload = load_bench(args.compare)
            baselines[str(payload["benchmark"])] = payload

    names: list[str] = []
    for target in args.targets:
        names.extend(known if target == "all" else [target])
    if not names:
        names = sorted(baselines) if baselines else known
    for name in names:
        if name not in WORKLOADS and name not in EXTRA_BENCHMARKS:
            print(f"unknown benchmark {name!r}; known: {known}",
                  file=sys.stderr)
            return 2

    os.makedirs(args.out, exist_ok=True)
    regressions = []
    for name in names:
        payload = run_benchmark(name, cores=args.cores, n_workers=args.workers,
                                density=args.density, size=args.size,
                                quick=args.quick)
        path = write_bench(payload, args.out)
        ms = payload["milestones"]
        print(f"{name:10s} full {ms['full_s']:12.3f} s   "
              f"spark {ms['spark_job_s']:12.3f} s   "
              f"computation {ms['computation_s']:12.3f} s   -> {path}")
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        baseline = baselines.get(name)
        if baseline is not None:
            found = compare(baseline, payload, threshold=args.threshold)
            for reg in found:
                print(f"REGRESSION: {reg.describe()}", file=sys.stderr)
            regressions.extend(found)
        elif baselines:
            print(f"note: no baseline {bench_filename(name)} to compare "
                  f"against", file=sys.stderr)
    if regressions:
        print(f"{len(regressions)} milestone regression(s) above "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    import json

    from repro.analysis import json_report
    from repro.resilience.chaos import run_chaos

    names: list[str] = []
    for target in args.benchmarks:
        names.extend(sorted(WORKLOADS) if target == "all" else [target])
    if not names:
        names = sorted(WORKLOADS)
    for name in names:
        if name not in WORKLOADS:
            print(f"unknown benchmark {name!r}; known: {sorted(WORKLOADS)}",
                  file=sys.stderr)
            return 2

    items: list[dict[str, object]] = []
    for name in names:
        for seed in range(args.seed_base, args.seed_base + args.seeds):
            result = run_chaos(name, seed, recovery=args.recovery,
                               journal_dir=args.journal_dir)
            items.append(result.to_item())
            if not args.json:
                faults = result.injected
                tag = "OK" if result.ok else "FAILED"
                print(f"{name:10s} seed {seed:3d} {tag:6s} "
                      f"device={result.device:5s} "
                      f"resumes={result.resumes} "
                      f"skipped={result.tiles_skipped:2d} "
                      f"corrupt={result.corruption_detected} "
                      f"death={faults['driver_dies_at'] is not None}")
                for failure in result.failures:
                    print(f"           {failure}", file=sys.stderr)
    all_ok = all(bool(item["ok"]) for item in items)
    if args.json:
        print(json.dumps(json_report("chaos", all_ok, items), indent=2))
    return 0 if all_ok else 1


def _cmd_calibration() -> int:
    import dataclasses

    from repro.perfmodel.calibration import DEFAULT_CALIBRATION

    rows = []
    for f in dataclasses.fields(DEFAULT_CALIBRATION):
        value = getattr(DEFAULT_CALIBRATION, f.name)
        rows.append([f.name, f"{value:g}" if isinstance(value, float) else str(value)])
    print(format_table(["constant", "value"], rows,
                       title="Calibrated performance-model constants "
                             "(see docs/MODEL.md for provenance)"))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "headlines":
        return _cmd_headlines()
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "infer":
        return _cmd_infer(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "graph":
        return _cmd_graph(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "calibration":
        return _cmd_calibration()
    if args.command == "config":
        path = write_example_config(args.path)
        print(f"wrote example configuration to {path}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
