"""Counters, gauges and histograms with a Prometheus text exposition.

The registry is deliberately small and dependency-free: metric names follow
the Prometheus data model (``[a-zA-Z_:][a-zA-Z0-9_:]*``), label values are
free-form, histograms use cumulative ``le`` buckets, and
:meth:`MetricsRegistry.to_prometheus` renders the standard text format::

    # HELP repro_bytes_up_total Raw bytes staged host -> device storage.
    # TYPE repro_bytes_up_total counter
    repro_bytes_up_total{buffer="A"} 4.194304e+06

Everything is deterministic — metric families and label sets are emitted in
sorted order — so exposition output and :meth:`MetricsRegistry.snapshot`
dictionaries diff cleanly across runs, which the benchmark-regression
harness (:mod:`repro.obs.bench`) relies on.

Time units are *simulated* seconds throughout, matching the rest of the
reproduction.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Iterable, Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Cumulative upper bounds for duration histograms (simulated seconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.02, 0.1, 0.5, 1.0, 5.0, 20.0, 60.0, 300.0, 1800.0,
)

LabelKey = tuple[tuple[str, str], ...]


class MetricError(Exception):
    """Bad metric name, label, or kind mismatch."""


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise MetricError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Prometheus number formatting: integers without a trailing .0."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Metric:
    """One metric family: a name plus per-labelset values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    # Subclasses implement: _sample_lines(), _snapshot_values()

    def exposition(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        lines.extend(self._sample_lines())
        return lines

    def _sample_lines(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _snapshot_values(self) -> list[dict[str, object]]:  # pragma: no cover
        raise NotImplementedError

    def snapshot(self) -> dict[str, object]:
        return {"kind": self.kind, "help": self.help,
                "values": self._snapshot_values()}


class Counter(Metric):
    """Monotonically increasing count (bytes moved, retries, tasks run)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return sum(self._values.values())

    def _sample_lines(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}{_render_labels(k)} {_fmt(v)}" for k, v in items]

    def _snapshot_values(self) -> list[dict[str, object]]:
        with self._lock:
            items = sorted(self._values.items())
        return [{"labels": dict(k), "value": v} for k, v in items]


class Gauge(Metric):
    """A value that goes up and down (in-flight tasks, active workers)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _sample_lines(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}{_render_labels(k)} {_fmt(v)}" for k, v in items]

    def _snapshot_values(self) -> list[dict[str, object]]:
        with self._lock:
            items = sorted(self._values.items())
        return [{"labels": dict(k), "value": v} for k, v in items]


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(Metric):
    """Distribution with cumulative ``le`` buckets (task/offload durations)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {name} needs at least one bucket")
        self.buckets: tuple[float, ...] = tuple(bounds)
        self._states: dict[LabelKey, _HistogramState] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state.bucket_counts[i] += 1
            state.total += value
            state.count += 1

    def count(self, **labels: str) -> int:
        with self._lock:
            state = self._states.get(_label_key(labels))
            return state.count if state is not None else 0

    def quantile(self, q: float, **labels: str) -> float:
        """Deterministic quantile estimate from the cumulative buckets.

        Follows ``histogram_quantile`` semantics: find the first bucket whose
        cumulative count reaches ``q * count`` and interpolate linearly inside
        it (the first bucket's lower edge is 0, matching the non-negative
        durations these histograms record).  Observations beyond the last
        finite bound clamp to that bound.  Returns 0.0 for an empty state.
        Exact same answer from a parsed text exposition — the round-trip
        tests rely on that.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            state = self._states.get(_label_key(labels))
            if state is None or state.count == 0:
                return 0.0
            counts = list(state.bucket_counts)
            total = state.count
        rank = q * total
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in zip(self.buckets, counts):
            if cum >= rank and cum > prev_cum:
                frac = (rank - prev_cum) / (cum - prev_cum)
                return prev_bound + frac * (bound - prev_bound)
            prev_bound, prev_cum = bound, cum
        # rank falls in the +Inf bucket: clamp to the largest finite bound.
        return self.buckets[-1]

    def quantiles(self, qs: Iterable[float] = (0.5, 0.95, 0.99),
                  **labels: str) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` via :meth:`quantile`."""
        return {f"p{q * 100:g}": self.quantile(q, **labels) for q in qs}

    def sum(self, **labels: str) -> float:
        with self._lock:
            state = self._states.get(_label_key(labels))
            return state.total if state is not None else 0.0

    def _sample_lines(self) -> list[str]:
        with self._lock:
            items = sorted((k, (list(s.bucket_counts), s.total, s.count))
                           for k, s in self._states.items())
        lines = []
        for key, (bucket_counts, total, count) in items:
            for bound, cumulative in zip(self.buckets, bucket_counts):
                le = (("le", _fmt(bound)),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(key, le)} {cumulative}")
            inf = (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_render_labels(key, inf)} {count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {_fmt(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def _snapshot_values(self) -> list[dict[str, object]]:
        with self._lock:
            items = sorted((k, (list(s.bucket_counts), s.total, s.count))
                           for k, s in self._states.items())
        return [
            {
                "labels": dict(key),
                "buckets": {_fmt(b): c
                            for b, c in zip(self.buckets, bucket_counts)},
                "sum": total,
                "count": count,
            }
            for key, (bucket_counts, total, count) in items
        ]


class MetricsRegistry:
    """A named collection of metrics with one exposition endpoint.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same object, asking for a name that exists
    with a different kind raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, help: str,
                       **kwargs: object) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def register(self, metric: Metric) -> Metric:
        """Adopt an externally-constructed metric (e.g. an
        :class:`~repro.obs.events.EventBus`'s subscriber-error counter) so it
        appears in this registry's exposition and snapshots.  Registering the
        same object twice is a no-op; a *different* metric under an existing
        name raises :class:`MetricError`."""
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if existing is metric:
                    return metric
                raise MetricError(
                    f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(Counter, name, help)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(Gauge, name, help)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, buckets=buckets)
        assert isinstance(metric, Histogram)
        return metric

    # ----------------------------------------------------------------- output
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Metric:
        with self._lock:
            try:
                return self._metrics[name]
            except KeyError:
                raise MetricError(f"no metric named {name!r}") from None

    def to_prometheus(self) -> str:
        """The Prometheus/OpenMetrics text exposition of every metric."""
        lines: list[str] = []
        for name in self.names():
            lines.extend(self.get(name).exposition())
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, object]:
        """JSON-serializable state of every metric (sorted, deterministic)."""
        return {name: self.get(name).snapshot() for name in self.names()}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
