"""Runtime observability: event bus, metrics, derived views, benchmarks.

See ``docs/OBSERVABILITY.md`` for the event catalogue, metric names,
exposition format and bench JSON schema.
"""

from repro.obs.bench import (
    REGRESSION_MILESTONES,
    SCHEMA,
    Regression,
    bench_filename,
    compare,
    load_bench,
    run_benchmark,
    write_bench,
)
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_TYPES,
    Event,
    EventBus,
    get_bus,
    set_bus,
    use_bus,
)
from repro.obs.flamegraph import folded_stacks
from repro.obs.metrics_registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.profile import (
    OffloadProfile,
    SpanGraph,
    StragglerStats,
    WhatIf,
    inferred_upload_scale,
    profile_offloads,
    profile_report,
)
from repro.obs.subscribers import (
    DerivedReport,
    MetricsSubscriber,
    ReportBuilder,
    SparkLogSink,
)

__all__ = [
    "EVENT_KINDS",
    "EVENT_TYPES",
    "Event",
    "EventBus",
    "get_bus",
    "set_bus",
    "use_bus",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "OffloadProfile",
    "SpanGraph",
    "StragglerStats",
    "WhatIf",
    "folded_stacks",
    "inferred_upload_scale",
    "profile_offloads",
    "profile_report",
    "DerivedReport",
    "MetricsSubscriber",
    "ReportBuilder",
    "SparkLogSink",
    "REGRESSION_MILESTONES",
    "SCHEMA",
    "Regression",
    "bench_filename",
    "compare",
    "load_bench",
    "run_benchmark",
    "write_bench",
]
