"""Critical-path profiler: where an offload's wall clock actually went.

The observability layer *records* what happened (events, spans, metrics);
this module computes what *gated* end-to-end latency.  Given one offload's
:class:`~repro.core.report.OffloadReport` — and optionally its slice of the
event stream and the provider's billing ledger — :func:`profile_report`
builds an :class:`OffloadProfile`:

* a **span dependency graph** over the recorded timeline (stage -> upload ->
  submit -> tile waves -> collect -> download, plus the retry/resubmit and
  speculation edges the resilience machinery leaves behind);
* the **exact critical path**: the maximum-coverage chain of pairwise
  non-overlapping spans ending at the last recorded instant.  Every wait in
  the deterministic simulator is a ``max()`` over predecessor end times, so
  temporally adjacent spans really are dependent, the chain's length is the
  critical-path length, and by construction it can never exceed the
  makespan;
* **attribution** of seconds (critical-path self time per phase, partitioned
  so phases plus residual wait sum to the wall clock exactly), wire bytes
  (from ``map_upload``/``map_download``/``target_update`` events) and
  dollars (the billing ledger's instance line items, spread over named
  phases by critical-path share and over workers by busy share);
* **straggler/skew diagnostics**: max/median tile ratio, deterministic
  p50/p95/p99 tile quantiles via the metrics registry's histogram, idle-slot
  gaps per worker, and the calibrated lognormal model's *expected* skew for
  the same tile count (:meth:`~repro.perfmodel.compute.ComputeModel.straggler_noise`);
* a **what-if estimator**: forward re-timing of the dependency graph under
  adjusted span durations ("if upload were free / cached / inferred-minimal,
  end-to-end shrinks X%"), first-order but model-consistent because the
  communication model is linear in bytes.

Surfaces: ``repro profile <benchmark>`` (tree view / ``--json`` /
``--folded`` flamegraph via :mod:`repro.obs.flamegraph`), the Perfetto
critical-path track in :mod:`repro.metrics.tracing`, the glyph row in
:mod:`repro.metrics.gantt`, and the CI-gated ``profile_attribution`` bench.
See docs/OBSERVABILITY.md ("Profiling").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.obs.metrics_registry import Histogram
from repro.perfmodel.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perfmodel.compute import ComputeModel
from repro.simtime.timeline import Phase, Span, Timeline

if TYPE_CHECKING:  # import would cycle: core -> cloud -> obs -> profile
    from repro.core.report import OffloadReport

#: Pseudo-phase name for makespan time no recorded span covers (failure
#: detection windows under faults, for example).  Always present in the
#: attribution so phases sum to the wall clock exactly.
WAIT = "wait"


def _eps_for(t1: float) -> float:
    """Adjacency tolerance: exact in theory (waits are ``max()`` of float
    end times), a hair of slack in practice for accumulated rounding."""
    return 1e-9 + 1e-12 * abs(t1)


@dataclass(frozen=True)
class Edge:
    """One dependency edge ``spans[src] -> spans[dst]``.

    Kinds: ``seq`` (same resource, back-to-back), ``dep`` (cross-resource
    adjacency — scatter feeding a task, a task feeding its collect),
    ``retry`` (backoff that led to a resubmission), ``speculate`` (a
    speculation launch feeding the copy's first span), and ``wait`` (a gap:
    the destination waited ``lag_s`` seconds on something unrecorded).
    """

    src: int
    dst: int
    kind: str
    lag_s: float = 0.0


class SpanGraph:
    """Dependency DAG over one offload's spans.

    Nodes are indices into ``spans`` (sorted by start time); edges point
    forward in time.  Adjacency — a span starting exactly when another ends
    — is the dependency criterion: the simulator derives every start time
    from a ``max()`` over predecessor end times, so temporal adjacency is
    dependency, not coincidence.  A span with no adjacent predecessor gets a
    single ``wait`` edge from the latest span ending before it (preserving
    the gap), so the graph stays connected for what-if re-timing.
    """

    def __init__(self, spans: Sequence[Span], eps: float) -> None:
        self.spans = tuple(spans)
        self.eps = eps
        n = len(self.spans)
        self.preds: list[list[Edge]] = [[] for _ in range(n)]
        self.succs: list[list[Edge]] = [[] for _ in range(n)]
        if n == 0:
            return
        t0 = min(s.start for s in self.spans)
        # Spans sorted by end time once, for both adjacency and gap queries.
        by_end = sorted(range(n), key=lambda i: (self.spans[i].end, i))
        ends = [self.spans[i].end for i in by_end]
        for v, sv in enumerate(self.spans):
            lo = bisect.bisect_left(ends, sv.start - eps)
            hi = bisect.bisect_right(ends, sv.start + eps)
            for k in range(lo, hi):
                u = by_end[k]
                su = self.spans[u]
                if u == v:
                    continue
                # Edges must point forward in the (start, index) order so the
                # graph stays acyclic even across zero-duration spans.
                if su.start > sv.start or (su.start == sv.start and u > v):
                    continue
                self._add(Edge(src=u, dst=v, kind=_edge_kind(su, sv)))
            if not self.preds[v] and sv.start > t0 + eps:
                k = bisect.bisect_left(ends, sv.start - eps) - 1
                if k >= 0:
                    u = by_end[k]
                    self._add(Edge(src=u, dst=v, kind=WAIT,
                                   lag_s=sv.start - self.spans[u].end))

    def _add(self, edge: Edge) -> None:
        self.preds[edge.dst].append(edge)
        self.succs[edge.src].append(edge)

    def edge_count(self) -> int:
        return sum(len(p) for p in self.preds)


def _edge_kind(u: Span, v: Span) -> str:
    if u.phase is Phase.RETRY_BACKOFF and v.phase is Phase.RESUBMIT:
        return "retry"
    if u.phase is Phase.SPECULATION and v.label.endswith("-spec"):
        return "speculate"
    return "seq" if (u.resource == v.resource) else "dep"


def _critical_chain(spans: Sequence[Span], eps: float) -> list[int]:
    """Indices (time-ordered) of the maximum-coverage non-overlapping chain
    ending at the last recorded instant.

    Classic weighted chain DP over spans sorted by end time: each span
    extends the best chain among those ending by its start (within ``eps``).
    Chain spans are pairwise non-overlapping inside the observed window, so
    the chain's coverage can never exceed the makespan — the profiler's
    central invariant comes from this construction, not from trust in the
    recording.  Deterministic: ties break toward the earliest sorted span.
    """
    n = len(spans)
    if n == 0:
        return []
    order = sorted(range(n), key=lambda i: (spans[i].end, spans[i].start, i))
    ends_sorted = [spans[i].end for i in order]
    best = [0.0] * n       # best chain duration ending at span i
    prev = [-1] * n
    # prefix_best[k] = (value, span index) best among order[0..k]
    prefix_best: list[tuple[float, int]] = []
    for pos, i in enumerate(order):
        si = spans[i]
        cut = bisect.bisect_right(ends_sorted, si.start + eps) - 1
        # Only spans processed before this one are eligible (same-end ties
        # are not: they would overlap a zero-duration span's instant).
        cut = min(cut, pos - 1)
        base, parent = 0.0, -1
        if cut >= 0:
            base, parent = prefix_best[cut]
        best[i] = base + si.duration
        prev[i] = parent
        cur = (best[i], i)
        if prefix_best:
            last = prefix_best[-1]
            prefix_best.append(cur if cur[0] > last[0] else last)
        else:
            prefix_best.append(cur)
    t1 = max(s.end for s in spans)
    tail = -1
    for i in order:
        if spans[i].end >= t1 - eps:
            if tail == -1 or best[i] > best[tail]:
                tail = i
    chain: list[int] = []
    while tail != -1:
        chain.append(tail)
        tail = prev[tail]
    chain.reverse()
    return chain


@dataclass(frozen=True)
class StragglerStats:
    """Tile-level skew and idle-slot diagnostics for one offload."""

    tiles: int
    median_s: float
    max_s: float
    skew: float                       # max / median tile duration
    modeled_skew: float               # calibrated lognormal's expectation
    quantiles: Mapping[str, float]    # p50/p95/p99 via Histogram.quantile
    idle_s: Mapping[str, float]       # per-worker idle inside its window
    worst_idle_worker: str
    worst_idle_s: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "tiles": self.tiles,
            "median_s": self.median_s,
            "max_s": self.max_s,
            "skew": self.skew,
            "modeled_skew": self.modeled_skew,
            "quantiles": dict(self.quantiles),
            "idle_s": dict(self.idle_s),
            "worst_idle_worker": self.worst_idle_worker,
            "worst_idle_s": self.worst_idle_s,
        }


@dataclass(frozen=True)
class WhatIf:
    """One counterfactual: the estimated makespan under adjusted durations."""

    name: str
    estimate_s: float
    baseline_s: float

    @property
    def saved_s(self) -> float:
        return self.baseline_s - self.estimate_s

    @property
    def saved_pct(self) -> float:
        return (self.saved_s / self.baseline_s * 100.0
                if self.baseline_s > 0 else 0.0)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "estimate_s": self.estimate_s,
                "saved_s": self.saved_s, "saved_pct": self.saved_pct}


@dataclass
class OffloadProfile:
    """Everything the critical-path analysis derived from one offload."""

    region: str
    device: str
    mode: str
    correlation_id: str = ""
    spans: tuple[Span, ...] = ()
    graph: SpanGraph = field(default_factory=lambda: SpanGraph((), 0.0))
    t0: float = 0.0
    t1: float = 0.0
    critical_indices: tuple[int, ...] = ()
    critical_s: float = 0.0
    wait_s: float = 0.0
    #: Seconds each phase contributed *on the critical path* (self time).
    #: Includes the ``wait`` pseudo-phase; values sum to ``wall_s`` exactly.
    phase_self_s: dict[str, float] = field(default_factory=dict)
    #: Busy resource-seconds per phase over the whole timeline (total time).
    phase_total_s: dict[str, float] = field(default_factory=dict)
    #: Wire bytes attributed per phase (uploads, downloads, updates, fabric).
    phase_bytes_wire: dict[str, int] = field(default_factory=dict)
    #: Dollars attributed per phase (billing ledger spread by self-time share).
    phase_usd: dict[str, float] = field(default_factory=dict)
    billed_usd: float = 0.0
    billed_by_sku: dict[str, float] = field(default_factory=dict)
    worker_busy_s: dict[str, float] = field(default_factory=dict)
    worker_usd: dict[str, float] = field(default_factory=dict)
    #: Total slot seconds per tile (task id), speculation copies included.
    tile_s: dict[int, float] = field(default_factory=dict)
    straggler: StragglerStats | None = None

    # ------------------------------------------------------------- geometry
    @property
    def wall_s(self) -> float:
        """End-to-end wall clock: the timeline makespan."""
        return self.t1 - self.t0

    @property
    def critical_spans(self) -> tuple[Span, ...]:
        return tuple(self.spans[i] for i in self.critical_indices)

    @property
    def critical_share(self) -> float:
        return self.critical_s / self.wall_s if self.wall_s > 0 else 1.0

    # ------------------------------------------------------------- what-ifs
    def what_if(self, adjust: Callable[[Span], float]) -> float:
        """Estimated makespan when every span's duration becomes
        ``adjust(span)``.

        Forward re-timing over the dependency graph: each span starts at the
        latest adjusted end of its predecessors (``wait`` edges keep their
        recorded lag — the destination waited on something unrecorded, which
        the adjustment cannot shrink); spans with no predecessors keep their
        recorded start.  First-order: the schedule's shape (tile placement,
        wave structure) is held fixed while durations move.
        """
        spans = self.spans
        new_end = [0.0] * len(spans)
        for v, sv in enumerate(spans):
            dur = max(0.0, float(adjust(sv)))
            preds = self.graph.preds[v]
            if preds:
                start = max(new_end[e.src] + e.lag_s for e in preds)
            else:
                start = sv.start - self.t0
            new_end[v] = start + dur
        return max(new_end, default=0.0)

    def scaled_phases(self, scales: Mapping[Phase, float]) -> float:
        """:meth:`what_if` with per-phase duration multipliers."""
        return self.what_if(
            lambda s: s.duration * scales.get(s.phase, 1.0))

    def what_if_scenarios(self) -> list[WhatIf]:
        """The standard counterfactuals (docs/OBSERVABILITY.md, Profiling):

        * ``upload_free`` — host staging costs nothing (compress + upload);
        * ``upload_cached`` — the WAN transfer is skipped but the digest/
          compress pass stays (a staging-cache hit);
        * ``download_free`` — collect-side host communication costs nothing;
        * ``no_stragglers`` — every tile runs in at most the median tile
          time (what perfect speculation would recover).
        """
        base = self.wall_s
        median = self._median_compute_s()
        scenarios = [
            WhatIf("upload_free", self.scaled_phases(
                {Phase.HOST_COMPRESS: 0.0, Phase.HOST_UPLOAD: 0.0}), base),
            WhatIf("upload_cached", self.scaled_phases(
                {Phase.HOST_UPLOAD: 0.0}), base),
            WhatIf("download_free", self.scaled_phases(
                {Phase.HOST_DOWNLOAD: 0.0, Phase.HOST_DECOMPRESS: 0.0}),
                base),
            WhatIf("no_stragglers", self.what_if(
                lambda s: (min(s.duration, median)
                           if s.phase is Phase.COMPUTE else s.duration)),
                base),
        ]
        return scenarios

    def _median_compute_s(self) -> float:
        durs = sorted(s.duration for s in self.spans
                      if s.phase is Phase.COMPUTE)
        if not durs:
            return 0.0
        mid = len(durs) // 2
        return (durs[mid] if len(durs) % 2 else
                (durs[mid - 1] + durs[mid]) / 2.0)

    # ---------------------------------------------------------------- output
    def to_item(self) -> dict[str, Any]:
        """JSON-serializable view (one item of the shared report shape)."""
        chain = []
        prev_end: float | None = None
        for i in self.critical_indices:
            s = self.spans[i]
            gap = 0.0 if prev_end is None else max(0.0, s.start - prev_end)
            chain.append({
                "phase": s.phase.value,
                "label": s.label,
                "resource": s.resource,
                "start_s": s.start - self.t0,
                "duration_s": s.duration,
                "wait_before_s": gap,
            })
            prev_end = s.end
        return {
            "region": self.region,
            "device": self.device,
            "mode": self.mode,
            "correlation_id": self.correlation_id,
            "wall_s": self.wall_s,
            "critical_path_s": self.critical_s,
            "critical_share": self.critical_share,
            "wait_s": self.wait_s,
            "spans": len(self.spans),
            "edges": self.graph.edge_count(),
            "critical_path": chain,
            "phase_self_s": dict(self.phase_self_s),
            "phase_total_s": dict(self.phase_total_s),
            "phase_bytes_wire": dict(self.phase_bytes_wire),
            "phase_usd": dict(self.phase_usd),
            "billed_usd": self.billed_usd,
            "billed_by_sku": dict(self.billed_by_sku),
            "worker_busy_s": dict(self.worker_busy_s),
            "worker_usd": dict(self.worker_usd),
            "tile_s": {str(k): v for k, v in sorted(self.tile_s.items())},
            "straggler": (self.straggler.to_dict()
                          if self.straggler is not None else None),
            "what_if": [w.to_dict() for w in self.what_if_scenarios()],
        }

    def render(self, max_chain: int = 30) -> str:
        """Human tree view: chain, attribution, diagnostics, what-ifs."""
        out = [
            f"profile {self.region!r} on {self.device} ({self.mode})",
            f"  wall {self.wall_s:.3f} s   critical path {self.critical_s:.3f} s"
            f" ({self.critical_share * 100.0:.1f}%)   wait {self.wait_s:.3f} s"
            f"   {len(self.spans)} spans / {self.graph.edge_count()} edges",
            "  critical path:",
        ]
        chain = self.critical_indices
        shown = chain if len(chain) <= max_chain else chain[:max_chain]
        prev_end: float | None = None
        for i in shown:
            s = self.spans[i]
            gap = 0.0 if prev_end is None else max(0.0, s.start - prev_end)
            wait = f"  (+{gap:.3f} s wait)" if gap > self.graph.eps else ""
            label = s.label or s.phase.value
            out.append(f"    {s.start - self.t0:10.3f}  {s.phase.value:<17}"
                       f" {label:<22} {s.duration:10.3f} s  {s.resource}"
                       f"{wait}")
            prev_end = s.end
        if len(chain) > len(shown):
            out.append(f"    ... (+{len(chain) - len(shown)} more spans)")
        out.append("  attribution (self = on critical path; total = busy):")
        for name, self_s in sorted(self.phase_self_s.items(),
                                   key=lambda kv: -kv[1]):
            if self_s <= 0.0 and self.phase_total_s.get(name, 0.0) <= 0.0:
                continue
            share = self_s / self.wall_s * 100.0 if self.wall_s > 0 else 0.0
            extras = []
            nbytes = self.phase_bytes_wire.get(name, 0)
            if nbytes:
                extras.append(f"{nbytes / 1e6:.1f} MB wire")
            usd = self.phase_usd.get(name, 0.0)
            if usd:
                extras.append(f"${usd:.4f}")
            tail = ("  " + "  ".join(extras)) if extras else ""
            out.append(f"    {name:<17} self {self_s:10.3f} s ({share:5.1f}%)"
                       f"  total {self.phase_total_s.get(name, 0.0):10.3f} s"
                       f"{tail}")
        if self.straggler is not None and self.straggler.tiles:
            st = self.straggler
            q = st.quantiles
            out.append(
                f"  tiles: {st.tiles}  median {st.median_s:.3f} s  "
                f"max {st.max_s:.3f} s  skew {st.skew:.2f}x "
                f"(model expects {st.modeled_skew:.2f}x)  "
                f"p50 {q.get('p50', 0.0):.3f} p95 {q.get('p95', 0.0):.3f} "
                f"p99 {q.get('p99', 0.0):.3f}")
            if st.worst_idle_worker:
                out.append(f"  worst idle slot: {st.worst_idle_worker} "
                           f"({st.worst_idle_s:.3f} s idle in its window)")
        if self.billed_usd:
            sku = ", ".join(f"{k} ${v:.4f}"
                            for k, v in sorted(self.billed_by_sku.items()))
            out.append(f"  billed: ${self.billed_usd:.4f}  ({sku})")
        out.append("  what-if:")
        for w in self.what_if_scenarios():
            out.append(f"    {w.name:<15} {w.estimate_s:10.3f} s  "
                       f"(-{w.saved_s:.3f} s, -{w.saved_pct:.1f}%)")
        return "\n".join(out)


# ------------------------------------------------------------------ builders
def _phase_attribution(spans: Sequence[Span], chain: Sequence[int],
                       t0: float, t1: float) -> tuple[dict[str, float], float]:
    """Partition ``[t0, t1]`` over the chain's phases plus residual wait.

    Each chain span contributes its *uncovered* extent (clamped against the
    previous chain span, so eps-overlaps never double-count); what is left
    of the makespan is ``wait``.  The values sum to ``t1 - t0`` exactly, up
    to float addition."""
    self_s: dict[str, float] = {}
    covered = 0.0
    prev_end = t0
    for i in chain:
        s = spans[i]
        contrib = max(0.0, min(s.end, t1) - max(s.start, prev_end))
        if contrib > 0.0:
            self_s[s.phase.value] = self_s.get(s.phase.value, 0.0) + contrib
            covered += contrib
        prev_end = max(prev_end, s.end)
    wait = max(0.0, (t1 - t0) - covered)
    self_s[WAIT] = wait
    return self_s, covered


def _straggler_stats(spans: Sequence[Span], tile_s: Mapping[int, float],
                     calibration: Calibration) -> StragglerStats | None:
    compute = [s for s in spans if s.phase is Phase.COMPUTE and s.resource]
    if not tile_s:
        return None
    durs = sorted(tile_s.values())
    mid = len(durs) // 2
    median = (durs[mid] if len(durs) % 2 else
              (durs[mid - 1] + durs[mid]) / 2.0)
    top = durs[-1]
    skew = top / median if median > 0 else 1.0
    # What the calibrated lognormal noise alone would predict for this many
    # tiles (heterogeneity/contention excluded): max/median of the seeded
    # per-index multipliers.
    model = ComputeModel(calibration)
    noises = sorted(model.straggler_noise(i) for i in range(len(durs)))
    nmid = len(noises) // 2
    nmed = (noises[nmid] if len(noises) % 2 else
            (noises[nmid - 1] + noises[nmid]) / 2.0)
    modeled_skew = noises[-1] / nmed if nmed > 0 else 1.0
    # Deterministic quantiles through the metrics histogram, with bounds
    # scaled to the observed range so small simulated durations resolve.
    hi = max(top, 1e-9)
    bounds = [hi * f for f in
              (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)]
    hist = Histogram("repro_profile_tile_seconds",
                     "Per-tile slot durations seen by the profiler.",
                     buckets=bounds)
    for d in durs:
        hist.observe(d)
    quantiles = hist.quantiles((0.5, 0.95, 0.99))
    # Idle gaps: inside each worker's active window, time not covered by
    # any of its spans (compute or cluster-side transfer work).
    idle: dict[str, float] = {}
    windows: dict[str, list[Span]] = {}
    for s in compute:
        windows.setdefault(s.resource, []).append(s)
    for worker, ws in windows.items():
        lo = min(s.start for s in ws)
        hi_w = max(s.end for s in ws)
        tl = Timeline()
        for s in spans:
            if s.resource == worker and s.end > lo and s.start < hi_w:
                tl.record(s.phase, max(s.start, lo), min(s.end, hi_w))
        idle[worker] = max(0.0, (hi_w - lo) - tl.wall())
    worst = max(sorted(idle), key=lambda w: idle[w], default="")
    return StragglerStats(
        tiles=len(durs), median_s=median, max_s=top, skew=skew,
        modeled_skew=modeled_skew, quantiles=quantiles, idle_s=idle,
        worst_idle_worker=worst, worst_idle_s=idle.get(worst, 0.0),
    )


def profile_report(
    report: OffloadReport,
    events: Iterable[Any] = (),
    ledger: Any = None,
    correlation_id: str = "",
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> OffloadProfile:
    """Profile one offload.

    ``events`` may be a recorded :class:`~repro.obs.events.EventBus` stream;
    when ``correlation_id`` is given only matching events contribute (pass
    the whole history of a multi-offload run safely).  ``ledger`` is a
    :class:`~repro.cloud.billing.BillingLedger`
    (:attr:`CloudDevice.billing_ledger`); without one, dollar attribution
    falls back to ``report.billed_usd`` as a single unlabelled total.
    """
    spans = sorted(report.timeline.spans,
                   key=lambda s: (s.start, s.end, s.resource, s.phase.value,
                                  s.label))
    if spans:
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
    else:
        t0 = t1 = 0.0
    eps = _eps_for(t1)
    graph = SpanGraph(spans, eps)
    chain = _critical_chain(spans, eps)
    phase_self, critical_s = _phase_attribution(spans, chain, t0, t1)

    phase_total: dict[str, float] = {}
    for s in spans:
        phase_total[s.phase.value] = (phase_total.get(s.phase.value, 0.0)
                                      + s.duration)

    evs = [e for e in events
           if not correlation_id
           or getattr(e, "correlation_id", "") == correlation_id]

    # Wire bytes per phase.  Events give the exact split; the report's
    # totals are the fallback so the attribution never silently drops to
    # zero when history was off.
    phase_bytes: dict[str, int] = {}

    def add_bytes(phase: Phase, n: int) -> None:
        if n:
            phase_bytes[phase.value] = phase_bytes.get(phase.value, 0) + n

    saw_transfer_events = False
    for e in evs:
        kind = getattr(e, "kind", "")
        if kind == "map_upload":
            add_bytes(Phase.HOST_UPLOAD, e.bytes_wire)
            saw_transfer_events = True
        elif kind == "map_download":
            add_bytes(Phase.HOST_DOWNLOAD, e.bytes_wire)
            saw_transfer_events = True
        elif kind == "target_update":
            add_bytes(Phase.TARGET_UPDATE, e.bytes_wire)
            saw_transfer_events = True
    if not saw_transfer_events:
        add_bytes(Phase.HOST_UPLOAD, report.bytes_up_wire)
        add_bytes(Phase.HOST_DOWNLOAD, report.bytes_down_wire)
    add_bytes(Phase.INTRA_TRANSFER, report.cluster_bytes_wire)

    # Tiles: total slot seconds per task id (speculative copies included,
    # via events when available, else worker compute spans).
    tile_s: dict[int, float] = {}
    saw_task_events = False
    for e in evs:
        if getattr(e, "kind", "") == "task_end":
            tile_s[e.task_id] = tile_s.get(e.task_id, 0.0) + e.duration_s
            saw_task_events = True
    if not saw_task_events:
        for s in spans:
            if s.phase is Phase.COMPUTE and s.label.startswith("task-"):
                tid = s.label[len("task-"):].removesuffix("-spec")
                try:
                    key = int(tid)
                except ValueError:
                    continue
                tile_s[key] = tile_s.get(key, 0.0) + s.duration

    worker_busy: dict[str, float] = {}
    for s in spans:
        if s.phase is Phase.COMPUTE and s.resource:
            worker_busy[s.resource] = (worker_busy.get(s.resource, 0.0)
                                       + s.duration)

    # Dollars: ledger line items when available, else the report total.
    billed = 0.0
    by_sku: dict[str, float] = {}
    if ledger is not None:
        billed = float(ledger.total_usd())
        by_sku = dict(ledger.by_sku())
    if billed == 0.0 and report.billed_usd:
        billed = report.billed_usd
        by_sku = {"(instance-hours)": report.billed_usd}
    phase_usd: dict[str, float] = {}
    named_s = sum(v for k, v in phase_self.items() if k != WAIT)
    if billed > 0.0:
        if named_s > 0.0:
            for name, secs in phase_self.items():
                if name != WAIT and secs > 0.0:
                    phase_usd[name] = billed * secs / named_s
        else:
            phase_usd[WAIT] = billed
    worker_usd: dict[str, float] = {}
    busy_total = sum(worker_busy.values())
    if billed > 0.0 and busy_total > 0.0:
        for worker, busy in worker_busy.items():
            worker_usd[worker] = billed * busy / busy_total

    prof = OffloadProfile(
        region=report.region_name,
        device=report.device_name,
        mode=report.mode,
        correlation_id=correlation_id,
        spans=tuple(spans),
        graph=graph,
        t0=t0,
        t1=t1,
        critical_indices=tuple(chain),
        critical_s=critical_s,
        wait_s=phase_self.get(WAIT, 0.0),
        phase_self_s=phase_self,
        phase_total_s=phase_total,
        phase_bytes_wire=phase_bytes,
        phase_usd=phase_usd,
        billed_usd=billed,
        billed_by_sku=by_sku,
        worker_busy_s=worker_busy,
        worker_usd=worker_usd,
        tile_s=tile_s,
        straggler=_straggler_stats(spans, tile_s, calibration),
    )
    return prof


def profile_offloads(bus: Any, reports: Sequence[OffloadReport],
                     ledger: Any = None,
                     calibration: Calibration = DEFAULT_CALIBRATION,
                     ) -> list[OffloadProfile]:
    """Profile several offloads recorded on one history-keeping bus.

    Reports are paired with the bus's ``target_begin`` correlation ids in
    order — the order offloads were issued, which is the order the runtime
    opened their scopes."""
    begins = [e for e in bus.events if e.kind == "target_begin"
              and e.parent_id == 0]
    corr_ids = [e.correlation_id for e in begins]
    out = []
    for i, rep in enumerate(reports):
        corr = corr_ids[i] if i < len(corr_ids) else ""
        out.append(profile_report(rep, events=bus.events, ledger=ledger,
                                  correlation_id=corr,
                                  calibration=calibration))
    return out


def inferred_upload_scale(region: Any, scalars: Mapping[str, float] | None,
                          profile: OffloadProfile,
                          events: Iterable[Any] = (),
                          calibration: Calibration = DEFAULT_CALIBRATION,
                          ) -> float | None:
    """Upload-seconds multiplier if the region's map clauses were replaced
    by inference's provably minimal ones (docs/ANALYSIS.md).

    Buffer-level: maps whose inferred direction no longer includes ``to``
    stop uploading entirely; both byte volumes are priced through the
    calibrated :class:`~repro.perfmodel.comm.HostCommModel`, so the ratio is
    model-consistent.  Section narrowing inside a still-uploaded buffer is
    not re-priced here (``repro infer`` reports those exactly).  Returns
    None when inference degrades or there is nothing to scale.
    """
    from repro.analysis.infer import infer_region
    from repro.perfmodel.comm import HostCommModel, TransferPlan
    from repro.perfmodel.compression import model_for_density

    rep = infer_region(region, scalars)
    if rep.degraded:
        return None
    uploaded: dict[str, int] = {}
    for e in events:
        if getattr(e, "kind", "") == "map_upload" and (
                not profile.correlation_id
                or e.correlation_id == profile.correlation_id):
            uploaded[e.buffer] = uploaded.get(e.buffer, 0) + e.bytes_raw
    if not uploaded:
        return None

    def to_names(r: Any) -> set[str]:
        return {i.name for c in r.maps if c.map_type.is_input
                for i in c.items}

    keep = to_names(rep.region)
    comm = HostCommModel(calibration)
    plan_all = [TransferPlan(n, b, model_for_density(1.0))
                for n, b in sorted(uploaded.items())]
    plan_kept = [p for p in plan_all if p.name in keep]
    base = comm.upload(plan_all).total_s
    if base <= 0.0:
        return None
    if not plan_kept:
        return 0.0
    return comm.upload(plan_kept).total_s / base
