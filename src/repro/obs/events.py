"""OMPT-style event bus: the runtime's live instrumentation plane.

LLVM's OpenMP runtime exposes OMPT callbacks (``ompt_callback_target``,
``ompt_callback_target_data_op``, ...) so tools can watch an offload without
forking the runtime.  This module is the equivalent for the OmpCloud
reproduction: every layer of the stack — the offload runtime, the cloud and
host plugins, the resilience machinery, the Spark driver/scheduler/executors,
storage and SSH — emits small, typed, timestamped :class:`Event` records onto
one :class:`EventBus`.  Subscribers turn the stream into metrics
(:mod:`repro.obs.metrics_registry`), derived reports and timelines
(:mod:`repro.obs.subscribers`), Perfetto traces, or benchmark milestones
(:mod:`repro.obs.bench`).

Correlation: the runtime opens an *offload scope* per target-region offload
(:meth:`EventBus.offload_scope`); every event emitted while the scope is
active is stamped with the scope's correlation id (``"<region>#<seq>"``) and
a ``parent_id`` pointing at the offload's root span — so a retry deep inside
the storage layer can be traced back to the exact ``TargetBegin`` it served,
and to the Spark resubmission it triggered.

Emission is deliberately cheap: with no subscribers and history disabled
(the default process-wide bus), :meth:`EventBus.emit` is a lock-free early
return, so the instrumented hot paths cost nothing when nobody is watching.

All timestamps are *simulated* seconds from the emitting layer's
:class:`~repro.simtime.clock.SimClock`; layers without a clock stamp 0.0.
"""

from __future__ import annotations

import itertools
import logging
import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Callable, ClassVar, Iterable, Iterator

from repro.obs.metrics_registry import Counter

_log = logging.getLogger(__name__)

#: Registry of every concrete event type, keyed by its ``kind`` string.
EVENT_TYPES: dict[str, type["Event"]] = {}


@dataclass(frozen=True)
class Event:
    """Base record of one runtime happening.

    ``kind`` is a class-level discriminator (stable, snake_case); the
    correlation triple (``correlation_id``, ``span_id``, ``parent_id``) is
    stamped by the bus at emission time — emitters never fill it themselves.
    """

    kind: ClassVar[str] = "event"

    time: float = 0.0
    resource: str = ""
    correlation_id: str = ""
    span_id: int = 0
    parent_id: int = 0

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if "kind" not in cls.__dict__:
            raise TypeError(f"{cls.__name__} must define a class-level 'kind'")
        if cls.kind in EVENT_TYPES:
            raise TypeError(f"duplicate event kind {cls.kind!r}")
        EVENT_TYPES[cls.kind] = cls

    def to_dict(self) -> dict[str, object]:
        """Flat JSON-serializable view, ``kind`` included."""
        out: dict[str, object] = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


# --------------------------------------------------------------- the catalogue
@dataclass(frozen=True)
class TargetBegin(Event):
    """``__tgt_target`` entered: one offload starts (OMPT: target begin)."""

    kind: ClassVar[str] = "target_begin"
    region: str = ""
    device: str = ""
    mode: str = ""


@dataclass(frozen=True)
class TargetEnd(Event):
    """The offload returned (or raised: ``ok=False``)."""

    kind: ClassVar[str] = "target_end"
    region: str = ""
    device: str = ""
    ok: bool = True
    fell_back: bool = False
    full_s: float = 0.0


@dataclass(frozen=True)
class MapUpload(Event):
    """One mapped input buffer staged host -> device storage."""

    kind: ClassVar[str] = "map_upload"
    buffer: str = ""
    bytes_raw: int = 0
    bytes_wire: int = 0
    start: float = 0.0
    end: float = 0.0


@dataclass(frozen=True)
class MapDownload(Event):
    """One mapped output buffer brought device storage -> host."""

    kind: ClassVar[str] = "map_download"
    buffer: str = ""
    bytes_raw: int = 0
    bytes_wire: int = 0
    start: float = 0.0
    end: float = 0.0


@dataclass(frozen=True)
class CacheHit(Event):
    """A staged-input cache hit: the upload was skipped entirely."""

    kind: ClassVar[str] = "cache_hit"
    buffer: str = ""
    bytes_saved: int = 0


@dataclass(frozen=True)
class SparkSubmit(Event):
    """One ``spark-submit`` attempt over SSH (success or failure)."""

    kind: ClassVar[str] = "spark_submit"
    region: str = ""
    submission: int = 1
    ok: bool = True
    error: str = ""


@dataclass(frozen=True)
class Resubmit(Event):
    """A failed/lost Spark job is being resubmitted after a delay."""

    kind: ClassVar[str] = "resubmit"
    region: str = ""
    submission: int = 1
    delay_s: float = 0.0


@dataclass(frozen=True)
class JobStart(Event):
    """The Spark driver accepted a job and built its task set."""

    kind: ClassVar[str] = "job_start"
    job_id: int = 0
    tasks: int = 0


@dataclass(frozen=True)
class JobEnd(Event):
    """The job's last result was collected."""

    kind: ClassVar[str] = "job_end"
    job_id: int = 0
    makespan_s: float = 0.0
    tasks_recomputed: int = 0


@dataclass(frozen=True)
class TaskStart(Event):
    """One task began executing on a worker (``time`` = slot start)."""

    kind: ClassVar[str] = "task_start"
    task_id: int = 0
    worker: str = ""


@dataclass(frozen=True)
class TaskEnd(Event):
    """The task finished (``time`` = slot end)."""

    kind: ClassVar[str] = "task_end"
    task_id: int = 0
    worker: str = ""
    duration_s: float = 0.0
    attempts: int = 1


@dataclass(frozen=True)
class TaskSpeculated(Event):
    """The driver launched a speculative copy of a straggling task.

    ``time`` is the detection instant (original start +
    ``speculation_multiplier`` x median task duration); ``worker`` is the
    straggling original's executor, ``copy_worker`` the one racing it.
    """

    kind: ClassVar[str] = "task_speculated"
    task_id: int = 0
    worker: str = ""
    copy_worker: str = ""
    waited_s: float = 0.0
    median_s: float = 0.0


@dataclass(frozen=True)
class SpeculationWon(Event):
    """A speculative copy finished before the original (first result wins).

    ``saved_s`` is the modelled tail time the copy removed: the original's
    projected finish (or, for a dead original, heartbeat detection plus a
    full re-run) minus the copy's end.
    """

    kind: ClassVar[str] = "speculation_won"
    task_id: int = 0
    winner: str = ""
    loser: str = ""
    saved_s: float = 0.0


@dataclass(frozen=True)
class Retry(Event):
    """A transient failure is being retried under a RetryPolicy."""

    kind: ClassVar[str] = "retry"
    op: str = ""
    attempt: int = 1
    delay_s: float = 0.0
    error: str = ""


@dataclass(frozen=True)
class Preemption(Event):
    """A spot instance backing a worker was reclaimed by the provider."""

    kind: ClassVar[str] = "preemption"
    worker: str = ""


@dataclass(frozen=True)
class Recovery(Event):
    """A replacement worker came up for a preempted one."""

    kind: ClassVar[str] = "recovery"
    worker: str = ""
    duration_s: float = 0.0


@dataclass(frozen=True)
class Fallback(Event):
    """The runtime degraded an offload to host execution."""

    kind: ClassVar[str] = "fallback"
    region: str = ""
    device: str = ""
    reason: str = ""


@dataclass(frozen=True)
class BreakerOpen(Event):
    """The device circuit breaker tripped open."""

    kind: ClassVar[str] = "breaker_open"
    device: str = ""
    consecutive_failures: int = 0


@dataclass(frozen=True)
class ExecutorLost(Event):
    """An executor died (fault injection, preemption, task crash)."""

    kind: ClassVar[str] = "executor_lost"
    worker: str = ""
    reason: str = ""


@dataclass(frozen=True)
class StorageOp(Event):
    """One object-store operation completed (PUT/GET/HEAD/EXISTS)."""

    kind: ClassVar[str] = "storage_op"
    store: str = ""
    op: str = ""
    key: str = ""
    nbytes: int = 0


@dataclass(frozen=True)
class SSHConnect(Event):
    """An SSH session handshake (``ok=False`` for refused/unauthorized)."""

    kind: ClassVar[str] = "ssh_connect"
    host: str = ""
    user: str = ""
    ok: bool = True
    error: str = ""


@dataclass(frozen=True)
class DataEnvEnter(Event):
    """A persistent device data environment opened (``target data`` begin)."""

    kind: ClassVar[str] = "data_env_enter"
    device: str = ""
    buffers: int = 0
    bytes_to: int = 0  # raw bytes staged by the enter itself
    resident: int = 0  # entries a nested enter found already present


@dataclass(frozen=True)
class DataEnvExit(Event):
    """The environment closed; deferred dirty outputs came home."""

    kind: ClassVar[str] = "data_env_exit"
    device: str = ""
    buffers: int = 0
    bytes_from: int = 0  # raw bytes downloaded by the exit


@dataclass(frozen=True)
class TargetUpdate(Event):
    """An explicit ``target update`` moved one buffer to/from the device."""

    kind: ClassVar[str] = "target_update"
    device: str = ""
    buffer: str = ""
    direction: str = ""  # "to" (host -> device) or "from" (device -> host)
    bytes_raw: int = 0
    bytes_wire: int = 0


@dataclass(frozen=True)
class ResidentHit(Event):
    """A target's mapped buffer was already resident: transfer skipped."""

    kind: ClassVar[str] = "resident_hit"
    device: str = ""
    buffer: str = ""
    bytes_saved: int = 0  # upload bytes that did not cross the WAN


@dataclass(frozen=True)
class LogEvent(Event):
    """One SparkLog record, mirrored onto the bus."""

    kind: ClassVar[str] = "log"
    level: str = "INFO"
    component: str = ""
    message: str = ""


@dataclass(frozen=True)
class CheckpointCommit(Event):
    """One completed tile's output was durably committed to storage."""

    kind: ClassVar[str] = "checkpoint_commit"
    region: str = ""
    loop_var: str = ""
    tile: int = 0
    key: str = ""
    nbytes: int = 0
    checksum: str = ""


@dataclass(frozen=True)
class ResumeFromCheckpoint(Event):
    """A resubmission resumed from committed tile checkpoints instead of
    restarting: ``tiles_skipped`` finished tiles were restored, only
    ``tiles_rerun`` were scheduled again."""

    kind: ClassVar[str] = "resume_from_checkpoint"
    region: str = ""
    submission: int = 0
    tiles_skipped: int = 0
    tiles_rerun: int = 0
    bytes_restored: int = 0


@dataclass(frozen=True)
class CorruptionDetected(Event):
    """An object failed checksum verification on read (bit-rot, torn write,
    or injected via ``FaultPlan.corrupt_keys``).  The read was billed; the
    caller's retry policy decides whether to re-fetch or escalate."""

    kind: ClassVar[str] = "corruption_detected"
    store: str = ""
    op: str = ""        # "GET" for reads, "VERIFY" for resubmission checks
    key: str = ""
    expected: str = ""  # checksum recorded at write time
    actual: str = ""    # checksum observed on read


@dataclass(frozen=True)
class MapInferred(Event):
    """Clause inference ran on a region before staging
    (``offload(infer_maps=True)`` or ``[Analysis] infer``).  Either the
    synthesized clauses replaced the user's (``changed``), nothing narrower
    could be proven, or the evidence was incomplete and inference degraded
    to the original clauses (``degraded``, with the ``reason``)."""

    kind: ClassVar[str] = "map_inferred"
    region: str = ""
    device: str = ""
    changed: bool = False
    degraded: bool = False
    narrowed: int = 0          # map clauses with a narrower direction
    partitions_added: int = 0  # synthesized per-iteration partition specs
    dropped: int = 0           # maps no loop provably touches
    reason: str = ""           # why inference degraded, empty otherwise


@dataclass(frozen=True)
class TaskwaitBegin(Event):
    """A synchronization point started flushing the deferred (``nowait``)
    offload queue — an explicit ``omp.taskwait()``, a ``TaskHandle.wait()``,
    or the end of the enclosing ``target data`` environment."""

    kind: ClassVar[str] = "taskwait_begin"
    pending: int = 0           # deferred regions about to be scheduled


@dataclass(frozen=True)
class TaskwaitEnd(Event):
    """The deferred queue drained: every region ran (fused or serialized)
    and every ``TaskHandle`` now holds its report."""

    kind: ClassVar[str] = "taskwait_end"
    regions: int = 0           # deferred regions resolved by this flush
    fused_jobs: int = 0        # fusion groups that ran as single jobs
    waves: int = 0             # topological waves the plan scheduled


@dataclass(frozen=True)
class RegionFused(Event):
    """A fusion group is about to run as one Spark job.  ``members`` are the
    original region names, ``elided`` the producer→consumer intermediates
    that never touch cluster storage, and ``bytes_saved`` the estimated
    cluster↔storage traffic the fusion avoids."""

    kind: ClassVar[str] = "region_fused"
    region: str = ""                         # merged region name ("a+b+c")
    members: tuple[str, ...] = ()
    device: str = ""
    wave: int = 0                            # topological wave of the group
    elided: tuple[str, ...] = ()
    bytes_saved: int = 0


#: Every event kind the runtime can emit (the coverage test asserts each one
#: is exercised at least once).
EVENT_KINDS: frozenset[str] = frozenset(EVENT_TYPES)

Subscriber = Callable[[Event], None]


@dataclass
class _Scope:
    correlation_id: str
    root_span: int = 0


class EventBus:
    """Typed publish/subscribe hub with per-offload correlation stamping.

    Thread-safe: the cloud plugin stages buffers from one thread each, and
    their storage/retry events land on the same bus.  ``keep_history=True``
    additionally records every emitted event (tests, derived views, traces);
    the process-default bus keeps no history so long-lived processes do not
    accumulate memory.
    """

    def __init__(self, keep_history: bool = False) -> None:
        self._subs: list[tuple[Subscriber, frozenset[str] | None]] = []
        self._history: list[Event] | None = [] if keep_history else None
        self._lock = threading.Lock()
        self._span_seq = itertools.count(1)
        self._corr_seq = itertools.count(1)
        self._scopes: list[_Scope] = []
        #: Subscriber callbacks that raised, by subscriber and event kind.
        #: A broken tool must never abort the offload it is watching, so
        #: :meth:`emit` catches, counts here, and logs once per subscriber.
        #: :meth:`MetricsSubscriber.attach` surfaces this counter in its
        #: registry's exposition as ``repro_bus_subscriber_errors``.
        self.subscriber_errors = Counter(
            "repro_bus_subscriber_errors",
            "Subscriber callbacks that raised (caught; offload continued).")
        self._error_logged: set[str] = set()

    # ------------------------------------------------------------ subscribers
    def subscribe(
        self,
        fn: Subscriber,
        kinds: Iterable[str] | None = None,
    ) -> Callable[[], None]:
        """Register ``fn`` for ``kinds`` (all kinds when None).  Returns an
        unsubscribe callable."""
        want = None if kinds is None else frozenset(kinds)
        if want is not None:
            unknown = want - EVENT_KINDS
            if unknown:
                raise ValueError(f"unknown event kinds: {sorted(unknown)}")
        entry = (fn, want)
        with self._lock:
            self._subs.append(entry)

        def unsubscribe() -> None:
            with self._lock:
                if entry in self._subs:
                    self._subs.remove(entry)

        return unsubscribe

    # --------------------------------------------------------------- emission
    @property
    def is_active(self) -> bool:
        """Whether anything would observe an emitted event right now.

        Read without the lock (benign race): hot emitters on per-task paths
        use this to skip *constructing* event objects entirely when nobody is
        listening — :meth:`emit`'s own fast path still pays for the record
        allocation.  Subscribers attaching mid-job are not a supported
        pattern; attach before the run starts.
        """
        return bool(self._subs) or self._history is not None

    def emit(self, event: Event) -> Event | None:
        """Stamp correlation ids onto ``event`` and deliver it.

        Returns the stamped event, or None when nothing is listening (the
        fast path skips stamping entirely)."""
        with self._lock:
            if not self._subs and self._history is None:
                return None
            scope = self._scopes[-1] if self._scopes else None
            span_id = next(self._span_seq)
            parent = 0
            corr = event.correlation_id
            if scope is not None:
                corr = corr or scope.correlation_id
                if isinstance(event, TargetBegin) and scope.root_span == 0:
                    scope.root_span = span_id
                    parent = (self._scopes[-2].root_span
                              if len(self._scopes) > 1 else 0)
                else:
                    parent = scope.root_span
            stamped = replace(event, correlation_id=corr, span_id=span_id,
                              parent_id=parent)
            if self._history is not None:
                self._history.append(stamped)
            subs = list(self._subs)
        for fn, want in subs:
            if want is None or stamped.kind in want:
                try:
                    fn(stamped)
                except Exception as exc:
                    self._subscriber_raised(fn, stamped, exc)
        return stamped

    def _subscriber_raised(self, fn: Subscriber, event: Event,
                           exc: Exception) -> None:
        """Record a raising subscriber without propagating: the offload being
        observed must not die because a tool attached to it is broken."""
        name = getattr(fn, "__qualname__", "") or type(fn).__name__
        self.subscriber_errors.inc(subscriber=name, kind=event.kind)
        with self._lock:
            first = name not in self._error_logged
            self._error_logged.add(name)
        if first:
            _log.warning(
                "event-bus subscriber %s raised on %r: %s (suppressed; "
                "further errors from this subscriber are counted in "
                "repro_bus_subscriber_errors, not logged)",
                name, event.kind, exc)

    @contextmanager
    def offload_scope(self, name: str) -> Iterator[str]:
        """Open a correlation scope for one offload of region ``name``.

        Yields the correlation id.  Scopes nest (a host fallback inside a
        cloud offload keeps the outer id as its parent span)."""
        with self._lock:
            corr = f"{name}#{next(self._corr_seq)}"
            self._scopes.append(_Scope(correlation_id=corr))
        try:
            yield corr
        finally:
            with self._lock:
                self._scopes.pop()

    def current_correlation(self) -> str:
        """The innermost active correlation id ('' outside any scope)."""
        with self._lock:
            return self._scopes[-1].correlation_id if self._scopes else ""

    # ---------------------------------------------------------------- history
    @property
    def events(self) -> tuple[Event, ...]:
        """Recorded events (empty when history is disabled)."""
        with self._lock:
            return tuple(self._history) if self._history is not None else ()

    def events_of(self, *kinds: str) -> list[Event]:
        return [e for e in self.events if e.kind in kinds]

    def counts(self) -> dict[str, int]:
        """Recorded events per kind (sorted by kind for stable output)."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return dict(sorted(out.items()))

    def clear(self) -> None:
        with self._lock:
            if self._history is not None:
                self._history.clear()


#: Process-wide default bus (history off: zero-cost until someone subscribes).
_default_bus = EventBus()


def get_bus() -> EventBus:
    """The process-wide bus every instrumented layer emits to."""
    return _default_bus


def set_bus(bus: EventBus) -> EventBus:
    """Swap the process-wide bus; returns the previous one."""
    global _default_bus
    old = _default_bus
    _default_bus = bus
    return old


@contextmanager
def use_bus(bus: EventBus) -> Iterator[EventBus]:
    """Temporarily install ``bus`` as the process-wide bus."""
    old = set_bus(bus)
    try:
        yield bus
    finally:
        set_bus(old)
