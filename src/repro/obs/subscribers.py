"""Bus subscribers: metrics, derived reports/timelines, log sinks.

The point of the event bus is that yesterday's bespoke artifacts become
*views* over one stream:

* :class:`MetricsSubscriber` — folds events into a
  :class:`~repro.obs.metrics_registry.MetricsRegistry` (the counters,
  gauges and histograms catalogued in ``docs/OBSERVABILITY.md``);
* :class:`ReportBuilder` — rebuilds an offload report and a
  :class:`~repro.simtime.timeline.Timeline` per correlation id, which the
  consistency tests diff against the :class:`~repro.core.report.OffloadReport`
  the plugin returns directly;
* :class:`SparkLogSink` — appends :class:`~repro.obs.events.LogEvent` records
  into a :class:`~repro.spark.logging.SparkLog`, making the driver log just
  another subscriber.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import (
    Event,
    EventBus,
    LogEvent,
    MapDownload,
    MapUpload,
    Resubmit,
    Retry,
    TargetBegin,
    TargetEnd,
    TaskEnd,
    TaskStart,
)
from repro.obs.metrics_registry import MetricError, MetricsRegistry
from repro.simtime.timeline import Phase, Timeline


class MetricsSubscriber:
    """Folds the event stream into a metrics registry.

    One instance per registry; attach to any number of buses via
    :meth:`attach` (returns the unsubscribe callable).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._offloads = r.counter(
            "repro_offloads_total", "Target-region offloads started.")
        self._offload_seconds = r.histogram(
            "repro_offload_seconds", "Offload wall time (full_s milestone).")
        self._fallbacks = r.counter(
            "repro_fallbacks_total", "Offloads degraded to host execution.")
        self._bytes_up = r.counter(
            "repro_bytes_up_total", "Raw bytes staged host -> device storage.")
        self._bytes_up_wire = r.counter(
            "repro_bytes_up_wire_total", "Wire bytes uploaded (post-gzip).")
        self._bytes_down = r.counter(
            "repro_bytes_down_total", "Raw bytes downloaded device -> host.")
        self._bytes_down_wire = r.counter(
            "repro_bytes_down_wire_total", "Wire bytes downloaded.")
        self._cache_hits = r.counter(
            "repro_cache_hits_total", "Staged-input cache hits.")
        self._cache_saved = r.counter(
            "repro_cache_bytes_saved_total", "Upload bytes avoided by the cache.")
        self._retries = r.counter(
            "repro_retries_total", "Transient-failure retries by operation.")
        self._backoff = r.counter(
            "repro_retry_backoff_seconds_total", "Backoff charged by retries.")
        self._resubmissions = r.counter(
            "repro_resubmissions_total", "Spark job resubmissions.")
        self._preemptions = r.counter(
            "repro_preemptions_total", "Spot instances reclaimed mid-offload.")
        self._executors_lost = r.counter(
            "repro_executors_lost_total", "Executors lost to faults.")
        self._breaker_trips = r.counter(
            "repro_breaker_trips_total", "Circuit-breaker trips by device.")
        self._submits = r.counter(
            "repro_spark_submits_total", "spark-submit attempts by outcome.")
        self._jobs = r.counter(
            "repro_spark_jobs_total", "Spark jobs run to completion.")
        self._tasks = r.counter(
            "repro_tasks_total", "Tasks completed per worker.")
        self._task_seconds = r.histogram(
            "repro_task_duration_seconds", "Per-task slot durations.")
        self._active_tasks = r.gauge(
            "repro_active_tasks", "Tasks currently occupying a slot.")
        self._workers_seen = r.gauge(
            "repro_active_workers", "Distinct workers that ran a task.")
        self._storage_ops = r.counter(
            "repro_storage_ops_total", "Object-store operations by op and store.")
        self._storage_bytes = r.counter(
            "repro_storage_bytes_total", "Object-store payload bytes by op.")
        self._ssh = r.counter(
            "repro_ssh_connects_total", "SSH handshakes by outcome.")
        self._logs = r.counter(
            "repro_log_records_total", "SparkLog records by level.")
        self._env_enters = r.counter(
            "repro_data_env_enters_total",
            "Persistent data environments opened, by device.")
        self._env_exits = r.counter(
            "repro_data_env_exits_total",
            "Persistent data environments closed, by device.")
        self._env_updates = r.counter(
            "repro_data_env_updates_total",
            "target-update motions, by direction.")
        self._resident_hits = r.counter(
            "repro_data_env_resident_hits_total",
            "Buffers found resident on the device (transfer skipped).")
        self._not_retransferred = r.counter(
            "repro_data_env_bytes_not_retransferred",
            "Upload bytes avoided because the buffer was already resident.")
        self._speculated = r.counter(
            "repro_speculation_launched_total",
            "Speculative straggler copies launched, by copy worker.")
        self._speculation_wins = r.counter(
            "repro_speculation_won_total",
            "Speculative copies that beat the original, by winning worker.")
        self._speculation_saved = r.counter(
            "repro_speculation_saved_seconds_total",
            "Modelled tail seconds removed by winning speculative copies.")
        self._checkpoints = r.counter(
            "repro_checkpoint_commits_total",
            "Tile outputs durably committed to storage, by region.")
        self._checkpoint_bytes = r.counter(
            "repro_checkpoint_bytes_total",
            "Bytes of committed tile checkpoints.")
        self._resumes = r.counter(
            "repro_resumes_total",
            "Resubmissions that resumed from checkpoints, by region.")
        self._tiles_skipped = r.counter(
            "repro_tiles_skipped_total",
            "Tiles not re-executed thanks to committed checkpoints.")
        self._corruptions = r.counter(
            "repro_corruptions_detected_total",
            "Objects that failed checksum verification, by store and op.")
        self._inferred_offloads = r.counter(
            "repro_inferred_offloads_total",
            "Offloads that ran clause inference, by region and outcome.")
        self._inferred_clauses = r.counter(
            "repro_inferred_clauses_total",
            "Map clauses narrowed or dropped by inference, by region.")
        self._inferred_partitions = r.counter(
            "repro_inferred_partitions_total",
            "Partition specs synthesized by inference, by region.")
        self._workers: set[str] = set()

    def attach(self, bus: EventBus):
        # Surface the bus's subscriber-error counter in this registry so a
        # broken tool shows up in the exposition, not just in the log.
        try:
            self.registry.register(bus.subscriber_errors)
        except MetricError:
            pass  # another bus's error counter already owns the name
        return bus.subscribe(self)

    # ---------------------------------------------------------------- handler
    def __call__(self, e: Event) -> None:
        kind = e.kind
        if kind == "target_begin":
            self._offloads.inc(device=e.device, region=e.region)
        elif kind == "target_end":
            if e.ok:
                self._offload_seconds.observe(e.full_s, device=e.device)
        elif kind == "fallback":
            self._fallbacks.inc(reason=e.reason.split(":")[0][:60] or "unknown")
        elif kind == "map_upload":
            self._bytes_up.inc(e.bytes_raw, buffer=e.buffer)
            self._bytes_up_wire.inc(e.bytes_wire, buffer=e.buffer)
        elif kind == "map_download":
            self._bytes_down.inc(e.bytes_raw, buffer=e.buffer)
            self._bytes_down_wire.inc(e.bytes_wire, buffer=e.buffer)
        elif kind == "cache_hit":
            self._cache_hits.inc(buffer=e.buffer)
            self._cache_saved.inc(e.bytes_saved)
        elif kind == "retry":
            self._retries.inc(op=e.op)
            self._backoff.inc(e.delay_s, op=e.op)
        elif kind == "resubmit":
            self._resubmissions.inc()
        elif kind == "preemption":
            self._preemptions.inc()
        elif kind == "executor_lost":
            self._executors_lost.inc()
        elif kind == "breaker_open":
            self._breaker_trips.inc(device=e.device)
        elif kind == "spark_submit":
            self._submits.inc(ok=str(e.ok).lower())
        elif kind == "job_start":
            pass  # counted on completion
        elif kind == "job_end":
            self._jobs.inc()
        elif kind == "task_start":
            self._active_tasks.inc()
            if e.worker not in self._workers:
                self._workers.add(e.worker)
                self._workers_seen.set(len(self._workers))
        elif kind == "task_end":
            self._active_tasks.dec()
            self._tasks.inc(worker=e.worker)
            self._task_seconds.observe(e.duration_s)
        elif kind == "task_speculated":
            self._speculated.inc(worker=e.copy_worker)
        elif kind == "speculation_won":
            self._speculation_wins.inc(worker=e.winner)
            self._speculation_saved.inc(e.saved_s)
        elif kind == "storage_op":
            self._storage_ops.inc(op=e.op, store=e.store)
            if e.nbytes:
                self._storage_bytes.inc(e.nbytes, op=e.op)
        elif kind == "ssh_connect":
            self._ssh.inc(ok=str(e.ok).lower())
        elif kind == "data_env_enter":
            self._env_enters.inc(device=e.device)
        elif kind == "data_env_exit":
            self._env_exits.inc(device=e.device)
        elif kind == "target_update":
            self._env_updates.inc(direction=e.direction)
        elif kind == "resident_hit":
            self._resident_hits.inc(device=e.device)
            self._not_retransferred.inc(e.bytes_saved)
        elif kind == "checkpoint_commit":
            self._checkpoints.inc(region=e.region)
            self._checkpoint_bytes.inc(e.nbytes)
        elif kind == "resume_from_checkpoint":
            self._resumes.inc(region=e.region)
            self._tiles_skipped.inc(e.tiles_skipped)
        elif kind == "corruption_detected":
            self._corruptions.inc(store=e.store, op=e.op)
        elif kind == "map_inferred":
            outcome = ("degraded" if e.degraded
                       else "changed" if e.changed else "unchanged")
            self._inferred_offloads.inc(region=e.region, outcome=outcome)
            if e.narrowed or e.dropped:
                self._inferred_clauses.inc(e.narrowed + e.dropped,
                                           region=e.region)
            if e.partitions_added:
                self._inferred_partitions.inc(e.partitions_added,
                                              region=e.region)
        elif kind == "region_fused":
            # Created lazily: synchronous runs never emit this kind, and the
            # registry snapshot must stay byte-identical for them (the
            # committed bench baselines embed the full family list).
            self.registry.counter(
                "repro_fused_regions",
                "Regions fused into combined Spark jobs",
            ).inc(len(e.members), device=e.device)
            self.registry.counter(
                "repro_fusion_wire_bytes_saved",
                "Estimated cluster<->storage bytes avoided by fusion",
            ).inc(e.bytes_saved)
        elif kind == "log":
            self._logs.inc(level=e.level)


@dataclass
class DerivedReport:
    """An offload report reconstructed purely from bus events.

    The consistency tests assert these fields equal the
    :class:`~repro.core.report.OffloadReport` the plugin hands back — proof
    that the instrumentation plane sees everything the report records.
    """

    correlation_id: str
    region: str = ""
    device: str = ""
    mode: str = ""
    ok: bool = False
    fell_back_to_host: bool = False
    full_s: float = 0.0
    bytes_up_raw: int = 0
    bytes_up_wire: int = 0
    bytes_down_raw: int = 0
    bytes_down_wire: int = 0
    tasks_run: int = 0
    retries: int = 0
    backoff_s: float = 0.0
    resubmissions: int = 0
    preemptions: int = 0
    cache_hits: int = 0
    cache_bytes_saved: int = 0
    resident_hits: int = 0
    bytes_not_retransferred: int = 0
    tasks_speculated: int = 0
    speculation_wins: int = 0
    timeline: Timeline = field(default_factory=Timeline)


class ReportBuilder:
    """Rebuilds per-offload reports and timelines from the stream."""

    #: Event kinds that contribute a span to the derived timeline.
    _SPAN_PHASES = {
        "map_upload": Phase.HOST_UPLOAD,
        "map_download": Phase.HOST_DOWNLOAD,
        "retry": Phase.RETRY_BACKOFF,
        "resubmit": Phase.RESUBMIT,
    }

    def __init__(self) -> None:
        self._reports: dict[str, DerivedReport] = {}
        self._order: list[str] = []

    def attach(self, bus: EventBus):
        return bus.subscribe(self)

    def report_for(self, correlation_id: str) -> DerivedReport:
        return self._reports[correlation_id]

    def correlations(self) -> list[str]:
        return list(self._order)

    def latest(self) -> DerivedReport:
        if not self._order:
            raise LookupError("no offload observed yet")
        return self._reports[self._order[-1]]

    def _get(self, corr: str) -> DerivedReport:
        if corr not in self._reports:
            self._reports[corr] = DerivedReport(correlation_id=corr)
            self._order.append(corr)
        return self._reports[corr]

    def __call__(self, e: Event) -> None:
        corr = e.correlation_id
        if not corr:
            return
        rep = self._get(corr)
        if isinstance(e, TargetBegin):
            # The host rerun of a degraded offload re-enters target_begin
            # under the same correlation id; keep the first device name.
            if not rep.region:
                rep.region, rep.device, rep.mode = e.region, e.device, e.mode
        elif isinstance(e, TargetEnd):
            rep.ok = e.ok
            rep.fell_back_to_host = e.fell_back
            rep.full_s = e.full_s
        elif isinstance(e, MapUpload):
            rep.bytes_up_raw += e.bytes_raw
            rep.bytes_up_wire += e.bytes_wire
            if e.end > e.start:
                rep.timeline.record(Phase.HOST_UPLOAD, e.start, e.end,
                                    resource="host", label=e.buffer)
        elif isinstance(e, MapDownload):
            rep.bytes_down_raw += e.bytes_raw
            rep.bytes_down_wire += e.bytes_wire
            if e.end > e.start:
                rep.timeline.record(Phase.HOST_DOWNLOAD, e.start, e.end,
                                    resource="host", label=e.buffer)
        elif isinstance(e, TaskStart):
            pass  # spans are closed by TaskEnd
        elif isinstance(e, TaskEnd):
            rep.tasks_run += 1
            rep.timeline.record(Phase.COMPUTE, e.time - e.duration_s, e.time,
                                resource=e.worker, label=f"task-{e.task_id}")
        elif isinstance(e, Retry):
            rep.retries += 1
            rep.backoff_s += e.delay_s
            rep.timeline.record(Phase.RETRY_BACKOFF, e.time, e.time + e.delay_s,
                                resource="host", label=e.op)
        elif isinstance(e, Resubmit):
            rep.resubmissions += 1
            rep.backoff_s += e.delay_s
            rep.timeline.record(Phase.RESUBMIT, e.time, e.time + e.delay_s,
                                resource="host", label=f"resubmit-{e.submission}")
        elif e.kind == "preemption":
            rep.preemptions += 1
            rep.timeline.record(Phase.PREEMPTION, e.time, e.time,
                                resource=e.worker, label="spot-reclaimed")
        elif e.kind == "recovery":
            rep.timeline.record(Phase.RECOVERY, e.time - e.duration_s, e.time,
                                resource=e.worker, label="spot-replace")
        elif e.kind == "task_speculated":
            rep.tasks_speculated += 1
            rep.timeline.record(Phase.SPECULATION, e.time, e.time,
                                resource="driver",
                                label=f"speculate-{e.task_id}")
        elif e.kind == "speculation_won":
            rep.speculation_wins += 1
        elif e.kind == "cache_hit":
            rep.cache_hits += 1
            rep.cache_bytes_saved += e.bytes_saved
        elif e.kind == "resident_hit":
            rep.resident_hits += 1
            rep.bytes_not_retransferred += e.bytes_saved
        elif e.kind == "fallback":
            rep.timeline.record(Phase.FALLBACK, e.time, e.time,
                                resource="host", label=e.reason[:40])


class SparkLogSink:
    """Appends bus LogEvents into a SparkLog (the log as a derived view).

    Records originating from the target log itself are skipped, so a
    SparkLog can simultaneously publish to and subscribe from one bus
    without echoing.
    """

    def __init__(self, log) -> None:
        self.log = log

    def attach(self, bus: EventBus):
        return bus.subscribe(self, kinds=("log",))

    def __call__(self, e: Event) -> None:
        if not isinstance(e, LogEvent):  # pragma: no cover - kinds filter
            return
        if e.resource == f"sparklog-{id(self.log)}":
            return
        self.log.append_record(e.time, e.component, e.message, e.level)
