"""Benchmark harness: instrumented paper runs with a regression check.

``repro bench <name>`` runs one paper workload as a modeled offload under a
history-keeping :class:`~repro.obs.events.EventBus` with a
:class:`~repro.obs.subscribers.MetricsSubscriber` attached, and writes
``BENCH_<name>.json``::

    {
      "schema": "repro-bench/1",
      "benchmark": "mm",
      "params": {"cores": 32, "workers": 16, "density": 1.0, "size": 4000},
      "milestones": {"full_s": ..., "spark_job_s": ..., "computation_s": ...},
      "events": {"target_begin": 1, "map_upload": 3, ...},
      "metrics": { ... MetricsRegistry.snapshot() ... }
    }

Modeled offloads are bit-deterministic (simulated clock, no wall-clock
entropy), so a baseline file can be committed and CI can fail hard on any
milestone that grows more than ``threshold`` (default 10 %) — see
:func:`compare`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.obs.events import EventBus, use_bus
from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.subscribers import MetricsSubscriber

SCHEMA = "repro-bench/1"

#: Milestones checked by :func:`compare` — all "lower is better" times.
REGRESSION_MILESTONES = (
    "full_s",
    "spark_job_s",
    "computation_s",
    "host_comm_s",
    "spark_overhead_s",
)

#: Absolute slack (simulated seconds) below which a milestone never counts as
#: regressed — keeps near-zero components from tripping on rounding.
ABS_SLACK_S = 1e-6


def run_benchmark(
    name: str,
    cores: int = 32,
    n_workers: int = 16,
    density: float = 1.0,
    size: int | None = None,
    quick: bool = False,
) -> dict[str, object]:
    """One instrumented modeled offload of ``name``; returns the payload.

    ``quick`` shrinks the problem to the workload's test size — same code
    paths, seconds of runtime, still fully deterministic — which is what the
    CI bench job runs on every push.

    Names in :data:`EXTRA_BENCHMARKS` (multi-offload scenarios that don't fit
    the one-region ``WORKLOADS`` registry) dispatch to their own runner;
    anything else must be a paper workload.
    """
    from repro.metrics.figures import run_point
    from repro.workloads.specs import WORKLOADS

    extra = EXTRA_BENCHMARKS.get(name)
    if extra is not None:
        return extra(cores=cores, n_workers=n_workers, density=density,
                     size=size, quick=quick)
    spec = WORKLOADS[name]
    actual_size = size if size is not None else (
        spec.test_size if quick else spec.paper_size)

    bus = EventBus(keep_history=True)
    registry = MetricsRegistry()
    MetricsSubscriber(registry).attach(bus)
    with use_bus(bus):
        point = run_point(name, cores, density=density, size=actual_size,
                          n_workers=n_workers)
    rep = point.report
    milestones = {
        "full_s": rep.full_s,
        "spark_job_s": rep.spark_job_s,
        "computation_s": rep.computation_s,
        "host_comm_s": rep.host_comm_s,
        "spark_overhead_s": rep.spark_overhead_s,
        "backoff_s": rep.backoff_s,
        "sequential_s": point.sequential_s,
        "speedup_full": point.speedup_full,
        "speedup_spark": point.speedup_spark,
        "speedup_computation": point.speedup_computation,
        "bytes_up_wire": rep.bytes_up_wire,
        "bytes_down_wire": rep.bytes_down_wire,
    }
    return {
        "schema": SCHEMA,
        "benchmark": name,
        "params": {
            "cores": cores,
            "workers": n_workers,
            "density": density,
            "size": actual_size,
            "mode": "modeled",
            "quick": quick,
        },
        "milestones": milestones,
        "events": bus.counts(),
        "metrics": registry.snapshot(),
    }


def run_chained_3mm(
    cores: int = 32,
    n_workers: int = 16,
    density: float = 1.0,
    size: int | None = None,
    quick: bool = False,
) -> dict[str, object]:
    """The `target data` headline: 3MM as three chained offloads.

    The instrumented run keeps A..D and the intermediates E, F inside one
    persistent data environment, so the third product re-reads E and F in
    place instead of re-uploading them.  An identical *unmanaged* chain (no
    environment) runs un-instrumented for reference; its upload traffic
    lands in the ``bytes_up_wire_unmanaged`` milestone, making the saving
    visible — and regressable — in one file.
    """
    from repro.core.api import offload
    from repro.core.buffers import ExecutionMode
    from repro.core.plugin_cloud import CloudDevice
    from repro.core.runtime import OffloadRuntime
    from repro.metrics.figures import demo_config
    from repro.workloads.polybench import mm3_chain_regions
    from repro.workloads.specs import WORKLOADS

    spec = WORKLOADS["3mm"]
    n = size if size is not None else (spec.test_size if quick else spec.paper_size)
    names = ("A", "B", "C", "D", "E", "F", "G")
    lengths = {v: n * n for v in names}
    densities = {v: density for v in names}

    def chain(managed: bool):
        rt = OffloadRuntime()
        rt.register(CloudDevice(demo_config(n_workers), physical_cores=cores))
        regions = mm3_chain_regions("CLOUD")
        reports = []

        def run_all():
            for region in regions:
                reports.append(offload(
                    region, scalars={"N": n}, runtime=rt,
                    mode=ExecutionMode.MODELED,
                    lengths=lengths, densities=densities))

        if not managed:
            run_all()
            return reports, None
        with rt.target_data(
                device="CLOUD",
                map_to={v: n * n for v in ("A", "B", "C", "D")},
                map_alloc={"E": n * n, "F": n * n},
                densities=densities,
                mode=ExecutionMode.MODELED) as env:
            run_all()
        return reports, env.report

    bus = EventBus(keep_history=True)
    registry = MetricsRegistry()
    MetricsSubscriber(registry).attach(bus)
    with use_bus(bus):
        reports, env_report = chain(managed=True)
    bare_reports, _ = chain(managed=False)

    milestones = {
        "full_s": sum(r.full_s for r in reports)
        + env_report.enter_s + env_report.exit_s + env_report.update_s,
        "spark_job_s": sum(r.spark_job_s for r in reports),
        "computation_s": sum(r.computation_s for r in reports),
        "host_comm_s": sum(r.host_comm_s for r in reports)
        + env_report.enter_s + env_report.exit_s,
        "spark_overhead_s": sum(r.spark_overhead_s for r in reports),
        "backoff_s": sum(r.backoff_s for r in reports) + env_report.backoff_s,
        "env_enter_s": env_report.enter_s,
        "env_exit_s": env_report.exit_s,
        "resident_hits": sum(r.resident_hits for r in reports),
        "bytes_not_retransferred": sum(r.bytes_not_retransferred
                                       for r in reports),
        "bytes_up_wire": sum(r.bytes_up_wire for r in reports)
        + env_report.bytes_up_wire,
        "bytes_down_wire": sum(r.bytes_down_wire for r in reports)
        + env_report.bytes_down_wire,
        "bytes_up_wire_unmanaged": sum(r.bytes_up_wire for r in bare_reports),
    }
    return {
        "schema": SCHEMA,
        "benchmark": "chained_3mm",
        "params": {
            "cores": cores,
            "workers": n_workers,
            "density": density,
            "size": n,
            "mode": "modeled",
            "quick": quick,
        },
        "milestones": milestones,
        "events": bus.counts(),
        "metrics": registry.snapshot(),
    }


def run_ablation_speculation(
    cores: int = 32,
    n_workers: int = 16,
    density: float = 1.0,
    size: int | None = None,
    quick: bool = False,
) -> dict[str, object]:
    """Adaptive-execution ablation: speculation and weighted tiling A/B.

    Four modeled matmul offloads (docs/SCHEDULING.md):

    * **nospec** — a spot preemption mid-task, speculation off: the job
      pays the full failure-detection timeout plus a rerun.
    * **spec** — the same preemption with ``speculation = true``: the
      straggler copy rescues the tail.  This run is the instrumented one
      and provides the gated milestones, so CI fails if the rescue stops
      working.
    * **static_het / weighted_het** — a half-speed worker under Algorithm 1
      tiles vs capacity-weighted tiles, speculation off, fault-free.

    The preemption instant is calibrated from a fault-free dry run (90 %
    through the latest compute span), so the plan always lands inside a
    reservation regardless of size or core count.  Everything is modeled
    and bit-deterministic, so ``full_s_nospec > full_s`` and
    ``full_s_static_het > full_s_weighted_het`` are stable invariants the
    ablation tests assert.
    """
    from repro.core.api import offload
    from repro.core.buffers import ExecutionMode
    from repro.core.plugin_cloud import CloudDevice
    from repro.core.runtime import OffloadRuntime
    from repro.metrics.figures import demo_config
    from repro.simtime.timeline import Phase
    from repro.spark.faults import NO_FAULTS, FaultPlan
    from repro.spark.schedule import ScheduleConfig
    from repro.workloads.specs import WORKLOADS

    spec = WORKLOADS["matmul"]
    n = size if size is not None else (800 if quick else 2000)

    def run(schedule: ScheduleConfig, fault_plan: FaultPlan | None = None,
            worker_speeds: tuple[float, ...] = ()):
        rt = OffloadRuntime()
        rt.register(CloudDevice(
            demo_config(n_workers), physical_cores=cores,
            schedule=schedule,
            fault_plan=fault_plan if fault_plan is not None else NO_FAULTS,
            worker_speeds=worker_speeds or None))
        return offload(spec.build_region("CLOUD"), scalars=spec.scalars(n),
                       runtime=rt, mode=ExecutionMode.MODELED)

    static = ScheduleConfig()
    speculative = ScheduleConfig(speculation=True)

    # Calibrate the preemption from a fault-free dry run: kill the worker
    # running the latest-starting compute span, 90% of the way through it.
    dry = run(static)
    victim = max((s for s in dry.timeline.spans if s.phase is Phase.COMPUTE),
                 key=lambda s: (s.start, s.resource))
    preempt_t = victim.start + 0.9 * max(victim.duration, 0.0)
    plan = FaultPlan(preempt_at={victim.resource: preempt_t})

    nospec = run(static, fault_plan=plan)

    bus = EventBus(keep_history=True)
    registry = MetricsRegistry()
    MetricsSubscriber(registry).attach(bus)
    with use_bus(bus):
        rescued = run(speculative, fault_plan=plan)

    # Heterogeneous cluster: the second executor runs at half speed.
    speeds = (1.0, 0.5)
    static_het = run(static, worker_speeds=speeds)
    weighted_het = run(ScheduleConfig(mode="weighted"), worker_speeds=speeds)

    milestones = {
        # Gated: the speculative run under preemption is the product here.
        "full_s": rescued.full_s,
        "spark_job_s": rescued.spark_job_s,
        "computation_s": rescued.computation_s,
        "host_comm_s": rescued.host_comm_s,
        "spark_overhead_s": rescued.spark_overhead_s,
        "backoff_s": rescued.backoff_s,
        # Informational A/B milestones for the ablation assertions.
        "full_s_nospec": nospec.full_s,
        "speculation_saved_s": rescued.speculation_saved_s,
        "tasks_speculated": rescued.tasks_speculated,
        "speculation_wins": rescued.speculation_wins,
        "full_s_static_het": static_het.full_s,
        "full_s_weighted_het": weighted_het.full_s,
        "preempt_at_s": preempt_t,
    }
    return {
        "schema": SCHEMA,
        "benchmark": "ablation_speculation",
        "params": {
            "cores": cores,
            "workers": n_workers,
            "density": density,
            "size": n,
            "mode": "modeled",
            "quick": quick,
        },
        "milestones": milestones,
        "events": bus.counts(),
        "metrics": registry.snapshot(),
    }


def run_chaos_recovery(
    cores: int = 32,
    n_workers: int = 16,
    density: float = 1.0,
    size: int | None = None,
    quick: bool = False,
) -> dict[str, object]:
    """Durable recovery A/B: restart vs resume under a mid-wave driver death.

    Three chained-3MM runs (docs/RESILIENCE.md), all inside one persistent
    data environment:

    * **healthy** — fault-free, ``recovery = none``: the reference chain.
    * **restart** — a driver death calibrated to land at ~50 % tile
      completion, ``recovery = restart``: the standby driver replays the
      journal but re-executes every tile (PR-1-shaped recovery, minus the
      host fallback).
    * **resume** — the same death under ``recovery = resume``: committed
      tile checkpoints are skipped and only the remainder re-executes.
      This run is the instrumented one and provides the gated milestones,
      so CI fails if tile-granular resume stops paying off.

    The death instant comes from a fault-free dry run under the resume
    policy (which journals every tile commit): the median ``tile_done`` end
    time, so roughly half the chain's tiles are durable when the driver
    disappears.  Everything is modeled and bit-deterministic, so
    ``tasks_run_resume < tasks_run_restart`` and
    ``cluster_bytes_wire_resume < cluster_bytes_wire_restart`` are stable
    invariants the recovery tests assert.
    """
    import dataclasses as _dc

    from repro.core.api import offload
    from repro.core.buffers import ExecutionMode
    from repro.core.plugin_cloud import CloudDevice
    from repro.core.runtime import OffloadRuntime
    from repro.metrics.figures import demo_config
    from repro.spark.faults import NO_FAULTS, FaultPlan
    from repro.workloads.polybench import mm3_chain_regions
    from repro.workloads.specs import WORKLOADS

    spec = WORKLOADS["3mm"]
    n = size if size is not None else (spec.test_size if quick else spec.paper_size)
    names = ("A", "B", "C", "D", "E", "F", "G")
    lengths = {v: n * n for v in names}
    densities = {v: density for v in names}

    def chain(recovery: str, fault_plan: FaultPlan):
        rt = OffloadRuntime()
        rt.register(CloudDevice(
            _dc.replace(demo_config(n_workers), recovery=recovery),
            physical_cores=cores, fault_plan=fault_plan))
        reports = []
        with rt.target_data(
                device="CLOUD",
                map_to={v: n * n for v in ("A", "B", "C", "D")},
                map_alloc={"E": n * n, "F": n * n},
                densities=densities,
                mode=ExecutionMode.MODELED) as env:
            for region in mm3_chain_regions("CLOUD"):
                reports.append(offload(
                    region, scalars={"N": n}, runtime=rt,
                    mode=ExecutionMode.MODELED,
                    lengths=lengths, densities=densities))
        return rt.device("CLOUD"), reports, env.report

    # Calibrate: a fault-free dry run journals every tile commit; kill the
    # driver at the median, i.e. at ~50 % tile completion across the chain.
    dry_dev, _, _ = chain("resume", NO_FAULTS)
    ends = sorted(r.payload["end"] for r in dry_dev.journal.records("tile_done"))
    death_at = ends[len(ends) // 2]
    plan = FaultPlan(driver_dies_at=death_at)

    _, healthy, healthy_env = chain("none", NO_FAULTS)
    _, restarted, restart_env = chain("restart", plan)

    bus = EventBus(keep_history=True)
    registry = MetricsRegistry()
    MetricsSubscriber(registry).attach(bus)
    with use_bus(bus):
        _, resumed, resume_env = chain("resume", plan)

    def total(reports, env_report, attr):
        return sum(getattr(r, attr) for r in reports) + getattr(
            env_report, attr, 0)

    def full(reports, env_report):
        return (sum(r.full_s for r in reports) + env_report.enter_s
                + env_report.exit_s + env_report.update_s)

    milestones = {
        # Gated: the resumed chain under a driver death is the product here.
        "full_s": full(resumed, resume_env),
        "spark_job_s": sum(r.spark_job_s for r in resumed),
        "computation_s": sum(r.computation_s for r in resumed),
        "host_comm_s": sum(r.host_comm_s for r in resumed)
        + resume_env.enter_s + resume_env.exit_s,
        "spark_overhead_s": sum(r.spark_overhead_s for r in resumed),
        "backoff_s": sum(r.backoff_s for r in resumed) + resume_env.backoff_s,
        # Informational A/B milestones for the recovery assertions.
        "death_at_s": death_at,
        "full_s_healthy": full(healthy, healthy_env),
        "full_s_restart": full(restarted, restart_env),
        "tiles_checkpointed": sum(r.tiles_checkpointed for r in resumed),
        "tiles_skipped": sum(r.tiles_skipped for r in resumed),
        "tasks_run_restart": sum(r.tasks_run for r in restarted),
        "tasks_run_resume": sum(r.tasks_run for r in resumed),
        "cluster_bytes_wire_restart": total(restarted, restart_env,
                                            "cluster_bytes_wire"),
        "cluster_bytes_wire_resume": total(resumed, resume_env,
                                           "cluster_bytes_wire"),
        "bytes_up_wire": sum(r.bytes_up_wire for r in resumed)
        + resume_env.bytes_up_wire,
        "bytes_down_wire": sum(r.bytes_down_wire for r in resumed)
        + resume_env.bytes_down_wire,
    }
    return {
        "schema": SCHEMA,
        "benchmark": "chaos_recovery",
        "params": {
            "cores": cores,
            "workers": n_workers,
            "density": density,
            "size": n,
            "mode": "modeled",
            "quick": quick,
        },
        "milestones": milestones,
        "events": bus.counts(),
        "metrics": registry.snapshot(),
    }


def run_inference_wire_bytes(
    cores: int = 32,
    n_workers: int = 16,
    density: float = 1.0,
    size: int | None = None,
    quick: bool = False,
) -> dict[str, object]:
    """Clause inference A/B: inferred maps vs the naive implicit default.

    For each of three Polybench workloads the naive region (every mapped
    array ``tofrom``, no partitions — what OpenMP's implicit default would
    ship) and its :func:`~repro.analysis.infer.infer_region` counterpart run
    as modeled offloads; ``wire_naive_<w>`` / ``wire_inferred_<w>``
    milestones record the total wire traffic of each, so CI can assert the
    synthesized clauses move strictly fewer bytes (docs/ANALYSIS.md).

    The instrumented run — providing the gated time milestones — is the
    inferred GEMM offload driven through the production path
    (``offload(..., infer_maps=True)`` on the naive region), so the
    ``map_inferred`` event and the ``repro_inferred_*`` counters land in the
    payload too.
    """
    from repro.analysis.infer import infer_region, naive_tofrom_region
    from repro.core.api import offload
    from repro.core.buffers import ExecutionMode
    from repro.core.plugin_cloud import CloudDevice
    from repro.core.runtime import OffloadRuntime
    from repro.metrics.figures import demo_config
    from repro.workloads.specs import WORKLOADS

    names = ("gemm", "covar", "3mm")

    def run(region, scalars, infer_maps: bool = False):
        rt = OffloadRuntime()
        rt.register(CloudDevice(demo_config(n_workers), physical_cores=cores))
        mapped = {i.name for c in region.maps for i in c.items}
        return offload(region, scalars=scalars, runtime=rt,
                       densities={v: density for v in mapped},
                       mode=ExecutionMode.MODELED, infer_maps=infer_maps)

    milestones: dict[str, object] = {}
    gemm_naive = None
    gemm_scalars: dict[str, float] = {}
    for w in names:
        spec = WORKLOADS[w]
        n = size if size is not None else (
            spec.test_size if quick else spec.paper_size)
        scalars = spec.scalars(n)
        naive = naive_tofrom_region(spec.build_region("CLOUD"))
        rep = infer_region(naive, scalars)
        if rep.degraded:
            raise RuntimeError(
                f"{w}: inference degraded ({'; '.join(rep.reasons)})")
        naive_report = run(naive, scalars)
        inferred_report = run(rep.region, scalars)
        milestones[f"wire_naive_{w}"] = (
            naive_report.bytes_up_wire + naive_report.bytes_down_wire)
        milestones[f"wire_inferred_{w}"] = (
            inferred_report.bytes_up_wire + inferred_report.bytes_down_wire)
        if w == "gemm":
            gemm_naive, gemm_scalars = naive, scalars

    bus = EventBus(keep_history=True)
    registry = MetricsRegistry()
    MetricsSubscriber(registry).attach(bus)
    with use_bus(bus):
        gated = run(gemm_naive, gemm_scalars, infer_maps=True)

    milestones.update({
        "full_s": gated.full_s,
        "spark_job_s": gated.spark_job_s,
        "computation_s": gated.computation_s,
        "host_comm_s": gated.host_comm_s,
        "spark_overhead_s": gated.spark_overhead_s,
        "backoff_s": gated.backoff_s,
        "bytes_up_wire": gated.bytes_up_wire,
        "bytes_down_wire": gated.bytes_down_wire,
    })
    return {
        "schema": SCHEMA,
        "benchmark": "inference_wire_bytes",
        "params": {
            "cores": cores,
            "workers": n_workers,
            "density": density,
            "size": size,
            "mode": "modeled",
            "quick": quick,
        },
        "milestones": milestones,
        "events": bus.counts(),
        "metrics": registry.snapshot(),
    }


def run_profile_attribution(
    cores: int = 32,
    n_workers: int = 16,
    density: float = 1.0,
    size: int | None = None,
    quick: bool = False,
) -> dict[str, object]:
    """Critical-path profiler self-check: attribution must stay exact.

    Two scenarios run instrumented and get profiled
    (:func:`~repro.obs.profile.profile_report`):

    * **gemm** with ``manage_instances = true``, so the provider's billing
      ledger has real line items to attribute — this run provides the gated
      time milestones;
    * the **chained 3MM** environment (three offloads in one ``target
      data``), profiled per offload via the event stream's correlation ids.

    The runner raises on any violated profiler invariant rather than
    recording it, so the bench job fails loudly if attribution drifts:

    * every profile's critical path fits inside its wall clock;
    * phase self times (wait included) sum to the wall clock within 1 %;
    * the gemm critical path orders host upload before cluster init before
      host download (with compute in between when it makes the path);
    * at least 95 % of billed dollars and of the report's wire bytes land
      on named phases.
    """
    import dataclasses as _dc

    from repro.core.api import offload
    from repro.core.buffers import ExecutionMode
    from repro.core.plugin_cloud import CloudDevice
    from repro.core.runtime import OffloadRuntime
    from repro.metrics.figures import demo_config
    from repro.obs.profile import profile_offloads
    from repro.workloads.polybench import mm3_chain_regions
    from repro.workloads.specs import WORKLOADS

    def check(cond: bool, msg: str) -> None:
        if not cond:
            raise RuntimeError(f"profile_attribution: {msg}")

    def check_exact(profile) -> None:
        eps = profile.graph.eps
        check(profile.critical_s <= profile.wall_s + eps,
              f"{profile.region}: critical path {profile.critical_s} "
              f"exceeds wall {profile.wall_s}")
        total = sum(profile.phase_self_s.values())
        check(abs(total - profile.wall_s) <= 0.01 * max(profile.wall_s, 1e-9),
              f"{profile.region}: phase self times sum to {total}, "
              f"wall is {profile.wall_s}")

    # ------------------------------------------------ gemm with real billing
    spec = WORKLOADS["gemm"]
    n = size if size is not None else (
        spec.test_size if quick else spec.paper_size)
    bus = EventBus(keep_history=True)
    registry = MetricsRegistry()
    MetricsSubscriber(registry).attach(bus)
    rt = OffloadRuntime()
    dev = CloudDevice(_dc.replace(demo_config(n_workers),
                                  manage_instances=True),
                      physical_cores=cores)
    rt.register(dev)
    with use_bus(bus):
        gemm = offload(spec.build_region("CLOUD"), scalars=spec.scalars(n),
                       runtime=rt, mode=ExecutionMode.MODELED,
                       densities={v: density for v in ("A", "B", "C")})
    prof = profile_offloads(bus, [gemm], ledger=dev.billing_ledger)[0]

    check_exact(prof)
    first: dict[str, int] = {}
    for pos, i in enumerate(prof.critical_indices):
        first.setdefault(prof.spans[i].phase.value, pos)
    for a, b in (("host_upload", "cluster_init"),
                 ("cluster_init", "host_download")):
        check(a in first and b in first and first[a] < first[b],
              f"gemm critical path out of order: {a} not before {b} "
              f"(chain phases {sorted(first, key=first.get)})")
    if "computation" in first:
        check(first["cluster_init"] < first["computation"]
              < first["host_download"],
              "gemm critical path: computation outside its window")
    check(prof.billed_usd > 0.0, "managed gemm run billed nothing")
    check(sum(prof.phase_usd.values()) >= 0.95 * prof.billed_usd,
          f"only {sum(prof.phase_usd.values())} of {prof.billed_usd} USD "
          "attributed to named phases")
    wire = gemm.bytes_up_wire + gemm.bytes_down_wire + gemm.cluster_bytes_wire
    attributed = sum(prof.phase_bytes_wire.values())
    check(attributed >= 0.95 * wire,
          f"only {attributed} of {wire} wire bytes attributed")

    # ------------------------------------------------------- chained 3MM env
    spec3 = WORKLOADS["3mm"]
    n3 = size if size is not None else (
        spec3.test_size if quick else spec3.paper_size)
    names = ("A", "B", "C", "D", "E", "F", "G")
    bus3 = EventBus(keep_history=True)
    rt3 = OffloadRuntime()
    rt3.register(CloudDevice(demo_config(n_workers), physical_cores=cores))
    reports: list = []
    with use_bus(bus3):
        with rt3.target_data(
                device="CLOUD",
                map_to={v: n3 * n3 for v in ("A", "B", "C", "D")},
                map_alloc={"E": n3 * n3, "F": n3 * n3},
                densities={v: density for v in names},
                mode=ExecutionMode.MODELED):
            for region in mm3_chain_regions("CLOUD"):
                reports.append(offload(
                    region, scalars={"N": n3}, runtime=rt3,
                    mode=ExecutionMode.MODELED,
                    lengths={v: n3 * n3 for v in names},
                    densities={v: density for v in names}))
    chain_profiles = profile_offloads(bus3, reports)
    check(len(chain_profiles) == 3, "expected three chained profiles")
    for cp in chain_profiles:
        check_exact(cp)
        check(bool(cp.correlation_id),
              f"{cp.region}: no correlation id paired")

    milestones = {
        # Gated: the instrumented managed gemm offload.
        "full_s": gemm.full_s,
        "spark_job_s": gemm.spark_job_s,
        "computation_s": gemm.computation_s,
        "host_comm_s": gemm.host_comm_s,
        "spark_overhead_s": gemm.spark_overhead_s,
        "backoff_s": gemm.backoff_s,
        # Informational: the profiler's own outputs, visible in the diff
        # whenever attribution shifts.
        "critical_path_s": prof.critical_s,
        "critical_share": prof.critical_share,
        "wait_s": prof.wait_s,
        "billed_usd": prof.billed_usd,
        "usd_attributed": sum(prof.phase_usd.values()),
        "bytes_wire_attributed": attributed,
        "chain_critical_s": sum(p.critical_s for p in chain_profiles),
        "chain_wait_s": sum(p.wait_s for p in chain_profiles),
        **{f"what_if_{w.name}_saved_s": w.saved_s
           for w in prof.what_if_scenarios()},
    }
    return {
        "schema": SCHEMA,
        "benchmark": "profile_attribution",
        "params": {
            "cores": cores,
            "workers": n_workers,
            "density": density,
            "size": n,
            "mode": "modeled",
            "quick": quick,
        },
        "milestones": milestones,
        "events": bus.counts(),
        "metrics": registry.snapshot(),
    }


def run_fusion_wire_bytes(
    cores: int = 32,
    n_workers: int = 16,
    density: float = 1.0,
    size: int | None = None,
    quick: bool = False,
) -> dict[str, object]:
    """Task-graph fusion A/B/C: fused vs managed vs unmanaged chained 3MM.

    The same three-region 3MM chain runs three ways (docs/TASKGRAPH.md):

    * **unmanaged** — the plain serial chain, no data environment: every
      intermediate crosses the WAN twice.
    * **managed** — the PR-4 headline: one persistent ``target data``
      environment keeps A..D and the alloc'd intermediates E, F resident,
      so nothing is re-uploaded — but each region is still its own Spark
      job, and E and F still round-trip through cloud storage between jobs.
    * **fused** — the same environment with ``nowait=True`` offloads
      flushed by one ``taskwait``: the planner fuses all three regions into
      a single Spark job whose intermediates live in driver memory and
      never touch storage.  This run is the instrumented one and provides
      the gated milestones.

    The runner *raises* on any violated superiority invariant rather than
    recording it, so the bench job fails loudly if fusion stops paying off:

    * the fused chain moves strictly fewer cluster-side wire bytes
      (task shipping + driver<->storage traffic) than the managed chain;
    * the fused chain's end-to-end simulated time is strictly below the
      managed chain's;
    * all three regions actually fused into one job with both
      intermediates elided.
    """
    from repro.core.api import offload
    from repro.core.buffers import ExecutionMode
    from repro.core.plugin_cloud import CloudDevice
    from repro.core.runtime import OffloadRuntime
    from repro.metrics.figures import demo_config
    from repro.workloads.polybench import mm3_chain_regions
    from repro.workloads.specs import WORKLOADS

    def check(cond: bool, msg: str) -> None:
        if not cond:
            raise RuntimeError(f"fusion_wire_bytes: {msg}")

    spec = WORKLOADS["3mm"]
    n = size if size is not None else (spec.test_size if quick else spec.paper_size)
    names = ("A", "B", "C", "D", "E", "F", "G")
    lengths = {v: n * n for v in names}
    densities = {v: density for v in names}

    def chain(managed: bool, fused: bool):
        rt = OffloadRuntime()
        rt.register(CloudDevice(demo_config(n_workers), physical_cores=cores))
        regions = mm3_chain_regions("CLOUD")
        reports: list = []

        def run_all():
            for region in regions:
                reports.append(offload(
                    region, scalars={"N": n}, runtime=rt,
                    mode=ExecutionMode.MODELED, nowait=fused,
                    lengths=lengths, densities=densities))
            if fused:
                # The handles are placeholders; the taskwait flush executes
                # the fused job and fills every member's (shared) report.
                reports[:] = rt.taskwait()

        if not managed:
            run_all()
            return reports, None
        with rt.target_data(
                device="CLOUD",
                map_to={v: n * n for v in ("A", "B", "C", "D")},
                map_alloc={"E": n * n, "F": n * n},
                densities=densities,
                mode=ExecutionMode.MODELED) as env:
            run_all()
        return reports, env.report

    unmanaged_reports, _ = chain(managed=False, fused=False)
    managed_reports, managed_env = chain(managed=True, fused=False)

    bus = EventBus(keep_history=True)
    registry = MetricsRegistry()
    MetricsSubscriber(registry).attach(bus)
    with use_bus(bus):
        fused_reports, fused_env = chain(managed=True, fused=True)

    def unique(reports):
        # Members of one fused job share a single report object.
        return list({id(r): r for r in reports}.values())

    def full(reports, env_report):
        out = sum(r.full_s for r in unique(reports))
        if env_report is not None:
            out += env_report.enter_s + env_report.exit_s + env_report.update_s
        return out

    def cluster_wire(reports):
        return sum(r.cluster_bytes_wire + r.storage_bytes_wire
                   for r in unique(reports))

    fused_unique = unique(fused_reports)
    check(len(fused_unique) == 1, f"expected one fused job report, got "
                                  f"{len(fused_unique)}")
    fused_rep = fused_unique[0]
    check(fused_rep.fused_regions == 3,
          f"expected all 3 regions fused, got {fused_rep.fused_regions} "
          f"(rejected: {fused_rep.fusion_rejected})")
    wire_fused = cluster_wire(fused_reports)
    wire_managed = cluster_wire(managed_reports)
    wire_unmanaged = cluster_wire(unmanaged_reports)
    check(wire_fused < wire_managed,
          f"fused chain moved {wire_fused} cluster wire bytes, managed "
          f"moved {wire_managed}")
    full_fused = full(fused_reports, fused_env)
    full_managed = full(managed_reports, managed_env)
    check(full_fused < full_managed,
          f"fused chain took {full_fused}s, managed took {full_managed}s")

    milestones = {
        # Gated: the fused chain is the product here.
        "full_s": full_fused,
        "spark_job_s": fused_rep.spark_job_s,
        "computation_s": fused_rep.computation_s,
        "host_comm_s": fused_rep.host_comm_s
        + fused_env.enter_s + fused_env.exit_s,
        "spark_overhead_s": fused_rep.spark_overhead_s,
        "backoff_s": fused_rep.backoff_s + fused_env.backoff_s,
        # Informational A/B/C milestones for the fusion assertions.
        "full_s_managed": full_managed,
        "full_s_unmanaged": full(unmanaged_reports, None),
        "cluster_storage_wire_fused": wire_fused,
        "cluster_storage_wire_managed": wire_managed,
        "cluster_storage_wire_unmanaged": wire_unmanaged,
        "fused_regions": fused_rep.fused_regions,
        "fusion_wire_bytes_saved": fused_rep.fusion_wire_bytes_saved,
        "bytes_up_wire": sum(r.bytes_up_wire for r in fused_unique)
        + fused_env.bytes_up_wire,
        "bytes_down_wire": sum(r.bytes_down_wire for r in fused_unique)
        + fused_env.bytes_down_wire,
    }
    return {
        "schema": SCHEMA,
        "benchmark": "fusion_wire_bytes",
        "params": {
            "cores": cores,
            "workers": n_workers,
            "density": density,
            "size": n,
            "mode": "modeled",
            "quick": quick,
        },
        "milestones": milestones,
        "events": bus.counts(),
        "metrics": registry.snapshot(),
    }


#: Scaling-grid points: (workers, tasks, wall_budget_s).  The budget is a
#: *wall-clock* ceiling on one modeled offload of ``tasks`` one-iteration
#: tiles across ``workers`` nodes — the simulation-core scalability contract
#: documented in docs/PERFORMANCE.md.  Quick mode (CI) runs the small points;
#: full mode adds the tentpole 10k-worker / 1M-task point, which must
#: complete within 30 s of wall time.
SCALING_GRID_QUICK = (
    (100, 10_000, 30.0),
    (1_000, 100_000, 60.0),
)
SCALING_GRID_FULL = SCALING_GRID_QUICK + (
    (10_000, 1_000_000, 30.0),
)


def run_scaling(
    cores: int = 32,
    n_workers: int = 16,
    density: float = 1.0,
    size: int | None = None,
    quick: bool = False,
) -> dict[str, object]:
    """Simulation-core scaling: a workers × tasks grid of modeled offloads.

    Each grid point offloads one synthetic region of ``tasks`` single-
    iteration tiles (``schedule(static, 1)``, the worst case for scheduler
    overhead: every task pays selection, window evaluation, and span
    recording) to a ``workers``-node cluster, under
    :func:`~repro.simtime.timeline.coarse_timelines` and a zero-sigma
    straggler model — the configuration docs/PERFORMANCE.md prescribes for
    large sweeps.

    Two kinds of gate:

    * **simulated seconds** — the usual deterministic milestones, gated by
      :func:`compare` against the committed baseline like every other bench;
    * **wall clock** — each point must finish within its grid budget or the
      runner *raises*; scheduler-complexity regressions (anything
      super-linear creeping back into the per-task path) fail the bench job
      loudly instead of silently slowing CI.  ``REPRO_SCALING_WALL_SCALE``
      loosens the budgets on known-slow machines (e.g. ``=2.0`` doubles
      them); wall times are deliberately *not* written to the payload so
      bench JSON stays bit-deterministic.

    ``size`` overrides the grid with a single (``n_workers``, ``size``)
    point, handy for probing one configuration from the CLI.
    """
    import dataclasses
    from contextlib import nullcontext
    from time import perf_counter

    from repro.core.api import ParallelLoop, TargetRegion, offload
    from repro.core.buffers import ExecutionMode
    from repro.core.plugin_cloud import CloudDevice
    from repro.core.runtime import OffloadRuntime
    from repro.metrics.figures import demo_config
    from repro.perfmodel.calibration import DEFAULT_CALIBRATION
    from repro.simtime import coarse_timelines

    if size is not None:
        grid = ((n_workers, int(size), float("inf")),)
    else:
        grid = SCALING_GRID_QUICK if quick else SCALING_GRID_FULL
    wall_scale = float(os.environ.get("REPRO_SCALING_WALL_SCALE", "1.0"))

    def region_for() -> TargetRegion:
        return TargetRegion(
            name="scale",
            pragmas=["omp target device(CLOUD)",
                     "omp map(to: A[:N*R]) map(from: C[:N*R])"],
            loops=[ParallelLoop(
                pragma="omp parallel for schedule(static, 1)",
                loop_var="i", trip_count="N",
                reads=("A",), writes=("C",),
                partition_pragma="omp target data map(to: A[i*R:(i+1)*R]) "
                                 "map(from: C[i*R:(i+1)*R])",
                flops_per_iter=1.0e6,
                body=None,
            )],
        )

    cal = dataclasses.replace(DEFAULT_CALIBRATION, straggler_sigma=0.0)
    bus = EventBus(keep_history=False)
    registry = MetricsRegistry()
    MetricsSubscriber(registry).attach(bus)

    points = []
    for workers, tasks, budget in grid:
        rt = OffloadRuntime()
        rt.register(CloudDevice(demo_config(workers),
                                physical_cores=workers * 8,
                                calibration=cal))
        # Points up to 100k tasks run instrumented (their event counts and
        # metrics land in the payload).  Larger points run with the bus
        # detached: per-task TaskStart/TaskEnd delivery costs ~10 us/task of
        # pure observability-plane overhead, and the wall budget is a
        # contract on the *simulation core* (docs/PERFORMANCE.md).
        instrumented = tasks <= 100_000
        t0 = perf_counter()
        with use_bus(bus) if instrumented else nullcontext():
            with coarse_timelines():
                rep = offload(region_for(), scalars={"N": tasks, "R": 4},
                              runtime=rt, mode=ExecutionMode.MODELED,
                              densities={"A": density, "C": density})
        wall = perf_counter() - t0
        if rep.tasks_run != tasks:
            raise RuntimeError(
                f"scaling: {workers}x{tasks}: expected {tasks} tasks, "
                f"scheduler ran {rep.tasks_run}")
        if wall > budget * wall_scale:
            raise RuntimeError(
                f"scaling: {workers} workers x {tasks} tasks took "
                f"{wall:.1f} s of wall time, budget {budget * wall_scale:.1f} s "
                f"— the simulation core has a complexity regression")
        points.append((workers, tasks, rep))

    # The largest grid point provides the gated simulated milestones.
    workers, tasks, rep = points[-1]
    milestones: dict[str, object] = {
        "full_s": rep.full_s,
        "spark_job_s": rep.spark_job_s,
        "computation_s": rep.computation_s,
        "host_comm_s": rep.host_comm_s,
        "spark_overhead_s": rep.spark_overhead_s,
        "backoff_s": rep.backoff_s,
        "bytes_up_wire": rep.bytes_up_wire,
        "bytes_down_wire": rep.bytes_down_wire,
    }
    for w, t, r in points:
        milestones[f"full_s_{w}w_{t}t"] = r.full_s
        milestones[f"overhead_per_task_us_{w}w_{t}t"] = (
            r.spark_overhead_s / t * 1e6)
    return {
        "schema": SCHEMA,
        "benchmark": "scaling",
        "params": {
            "cores": workers * 8,
            "workers": workers,
            "density": density,
            "size": tasks,
            "grid": [[w, t] for w, t, _ in grid],
            "mode": "modeled",
            "quick": quick,
        },
        "milestones": milestones,
        "events": bus.counts(),
        "metrics": registry.snapshot(),
    }


#: Multi-offload bench scenarios outside the single-region WORKLOADS registry.
EXTRA_BENCHMARKS = {
    "chained_3mm": run_chained_3mm,
    "ablation_speculation": run_ablation_speculation,
    "chaos_recovery": run_chaos_recovery,
    "inference_wire_bytes": run_inference_wire_bytes,
    "profile_attribution": run_profile_attribution,
    "fusion_wire_bytes": run_fusion_wire_bytes,
    "scaling": run_scaling,
}


def bench_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def write_bench(payload: dict[str, object], out_dir: str = ".") -> str:
    """Write ``BENCH_<benchmark>.json`` under ``out_dir``; returns the path."""
    path = os.path.join(out_dir, bench_filename(str(payload["benchmark"])))
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path: str) -> dict[str, object]:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {payload.get('schema')!r}, expected {SCHEMA!r}")
    return payload


@dataclass(frozen=True)
class Regression:
    """One milestone that grew past the threshold vs the baseline."""

    benchmark: str
    milestone: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        return (f"{self.benchmark}: {self.milestone} regressed "
                f"{self.baseline:.6g} -> {self.current:.6g} "
                f"({(self.ratio - 1.0) * 100.0:+.1f}%)")


def compare(
    baseline: dict[str, object],
    current: dict[str, object],
    threshold: float = 0.10,
) -> list[Regression]:
    """Milestones in ``current`` more than ``threshold`` above ``baseline``.

    Only the time milestones in :data:`REGRESSION_MILESTONES` gate —
    speedups and byte counts are informational.  An empty list means no
    regression.  Comparing different benchmarks is a usage error.
    """
    b_name = baseline.get("benchmark")
    c_name = current.get("benchmark")
    if b_name != c_name:
        raise ValueError(f"benchmark mismatch: baseline {b_name!r} vs "
                         f"current {c_name!r}")
    base_ms = baseline.get("milestones", {})
    cur_ms = current.get("milestones", {})
    assert isinstance(base_ms, dict) and isinstance(cur_ms, dict)
    out: list[Regression] = []
    for key in REGRESSION_MILESTONES:
        if key not in base_ms or key not in cur_ms:
            continue
        b = float(base_ms[key])
        c = float(cur_ms[key])
        if c > b * (1.0 + threshold) and c - b > ABS_SLACK_S:
            out.append(Regression(benchmark=str(c_name), milestone=key,
                                  baseline=b, current=c))
    return out
