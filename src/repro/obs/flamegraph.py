"""Folded flamegraph stacks for offload profiles.

Emits the ``folded`` text format consumed by Brendan Gregg's
``flamegraph.pl``, speedscope and most flame-graph viewers: one line per
stack, semicolon-separated frames, a trailing integer count.  Counts are
**microseconds** of simulated time, so graphs from different runs compare
directly.

Two views of one :class:`~repro.obs.profile.OffloadProfile`:

* ``mode="busy"`` (default) — every span contributes its duration under
  ``region;<figure-5 bucket>;<phase>;<resource>``.  Widths are
  resource-seconds: a 16-worker compute wave is 16x wider than the single
  upload stream that preceded it, which is exactly the skew the flamegraph
  is for.
* ``mode="critical"`` — only critical-path self time, plus the residual
  ``wait`` frame; widths sum to the wall clock, so this is the flamegraph
  of the end-to-end latency itself.

Output is sorted and deterministic for identical profiles.
"""

from __future__ import annotations

from repro.obs.profile import WAIT, OffloadProfile

_MODES = ("busy", "critical")


def folded_stacks(profile: OffloadProfile, mode: str = "busy") -> str:
    """The folded-format text for ``profile`` (trailing newline included)."""
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    root = profile.region or "(offload)"
    counts: dict[str, int] = {}

    def add(stack: str, seconds: float) -> None:
        us = int(round(seconds * 1e6))
        if us > 0:
            counts[stack] = counts.get(stack, 0) + us

    if mode == "busy":
        for s in profile.spans:
            frames = [root, s.phase.bucket, s.phase.value,
                      s.resource or "(unnamed)"]
            add(";".join(f.replace(";", ",") for f in frames), s.duration)
    else:
        t0 = profile.t0
        prev_end = t0
        for i in profile.critical_indices:
            s = profile.spans[i]
            contrib = max(0.0, min(s.end, profile.t1) - max(s.start, prev_end))
            frames = [root, s.phase.bucket, s.phase.value,
                      s.resource or "(unnamed)"]
            add(";".join(f.replace(";", ",") for f in frames), contrib)
            prev_end = max(prev_end, s.end)
        add(f"{root};{WAIT}", profile.wait_s)
    return "".join(f"{stack} {n}\n" for stack, n in sorted(counts.items()))
