"""Timeline invariant checking.

A recorded timeline is a claim about what the simulated system did; this
module verifies the claims are physically possible:

* no span runs backwards or before time zero;
* serial resources (the driver, the driver NIC, the host) never do two
  things at once;
* bounded-parallel resources (a worker's task slots) never exceed their
  concurrency limit.

The integration suite runs these checks on real offload timelines, so a
scheduler bug that double-books a core fails loudly instead of silently
producing an optimistic makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simtime.timeline import Span, Timeline


class TimelineInvariantError(AssertionError):
    """A recorded timeline is physically impossible."""


@dataclass
class ResourceLimits:
    """Concurrency limits per resource name.

    ``serial`` resources allow one activity at a time; ``bounded`` maps a
    resource name to its slot count; unknown resources are unconstrained
    (aggregate rows like "cluster").
    """

    serial: set[str] = field(default_factory=set)
    bounded: dict[str, int] = field(default_factory=dict)

    @classmethod
    def for_cluster(cls, slots_per_worker: int, n_workers: int,
                    host_streams: int | None = None) -> "ResourceLimits":
        limits = cls(
            serial={"driver", "driver-nic"},
            bounded={f"worker-{i}": slots_per_worker for i in range(n_workers)},
        )
        if host_streams is not None:
            limits.bounded["host"] = host_streams
        return limits


def max_concurrency(spans: list[Span]) -> int:
    """Peak number of simultaneously-active spans."""
    events: list[tuple[float, int]] = []
    for s in spans:
        if s.duration <= 0:
            continue
        events.append((s.start, 1))
        events.append((s.end, -1))
    # Ends sort before starts at the same instant: touching spans don't overlap.
    events.sort(key=lambda e: (e[0], e[1]))
    peak = cur = 0
    for _, delta in events:
        cur += delta
        peak = max(peak, cur)
    return peak


def check_timeline(timeline: Timeline, limits: ResourceLimits) -> None:
    """Raise :class:`TimelineInvariantError` on any violated invariant."""
    by_resource: dict[str, list[Span]] = {}
    for s in timeline.spans:
        if s.start < 0:
            raise TimelineInvariantError(f"span starts before t=0: {s}")
        by_resource.setdefault(s.resource, []).append(s)

    for name, spans in by_resource.items():
        peak = max_concurrency(spans)
        if name in limits.serial and peak > 1:
            raise TimelineInvariantError(
                f"serial resource {name!r} ran {peak} activities at once"
            )
        cap = limits.bounded.get(name)
        if cap is not None and peak > cap:
            raise TimelineInvariantError(
                f"resource {name!r} ran {peak} activities at once "
                f"(limit {cap})"
            )
