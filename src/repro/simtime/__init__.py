"""Simulated-time substrate for the OmpCloud reproduction.

The paper evaluates OmpCloud on a real EC2 cluster with up to 256 physical
cores.  A laptop cannot exhibit that scaling with wall-clock time, so every
component in this reproduction accounts *simulated* time instead: network
transfers, compression, task execution and scheduling all advance a
:class:`~repro.simtime.clock.SimClock` through either the discrete-event
:class:`~repro.simtime.engine.EventEngine` or deterministic list scheduling on
:class:`~repro.simtime.resources.SlotPool` core slots.

The resulting :class:`~repro.simtime.timeline.Timeline` records every phase
(host-target communication, Spark overhead, computation, ...) exactly as
Figure 5 of the paper decomposes them.
"""

from repro.simtime.clock import SimClock
from repro.simtime.engine import EventEngine, Event
from repro.simtime.resources import SlotPool, Slot
from repro.simtime.timeline import Phase, Span, Timeline, coarse_timelines
from repro.simtime.validate import (
    ResourceLimits,
    TimelineInvariantError,
    check_timeline,
    max_concurrency,
)

__all__ = [
    "SimClock",
    "EventEngine",
    "Event",
    "SlotPool",
    "Slot",
    "Phase",
    "Span",
    "Timeline",
    "coarse_timelines",
    "ResourceLimits",
    "TimelineInvariantError",
    "check_timeline",
    "max_concurrency",
]
