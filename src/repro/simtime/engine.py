"""A small discrete-event simulation engine.

The engine is a classic event-heap DES: callbacks are scheduled at absolute
simulated times and executed in time order (FIFO among equal timestamps, which
keeps runs deterministic).  The Spark scheduler and the network model use it
when activities genuinely interleave; simpler sequential accounting goes
straight through :class:`~repro.simtime.clock.SimClock`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simtime.clock import SimClock


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence-number) so that events firing at the same
    simulated instant run in scheduling order — determinism matters more than
    any particular tie-break policy.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventEngine:
    """Event-heap simulator driving a :class:`SimClock`.

    >>> eng = EventEngine()
    >>> fired = []
    >>> _ = eng.schedule_at(2.0, lambda: fired.append("b"))
    >>> _ = eng.schedule_at(1.0, lambda: fired.append("a"))
    >>> eng.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_run = 0

    @property
    def events_run(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_run

    def schedule_at(self, when: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now!r}, when={when!r}"
            )
        ev = Event(time=float(when), seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from the current time."""
        if delay < 0.0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule_at(self.clock.now + delay, action, label)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.clock.advance_to(ev.time)
            ev.action()
            self._events_run += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run events until the heap empties, ``until`` is reached, or the
        event budget ``max_events`` is exhausted (a runaway-loop backstop)."""
        for _ in range(max_events):
            if until is not None and self._heap:
                nxt = self._peek_time()
                if nxt is not None and nxt > until:
                    self.clock.advance_to(until)
                    return
            if not self.step():
                if until is not None and until > self.clock.now:
                    self.clock.advance_to(until)
                return
        raise RuntimeError(f"event budget exhausted after {max_events} events")

    def _peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for ev in self._heap if not ev.cancelled)
