"""A small discrete-event simulation engine.

The engine is a classic event-heap DES: callbacks are scheduled at absolute
simulated times and executed in time order (FIFO among equal timestamps, which
keeps runs deterministic).  The Spark scheduler and the network model use it
when activities genuinely interleave; simpler sequential accounting goes
straight through :class:`~repro.simtime.clock.SimClock`.

Scale notes (docs/PERFORMANCE.md):

* The heap holds bare ``(time, seq)`` tuples; callback/label state lives in
  slab dictionaries keyed by ``seq``.  Tuple comparisons during sift are
  C-level, and no per-callback record object ever enters the heap —
  :class:`Event` is only a thin cancellation handle, created lazily for the
  caller of :meth:`EventEngine.schedule_at`.
* :meth:`EventEngine.run` drains *runs of equal timestamps* in one batch:
  the clock advances once per distinct timestamp and the batch executes in
  FIFO order without interleaved clock bookkeeping.
* Cancelled events are dropped lazily on pop, and the heap is **compacted**
  (rebuilt without dead entries) whenever cancelled entries outnumber half
  the live ones, so speculation-heavy runs cannot accumulate dead heap
  entries without bound.  :attr:`EventEngine.heap_compactions` counts the
  rebuilds; :attr:`EventEngine.events_run` counts only real (non-cancelled)
  callback executions, never compaction work.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.simtime.clock import SimClock


class Event:
    """Handle to one scheduled callback.

    Ordering is (time, sequence-number) so that events firing at the same
    simulated instant run in scheduling order — determinism matters more than
    any particular tie-break policy.  The handle exists so a caller can
    :meth:`cancel`; the engine itself only stores ``(time, seq)`` tuples.
    """

    __slots__ = ("time", "seq", "label", "cancelled", "_engine")

    def __init__(self, engine: "EventEngine", time: float, seq: int, label: str) -> None:
        self.time = time
        self.seq = seq
        self.label = label
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Drop the event; the engine skips (and eventually compacts) it."""
        if not self.cancelled:
            self.cancelled = True
            self._engine._cancel(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time!r}, seq={self.seq}, {state})"


class EventEngine:
    """Event-heap simulator driving a :class:`SimClock`.

    >>> eng = EventEngine()
    >>> fired = []
    >>> _ = eng.schedule_at(2.0, lambda: fired.append("b"))
    >>> _ = eng.schedule_at(1.0, lambda: fired.append("a"))
    >>> eng.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple[float, int]] = []
        self._seq = 0
        # Slab state, keyed by seq.  An event is *live* iff its seq is in
        # `_actions`; cancellation moves the seq to `_cancelled` (and frees
        # the closure immediately) until the heap entry is popped or compacted.
        self._actions: dict[int, Callable[[], None]] = {}
        self._labels: dict[int, str] = {}
        self._cancelled: set[int] = set()
        # Seqs drained into the currently-executing batch (see `run`): a
        # batch member cancelled by an earlier member is dropped from here.
        self._in_batch: set[int] = set()
        self._events_run = 0
        self._compactions = 0

    @property
    def events_run(self) -> int:
        """Number of (non-cancelled) events executed so far.

        Heap compactions (see :attr:`heap_compactions`) never contribute —
        this counts callback executions only.
        """
        return self._events_run

    @property
    def heap_compactions(self) -> int:
        """Number of times the heap was rebuilt to drop cancelled entries.

        A compaction runs when cancelled entries exceed half the live ones,
        bounding the dead weight long speculation-heavy runs can carry.
        """
        return self._compactions

    def schedule_at(self, when: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now!r}, when={when!r}"
            )
        when = float(when)
        seq = self._seq
        self._seq = seq + 1
        self._actions[seq] = action
        if label:
            self._labels[seq] = label
        heapq.heappush(self._heap, (when, seq))
        return Event(self, when, seq, label)

    def schedule_after(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from the current time."""
        if delay < 0.0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule_at(self.clock.now + delay, action, label)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none remain."""
        while self._heap:
            when, seq = heapq.heappop(self._heap)
            action = self._pop_action(seq)
            if action is None:
                continue
            self.clock.advance_to(when)
            action()
            self._events_run += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run events until the heap empties, ``until`` is reached, or the
        event budget ``max_events`` is exhausted (a runaway-loop backstop).

        Equal-timestamp runs drain as one batch: the clock advances once per
        distinct timestamp and the batch fires in FIFO scheduling order.
        """
        heap = self._heap
        budget = max_events
        while True:
            nxt = self._peek_time()
            if nxt is None:
                if until is not None and until > self.clock.now:
                    self.clock.advance_to(until)
                return
            if until is not None and nxt > until:
                self.clock.advance_to(until)
                return
            # Drain the run of events at exactly `nxt`.  Callbacks may
            # schedule new events at this same timestamp (they get larger
            # seqs, so they form the *next* batch — still FIFO) and may
            # cancel later members of this batch (checked at fire time).
            batch: list[tuple[int, Callable[[], None]]] = []
            in_batch = self._in_batch
            while heap and heap[0][0] == nxt:
                _, seq = heapq.heappop(heap)
                action = self._actions.pop(seq, None)
                if action is None:
                    self._cancelled.discard(seq)
                    continue
                self._labels.pop(seq, None)
                in_batch.add(seq)
                batch.append((seq, action))
            if not batch:
                continue
            self.clock.advance_to(nxt)
            for seq, action in batch:
                if seq not in in_batch:
                    continue  # cancelled by an earlier member of this batch
                if budget <= 0:
                    in_batch.clear()
                    raise RuntimeError(
                        f"event budget exhausted after {max_events} events")
                in_batch.discard(seq)
                action()
                self._events_run += 1
                budget -= 1
            in_batch.clear()

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return len(self._actions)

    # ------------------------------------------------------------- internals
    def _pop_action(self, seq: int) -> Callable[[], None] | None:
        """Retire one popped heap entry; None when it was cancelled."""
        action = self._actions.pop(seq, None)
        if action is None:
            self._cancelled.discard(seq)
            return None
        self._labels.pop(seq, None)
        return action

    def _cancel(self, seq: int) -> None:
        if seq in self._in_batch:
            self._in_batch.discard(seq)  # drained but not yet fired
            return
        if self._actions.pop(seq, None) is None:
            return  # already executed or already cancelled
        self._labels.pop(seq, None)
        self._cancelled.add(seq)
        if len(self._cancelled) * 2 > len(self._actions):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (the cancel-leak fix)."""
        self._heap = [(t, s) for (t, s) in self._heap if s not in self._cancelled]
        heapq.heapify(self._heap)
        self._cancelled.clear()
        self._compactions += 1

    def _peek_time(self) -> Optional[float]:
        while self._heap:
            when, seq = self._heap[0]
            if seq in self._actions:
                return when
            heapq.heappop(self._heap)
            self._cancelled.discard(seq)
        return None
