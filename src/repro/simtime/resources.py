"""Resource pools for deterministic list scheduling in simulated time.

The Spark driver in this reproduction assigns map/reduce tasks to executor
*core slots*.  A :class:`SlotPool` models a group of identical slots (e.g. the
16 physical cores of one c3.8xlarge worker); ``acquire`` implements
earliest-available-slot list scheduling, which is exactly what a greedy
work-queue scheduler (like Spark's) converges to for independent tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Slot:
    """One schedulable unit (a physical core, a network lane, ...)."""

    index: int
    free_at: float = 0.0
    busy_time: float = 0.0
    tasks_run: int = 0


@dataclass
class Reservation:
    """Outcome of scheduling one task onto a slot."""

    slot: Slot
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SlotPool:
    """A pool of identical slots with earliest-available allocation.

    >>> pool = SlotPool(2)
    >>> [pool.acquire(0.0, 10.0).start for _ in range(3)]
    [0.0, 0.0, 10.0]
    """

    def __init__(self, n_slots: int, label: str = "") -> None:
        if n_slots <= 0:
            raise ValueError(f"pool needs at least one slot, got {n_slots}")
        self.label = label
        self.slots = [Slot(index=i) for i in range(n_slots)]
        self._earliest: float | None = 0.0

    def __len__(self) -> int:
        return len(self.slots)

    def acquire(self, ready_at: float, duration: float) -> Reservation:
        """Reserve the slot that can start a ``duration``-second task soonest.

        ``ready_at`` is when the task becomes runnable (its inputs are
        available); the chosen slot may itself be free earlier or later.

        Selection key is ``(max(free_at, ready_at), index)``.  Any slot
        already free at ``ready_at`` has key ``(ready_at, index)``, which
        beats every still-busy slot — so the first free slot in index order
        wins and the scan short-circuits; otherwise the earliest-free slot
        (lowest index on ties) is chosen.
        """
        if duration < 0.0:
            raise ValueError(f"negative duration {duration!r}")
        chosen: Slot | None = None
        best_f = float("inf")
        for s in self.slots:
            f = s.free_at
            if f <= ready_at:
                chosen = s
                break
            if f < best_f:
                chosen, best_f = s, f
        assert chosen is not None
        start = chosen.free_at if chosen.free_at > ready_at else ready_at
        end = start + duration
        chosen.free_at = end
        chosen.busy_time += duration
        chosen.tasks_run += 1
        self._earliest = None
        return Reservation(slot=chosen, start=start, end=end)

    def makespan(self) -> float:
        """Time at which the last slot becomes idle."""
        return max(s.free_at for s in self.slots)

    def earliest_free(self) -> float:
        """Time at which the first slot becomes idle (cached between acquires)."""
        e = self._earliest
        if e is None:
            # Plain loop: ~3x faster than min()-over-genexpr on the small
            # slot counts (8-32) pools have, and this runs twice per task.
            e = self.slots[0].free_at
            for s in self.slots:
                f = s.free_at
                if f < e:
                    e = f
            self._earliest = e
        return e

    def invalidate_cache(self) -> None:
        """Call after mutating ``slot.free_at`` directly (e.g. worker death)."""
        self._earliest = None

    def utilization(self, horizon: float | None = None) -> float:
        """Fraction of slot-seconds spent busy over ``horizon`` (default: makespan)."""
        horizon = self.makespan() if horizon is None else horizon
        if horizon <= 0.0:
            return 0.0
        busy = sum(s.busy_time for s in self.slots)
        return busy / (horizon * len(self.slots))

    def reset(self, at: float = 0.0) -> None:
        """Release all slots at time ``at`` and clear statistics."""
        for s in self.slots:
            s.free_at = at
            s.busy_time = 0.0
            s.tasks_run = 0
        self._earliest = at


@dataclass
class Meter:
    """Simple accumulating counter (bytes moved, tasks launched, dollars)."""

    name: str
    total: float = 0.0
    samples: int = 0
    _max: float = field(default=0.0, repr=False)

    def add(self, amount: float) -> None:
        self.total += amount
        self.samples += 1
        self._max = max(self._max, amount)

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    @property
    def peak(self) -> float:
        return self._max
