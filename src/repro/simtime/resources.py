"""Resource pools for deterministic list scheduling in simulated time.

The Spark driver in this reproduction assigns map/reduce tasks to executor
*core slots*.  A :class:`SlotPool` models a group of identical slots (e.g. the
16 physical cores of one c3.8xlarge worker); ``acquire`` implements
earliest-available-slot list scheduling, which is exactly what a greedy
work-queue scheduler (like Spark's) converges to for independent tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Slot:
    """One schedulable unit (a physical core, a network lane, ...)."""

    index: int
    free_at: float = 0.0
    busy_time: float = 0.0
    tasks_run: int = 0


@dataclass
class Reservation:
    """Outcome of scheduling one task onto a slot."""

    slot: Slot
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SlotPool:
    """A pool of identical slots with earliest-available allocation.

    >>> pool = SlotPool(2)
    >>> [pool.acquire(0.0, 10.0).start for _ in range(3)]
    [0.0, 0.0, 10.0]
    """

    def __init__(self, n_slots: int, label: str = "") -> None:
        if n_slots <= 0:
            raise ValueError(f"pool needs at least one slot, got {n_slots}")
        self.label = label
        self.slots = [Slot(index=i) for i in range(n_slots)]

    def __len__(self) -> int:
        return len(self.slots)

    def acquire(self, ready_at: float, duration: float) -> Reservation:
        """Reserve the slot that can start a ``duration``-second task soonest.

        ``ready_at`` is when the task becomes runnable (its inputs are
        available); the chosen slot may itself be free earlier or later.
        """
        if duration < 0.0:
            raise ValueError(f"negative duration {duration!r}")
        slot = min(self.slots, key=lambda s: (max(s.free_at, ready_at), s.index))
        start = max(slot.free_at, ready_at)
        end = start + duration
        slot.free_at = end
        slot.busy_time += duration
        slot.tasks_run += 1
        return Reservation(slot=slot, start=start, end=end)

    def makespan(self) -> float:
        """Time at which the last slot becomes idle."""
        return max(s.free_at for s in self.slots)

    def earliest_free(self) -> float:
        """Time at which the first slot becomes idle."""
        return min(s.free_at for s in self.slots)

    def utilization(self, horizon: float | None = None) -> float:
        """Fraction of slot-seconds spent busy over ``horizon`` (default: makespan)."""
        horizon = self.makespan() if horizon is None else horizon
        if horizon <= 0.0:
            return 0.0
        busy = sum(s.busy_time for s in self.slots)
        return busy / (horizon * len(self.slots))

    def reset(self, at: float = 0.0) -> None:
        """Release all slots at time ``at`` and clear statistics."""
        for s in self.slots:
            s.free_at = at
            s.busy_time = 0.0
            s.tasks_run = 0


@dataclass
class Meter:
    """Simple accumulating counter (bytes moved, tasks launched, dollars)."""

    name: str
    total: float = 0.0
    samples: int = 0
    _max: float = field(default=0.0, repr=False)

    def add(self, amount: float) -> None:
        self.total += amount
        self.samples += 1
        self._max = max(self._max, amount)

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    @property
    def peak(self) -> float:
        return self._max
