"""Simulated wall clock.

All durations in this project are seconds of *simulated* time, held as plain
floats.  A :class:`SimClock` is a monotonically advancing cursor shared by the
components of one offload run (host plugin, network links, Spark driver...).
"""

from __future__ import annotations


class SimClock:
    """A monotonic simulated clock.

    The clock only moves forward: :meth:`advance` adds a non-negative delta and
    :meth:`advance_to` jumps to a later absolute time.  Attempting to move
    backwards raises ``ValueError`` — catching accidental time travel early is
    the main debugging aid a simulation clock can offer.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0.0:
            raise ValueError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump the clock to absolute time ``when`` (must not be in the past)."""
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now!r}, requested {when!r}"
            )
        self._now = float(when)
        return self._now

    def fork(self) -> "SimClock":
        """Return an independent clock starting at the current time.

        Used when a sub-activity (e.g. one upload thread among several parallel
        streams) needs its own cursor; the caller later merges the forks with
        ``advance_to(max(...))``.
        """
        return SimClock(self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
