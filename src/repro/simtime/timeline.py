"""Phase timelines — the data behind Figure 5 of the paper.

The paper decomposes offload time into *host-target communication*, *Spark
overhead* and *computation*.  Internally we record finer-grained phases (gzip
compression, upload/download, broadcast, scheduling, intra-cluster shuffle,
JNI-style call overhead, the map computation itself) and roll them up into the
paper's three buckets with :meth:`Timeline.figure5_breakdown`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping


class Phase(enum.Enum):
    """Fine-grained activity classes recorded during an offload run."""

    # Host-target communication (local machine <-> cloud storage).
    HOST_COMPRESS = "host_compress"
    HOST_UPLOAD = "host_upload"
    HOST_DOWNLOAD = "host_download"
    HOST_DECOMPRESS = "host_decompress"
    # Spark / cluster overhead.
    CLUSTER_INIT = "cluster_init"
    STORAGE_READ = "storage_read"
    STORAGE_WRITE = "storage_write"
    SCHEDULING = "scheduling"
    SPECULATION = "speculation"
    BROADCAST = "broadcast"
    INTRA_TRANSFER = "intra_transfer"
    WORKER_DECOMPRESS = "worker_decompress"
    WORKER_COMPRESS = "worker_compress"
    COLLECT = "collect"
    RECONSTRUCT = "reconstruct"
    JNI_CALL = "jni_call"
    # Persistent data environments (target data / target update).
    ENV_ENTER = "env_enter"
    ENV_EXIT = "env_exit"
    TARGET_UPDATE = "target_update"
    # Recovery activity (retries, job resubmission, spot replacement...).
    RETRY_BACKOFF = "retry_backoff"
    RESUBMIT = "resubmit"
    PREEMPTION = "preemption"
    RECOVERY = "recovery"
    FALLBACK = "fallback"
    # A fused submission: several chained regions running as one Spark job
    # (recorded on its own resource row, spanning the whole fused job).
    FUSED = "fused"
    # The useful work.
    COMPUTE = "compute"

    @property
    def bucket(self) -> str:
        """Figure-5 bucket this phase rolls up into."""
        return _BUCKET_OF[self]


#: The three stacked components of Figure 5.
BUCKET_HOST_COMM = "host-target communication"
BUCKET_SPARK = "spark overhead"
BUCKET_COMPUTE = "computation"
#: Extra stacked component, present only when fault recovery charged time
#: (the paper's fault-free runs keep the original three-bucket stack).
BUCKET_RESILIENCE = "resilience"

_BUCKET_OF: dict[Phase, str] = {
    Phase.HOST_COMPRESS: BUCKET_HOST_COMM,
    Phase.HOST_UPLOAD: BUCKET_HOST_COMM,
    Phase.HOST_DOWNLOAD: BUCKET_HOST_COMM,
    Phase.HOST_DECOMPRESS: BUCKET_HOST_COMM,
    Phase.CLUSTER_INIT: BUCKET_SPARK,
    Phase.STORAGE_READ: BUCKET_SPARK,
    Phase.STORAGE_WRITE: BUCKET_SPARK,
    Phase.SCHEDULING: BUCKET_SPARK,
    # Launching a speculative straggler copy is driver-side scheduling work.
    Phase.SPECULATION: BUCKET_SPARK,
    Phase.BROADCAST: BUCKET_SPARK,
    Phase.INTRA_TRANSFER: BUCKET_SPARK,
    Phase.WORKER_DECOMPRESS: BUCKET_SPARK,
    Phase.WORKER_COMPRESS: BUCKET_SPARK,
    Phase.COLLECT: BUCKET_SPARK,
    Phase.RECONSTRUCT: BUCKET_SPARK,
    Phase.JNI_CALL: BUCKET_SPARK,
    # Environment transfers move over the host-target channel, like the
    # per-offload staging they replace.
    Phase.ENV_ENTER: BUCKET_HOST_COMM,
    Phase.ENV_EXIT: BUCKET_HOST_COMM,
    Phase.TARGET_UPDATE: BUCKET_HOST_COMM,
    # Recovery phases: backoff is charged on the host side of the channel;
    # resubmission/preemption handling is cluster-side overhead.
    Phase.RETRY_BACKOFF: BUCKET_HOST_COMM,
    Phase.RESUBMIT: BUCKET_SPARK,
    Phase.PREEMPTION: BUCKET_SPARK,
    Phase.RECOVERY: BUCKET_SPARK,
    Phase.FALLBACK: BUCKET_HOST_COMM,
    Phase.FUSED: BUCKET_SPARK,
    Phase.COMPUTE: BUCKET_COMPUTE,
}


@dataclass(frozen=True)
class Span:
    """One contiguous activity on one resource, in simulated seconds."""

    phase: Phase
    start: float
    end: float
    resource: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """An append-only collection of :class:`Span` with roll-up queries.

    The *critical-path* semantics of an offload run live in the recorded start
    and end times, not the sum of durations: parallel uploads overlap, map
    tasks overlap.  ``wall(phase)`` therefore measures the union of intervals
    of a phase, while ``busy(phase)`` sums raw durations (resource-seconds).
    """

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def record(
        self,
        phase: Phase,
        start: float,
        end: float,
        resource: str = "",
        label: str = "",
    ) -> Span:
        span = Span(phase=phase, start=start, end=end, resource=resource, label=label)
        self._spans.append(span)
        return span

    def extend(self, other: "Timeline") -> None:
        self._spans.extend(other._spans)

    @property
    def spans(self) -> tuple[Span, ...]:
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def filter(self, phases: Iterable[Phase]) -> "Timeline":
        keep = set(phases)
        tl = Timeline()
        tl._spans = [s for s in self._spans if s.phase in keep]
        return tl

    def busy(self, phase: Phase | None = None) -> float:
        """Total resource-seconds spent in ``phase`` (all phases if None)."""
        return sum(s.duration for s in self._spans if phase is None or s.phase == phase)

    def wall(self, phase: Phase | None = None) -> float:
        """Length of the union of intervals of ``phase`` (all phases if None)."""
        ivals = sorted(
            (s.start, s.end) for s in self._spans if phase is None or s.phase == phase
        )
        total = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for a, b in ivals:
            if cur_start is None:
                cur_start, cur_end = a, b
            elif a <= cur_end:
                cur_end = max(cur_end, b)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = a, b
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def span(self) -> float:
        """Makespan: last end minus first start (0 for an empty timeline)."""
        if not self._spans:
            return 0.0
        return max(s.end for s in self._spans) - min(s.start for s in self._spans)

    def bucket_wall(self) -> dict[str, float]:
        """Union-of-intervals time per Figure-5 bucket."""
        out: dict[str, float] = {}
        for bucket in (BUCKET_HOST_COMM, BUCKET_SPARK, BUCKET_COMPUTE):
            phases = [p for p, b in _BUCKET_OF.items() if b == bucket]
            out[bucket] = self.filter(phases).wall()
        return out

    def figure5_breakdown(self, total: float | None = None) -> dict[str, float]:
        """Roll spans up into the paper's three stacked components.

        The three buckets are scaled so they sum to ``total`` (default: the
        observed makespan).  Scaling is needed because buckets overlap in time
        (computation proceeds while the next wave is being scheduled); Figure 5
        presents a stacked — i.e. partitioned — view.
        """
        walls = self.bucket_wall()
        s = sum(walls.values())
        total = self.span() if total is None else total
        if s <= 0.0:
            return {k: 0.0 for k in walls}
        return {k: v * total / s for k, v in walls.items()}

    def by_resource(self) -> Mapping[str, float]:
        """Busy seconds per resource name."""
        out: dict[str, float] = {}
        for s in self._spans:
            out[s.resource] = out.get(s.resource, 0.0) + s.duration
        return out
