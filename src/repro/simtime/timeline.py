"""Phase timelines — the data behind Figure 5 of the paper.

The paper decomposes offload time into *host-target communication*, *Spark
overhead* and *computation*.  Internally we record finer-grained phases (gzip
compression, upload/download, broadcast, scheduling, intra-cluster shuffle,
JNI-style call overhead, the map computation itself) and roll them up into the
paper's three buckets with :meth:`Timeline.figure5_breakdown`.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping


class Phase(enum.Enum):
    """Fine-grained activity classes recorded during an offload run."""

    # Host-target communication (local machine <-> cloud storage).
    HOST_COMPRESS = "host_compress"
    HOST_UPLOAD = "host_upload"
    HOST_DOWNLOAD = "host_download"
    HOST_DECOMPRESS = "host_decompress"
    # Spark / cluster overhead.
    CLUSTER_INIT = "cluster_init"
    STORAGE_READ = "storage_read"
    STORAGE_WRITE = "storage_write"
    SCHEDULING = "scheduling"
    SPECULATION = "speculation"
    BROADCAST = "broadcast"
    INTRA_TRANSFER = "intra_transfer"
    WORKER_DECOMPRESS = "worker_decompress"
    WORKER_COMPRESS = "worker_compress"
    COLLECT = "collect"
    RECONSTRUCT = "reconstruct"
    JNI_CALL = "jni_call"
    # Persistent data environments (target data / target update).
    ENV_ENTER = "env_enter"
    ENV_EXIT = "env_exit"
    TARGET_UPDATE = "target_update"
    # Recovery activity (retries, job resubmission, spot replacement...).
    RETRY_BACKOFF = "retry_backoff"
    RESUBMIT = "resubmit"
    PREEMPTION = "preemption"
    RECOVERY = "recovery"
    FALLBACK = "fallback"
    # A fused submission: several chained regions running as one Spark job
    # (recorded on its own resource row, spanning the whole fused job).
    FUSED = "fused"
    # The useful work.
    COMPUTE = "compute"

    @property
    def bucket(self) -> str:
        """Figure-5 bucket this phase rolls up into."""
        return _BUCKET_OF[self]


#: The three stacked components of Figure 5.
BUCKET_HOST_COMM = "host-target communication"
BUCKET_SPARK = "spark overhead"
BUCKET_COMPUTE = "computation"
#: Extra stacked component, present only when fault recovery charged time
#: (the paper's fault-free runs keep the original three-bucket stack).
BUCKET_RESILIENCE = "resilience"

_BUCKET_OF: dict[Phase, str] = {
    Phase.HOST_COMPRESS: BUCKET_HOST_COMM,
    Phase.HOST_UPLOAD: BUCKET_HOST_COMM,
    Phase.HOST_DOWNLOAD: BUCKET_HOST_COMM,
    Phase.HOST_DECOMPRESS: BUCKET_HOST_COMM,
    Phase.CLUSTER_INIT: BUCKET_SPARK,
    Phase.STORAGE_READ: BUCKET_SPARK,
    Phase.STORAGE_WRITE: BUCKET_SPARK,
    Phase.SCHEDULING: BUCKET_SPARK,
    # Launching a speculative straggler copy is driver-side scheduling work.
    Phase.SPECULATION: BUCKET_SPARK,
    Phase.BROADCAST: BUCKET_SPARK,
    Phase.INTRA_TRANSFER: BUCKET_SPARK,
    Phase.WORKER_DECOMPRESS: BUCKET_SPARK,
    Phase.WORKER_COMPRESS: BUCKET_SPARK,
    Phase.COLLECT: BUCKET_SPARK,
    Phase.RECONSTRUCT: BUCKET_SPARK,
    Phase.JNI_CALL: BUCKET_SPARK,
    # Environment transfers move over the host-target channel, like the
    # per-offload staging they replace.
    Phase.ENV_ENTER: BUCKET_HOST_COMM,
    Phase.ENV_EXIT: BUCKET_HOST_COMM,
    Phase.TARGET_UPDATE: BUCKET_HOST_COMM,
    # Recovery phases: backoff is charged on the host side of the channel;
    # resubmission/preemption handling is cluster-side overhead.
    Phase.RETRY_BACKOFF: BUCKET_HOST_COMM,
    Phase.RESUBMIT: BUCKET_SPARK,
    Phase.PREEMPTION: BUCKET_SPARK,
    Phase.RECOVERY: BUCKET_SPARK,
    Phase.FALLBACK: BUCKET_HOST_COMM,
    Phase.FUSED: BUCKET_SPARK,
    Phase.COMPUTE: BUCKET_COMPUTE,
}


@dataclass(frozen=True)
class Span:
    """One contiguous activity on one resource, in simulated seconds."""

    phase: Phase
    start: float
    end: float
    resource: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start


#: Process default for :class:`Timeline` coarsening (see
#: :func:`coarse_timelines`).  Off by default: every existing run records
#: exact per-activity spans, bit-identical to the historical behaviour.
_COARSE_DEFAULT = False


@contextmanager
def coarse_timelines(enabled: bool = True) -> Iterator[None]:
    """Make every :class:`Timeline` created in this scope coarse by default.

    Coarse timelines aggregate spans into one segment per (phase, resource)
    — per-worker segments instead of a million-element span list.  The
    scaling bench wraps its giant runs in this; ordinary runs never coarsen
    unless asked, so recorded traces and baselines stay exact.
    """
    global _COARSE_DEFAULT
    prev = _COARSE_DEFAULT
    _COARSE_DEFAULT = bool(enabled)
    try:
        yield
    finally:
        _COARSE_DEFAULT = prev


class Timeline:
    """An append-only collection of :class:`Span` with roll-up queries.

    The *critical-path* semantics of an offload run live in the recorded start
    and end times, not the sum of durations: parallel uploads overlap, map
    tasks overlap.  ``wall(phase)`` therefore measures the union of intervals
    of a phase, while ``busy(phase)`` sums raw durations (resource-seconds).

    A **coarse** timeline (``Timeline(coarse=True)``, or any timeline created
    under :func:`coarse_timelines`) does not retain individual spans: each
    ``record`` folds into one aggregate per (phase, resource) holding the
    span count, the earliest start, the latest end and the exact busy-seconds
    sum.  ``busy``/``by_resource``/``span`` stay exact; ``spans`` synthesizes
    one merged segment per aggregate (what the gantt/trace exporters then
    show as per-worker segments); ``wall`` unions those merged segments, an
    upper bound on the exact per-span union.  1M task phases cost a few dict
    updates each and O(workers) memory instead of a 4M-element span list.

    Extending a coarse timeline into a fine one keeps the aggregates exact
    as a *carried* side table (queries fold it in as merged segments), so a
    mixed chain — coarse job timeline -> long-lived fine accumulator ->
    coarse report — loses nothing: the final aggregates are identical to an
    all-coarse chain.
    """

    def __init__(self, coarse: bool | None = None) -> None:
        self.coarse = _COARSE_DEFAULT if coarse is None else bool(coarse)
        self._spans: list[Span] = []
        # (phase, resource) -> [count, min_start, max_end, busy_sum]
        self._agg: dict[tuple[Phase, str], list] | None = (
            {} if self.coarse else None)
        # Aggregates adopted when a *coarse* timeline is extended into this
        # *fine* one (a long-lived accumulator like SparkContext.timeline may
        # predate a coarse_timelines() scope).  Kept exact — not flattened to
        # merged segments — so extending onward into a coarse timeline
        # round-trips count/envelope/busy losslessly.
        self._carried: dict[tuple[Phase, str], list] | None = None

    def record(
        self,
        phase: Phase,
        start: float,
        end: float,
        resource: str = "",
        label: str = "",
    ) -> Span | None:
        """Record one activity.  Returns the stored span, or None when this
        timeline is coarse (aggregates don't keep individual spans)."""
        agg = self._agg
        if agg is not None:
            if end < start:
                raise ValueError(
                    f"span ends before it starts: {phase} [{start}, {end})")
            e = agg.get((phase, resource))
            if e is None:
                agg[(phase, resource)] = [1, start, end, end - start]
            else:
                e[0] += 1
                if start < e[1]:
                    e[1] = start
                if end > e[2]:
                    e[2] = end
                e[3] += end - start
            return None
        span = Span(phase=phase, start=start, end=end, resource=resource, label=label)
        self._spans.append(span)
        return span

    @staticmethod
    def _merge_agg(dst: dict, src: dict) -> None:
        for key, (cnt, lo, hi, busy) in src.items():
            e = dst.get(key)
            if e is None:
                dst[key] = [cnt, lo, hi, busy]
            else:
                e[0] += cnt
                e[1] = min(e[1], lo)
                e[2] = max(e[2], hi)
                e[3] += busy

    def extend(self, other: "Timeline") -> None:
        if self._agg is not None:
            if other._agg is not None:
                self._merge_agg(self._agg, other._agg)
            else:
                for s in other._spans:
                    self.record(s.phase, s.start, s.end, s.resource)
                if other._carried:
                    self._merge_agg(self._agg, other._carried)
        else:
            if other._agg is not None or other._carried:
                if self._carried is None:
                    self._carried = {}
                if other._agg is not None:
                    self._merge_agg(self._carried, other._agg)
                if other._carried:
                    self._merge_agg(self._carried, other._carried)
            self._spans.extend(other._spans)

    @staticmethod
    def _materialize(agg: dict) -> Iterator[Span]:
        """Merged segments for an aggregate table, in a stable order."""
        return (
            Span(phase=phase, start=lo, end=hi, resource=resource,
                 label=f"coarse:{cnt}")
            for (phase, resource), (cnt, lo, hi, _busy) in sorted(
                agg.items(),
                key=lambda kv: (kv[1][1], kv[0][0].value, kv[0][1]))
        )

    @property
    def spans(self) -> tuple[Span, ...]:
        if self._agg is not None:
            return tuple(self._materialize(self._agg))
        if self._carried:
            return tuple(self._spans) + tuple(self._materialize(self._carried))
        return tuple(self._spans)

    def __len__(self) -> int:
        if self._agg is not None:
            return len(self._agg)
        return len(self._spans) + (len(self._carried) if self._carried else 0)

    def filter(self, phases: Iterable[Phase]) -> "Timeline":
        keep = set(phases)
        tl = Timeline(coarse=self.coarse)
        if self._agg is not None:
            assert tl._agg is not None
            tl._agg = {k: list(v) for k, v in self._agg.items() if k[0] in keep}
        else:
            tl._spans = [s for s in self._spans if s.phase in keep]
            if self._carried:
                tl._carried = {k: list(v) for k, v in self._carried.items()
                               if k[0] in keep}
        return tl

    def busy(self, phase: Phase | None = None) -> float:
        """Total resource-seconds spent in ``phase`` (all phases if None).

        Exact in both modes: coarse aggregates carry the busy-seconds sum.
        """
        if self._agg is not None:
            return sum(v[3] for k, v in self._agg.items()
                       if phase is None or k[0] == phase)
        total = sum(s.duration for s in self._spans
                    if phase is None or s.phase == phase)
        if self._carried:
            total += sum(v[3] for k, v in self._carried.items()
                         if phase is None or k[0] == phase)
        return total

    def wall(self, phase: Phase | None = None) -> float:
        """Length of the union of intervals of ``phase`` (all phases if None).

        On a coarse timeline the union runs over the merged per-(phase,
        resource) segments, an upper bound on the per-span union.
        """
        if self._agg is not None:
            ivals = sorted(
                (v[1], v[2]) for k, v in self._agg.items()
                if phase is None or k[0] == phase)
        else:
            ivals = [(s.start, s.end) for s in self._spans
                     if phase is None or s.phase == phase]
            if self._carried:
                ivals.extend((v[1], v[2]) for k, v in self._carried.items()
                             if phase is None or k[0] == phase)
            ivals.sort()
        total = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for a, b in ivals:
            if cur_start is None:
                cur_start, cur_end = a, b
            elif a <= cur_end:
                cur_end = max(cur_end, b)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = a, b
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def span(self) -> float:
        """Makespan: last end minus first start (0 for an empty timeline)."""
        if self._agg is not None:
            if not self._agg:
                return 0.0
            return (max(v[2] for v in self._agg.values())
                    - min(v[1] for v in self._agg.values()))
        ends = [s.end for s in self._spans]
        starts = [s.start for s in self._spans]
        if self._carried:
            starts.extend(v[1] for v in self._carried.values())
            ends.extend(v[2] for v in self._carried.values())
        if not starts:
            return 0.0
        return max(ends) - min(starts)

    def bucket_wall(self) -> dict[str, float]:
        """Union-of-intervals time per Figure-5 bucket."""
        out: dict[str, float] = {}
        for bucket in (BUCKET_HOST_COMM, BUCKET_SPARK, BUCKET_COMPUTE):
            phases = [p for p, b in _BUCKET_OF.items() if b == bucket]
            out[bucket] = self.filter(phases).wall()
        return out

    def figure5_breakdown(self, total: float | None = None) -> dict[str, float]:
        """Roll spans up into the paper's three stacked components.

        The three buckets are scaled so they sum to ``total`` (default: the
        observed makespan).  Scaling is needed because buckets overlap in time
        (computation proceeds while the next wave is being scheduled); Figure 5
        presents a stacked — i.e. partitioned — view.
        """
        walls = self.bucket_wall()
        s = sum(walls.values())
        total = self.span() if total is None else total
        if s <= 0.0:
            return {k: 0.0 for k in walls}
        return {k: v * total / s for k, v in walls.items()}

    def by_resource(self) -> Mapping[str, float]:
        """Busy seconds per resource name (exact in both modes)."""
        out: dict[str, float] = {}
        if self._agg is not None:
            for (_phase, resource), v in self._agg.items():
                out[resource] = out.get(resource, 0.0) + v[3]
            return out
        for s in self._spans:
            out[s.resource] = out.get(s.resource, 0.0) + s.duration
        if self._carried:
            for (_phase, resource), v in self._carried.items():
                out[resource] = out.get(resource, 0.0) + v[3]
        return out
