"""Chrome-trace export of offload timelines.

Converts a :class:`~repro.simtime.timeline.Timeline` into the Trace Event
Format consumed by ``chrome://tracing`` and Perfetto (https://ui.perfetto.dev):
one track per resource, one complete event per span, phases as categories.
Simulated seconds map to microseconds.

    report = offload(...)
    write_chrome_trace(report.timeline, "offload.trace.json")
    # then open the file in Perfetto

The CLI exposes it as ``python -m repro run <bench> --trace out.json``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.simtime.timeline import Timeline


def to_chrome_trace(timeline: Timeline, process_name: str = "ompcloud") -> dict[str, Any]:
    """Build the Trace Event Format dict for ``timeline``."""
    # Stable track ids: resources in order of first activity.
    tids: dict[str, int] = {}
    for span in sorted(timeline.spans, key=lambda s: s.start):
        tids.setdefault(span.resource or "(unnamed)", len(tids))

    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",  # metadata
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for resource, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": resource},
        })
    for span in timeline.spans:
        tid = tids[span.resource or "(unnamed)"]
        events.append({
            "name": span.label or span.phase.value,
            "cat": span.phase.bucket,
            "ph": "X",  # complete event
            "pid": 1,
            "tid": tid,
            "ts": span.start * 1e6,  # simulated seconds -> microseconds
            "dur": span.duration * 1e6,
            "args": {"phase": span.phase.value},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: Timeline, path: str,
                       process_name: str = "ompcloud") -> str:
    """Serialize the trace to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(timeline, process_name), fh)
    return path
