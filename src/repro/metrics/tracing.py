"""Chrome-trace export of offload timelines.

Converts a :class:`~repro.simtime.timeline.Timeline` into the Trace Event
Format consumed by ``chrome://tracing`` and Perfetto (https://ui.perfetto.dev):
one track per resource, one complete event per span, phases as categories.
Simulated seconds map to microseconds.

    report = offload(...)
    write_chrome_trace(report.timeline, "offload.trace.json")
    # then open the file in Perfetto

Beyond the per-span ``X`` events the exporter emits:

* ``C`` (counter) tracks — ``active workers`` from overlapping COMPUTE
  spans, and ``in-flight bytes`` when the optional ``events`` stream
  (:class:`~repro.obs.events.MapUpload`/``MapDownload``) is provided;
* ``s``/``f`` (flow) events linking each RETRY_BACKOFF span to the RESUBMIT
  span it led to, so a retry deep in the storage layer visually connects to
  the Spark resubmission it triggered — and each SPECULATION launch span to
  the speculative copy's first worker span (``task-<id>-spec``), so a
  straggler rescue reads as one arrow from the driver to the winning worker;
* an optional **critical path** highlight track (pass ``critical=``, e.g.
  :attr:`~repro.obs.profile.OffloadProfile.critical_spans`): the profiler's
  chain re-emitted on its own thread row, so the spans that gated the
  makespan read as one contiguous lane above the per-resource tracks.

Span events are sorted by ``(start, end, resource)`` before emission, so
tracks never interleave out of order for late-registered resources and the
output is byte-stable for identical timelines.

The CLI exposes it as ``python -m repro run <bench> --trace out.json``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.simtime.timeline import Phase, Span, Timeline

#: Trace Event phase codes this exporter emits.
PHASE_COMPLETE = "X"
PHASE_METADATA = "M"
PHASE_COUNTER = "C"
PHASE_FLOW_START = "s"
PHASE_FLOW_END = "f"


def _sorted_spans(timeline: Timeline) -> list[Span]:
    return sorted(timeline.spans, key=lambda s: (s.start, s.end, s.resource))


def _counter_events(spans: list[Span], events: Iterable[Any]) -> list[dict[str, Any]]:
    """Perfetto counter tracks: active workers + in-flight wire bytes."""
    out: list[dict[str, Any]] = []

    # Concurrent COMPUTE spans: the cluster's busy-worker profile.
    deltas: list[tuple[float, int]] = []
    for s in spans:
        if s.phase is Phase.COMPUTE and s.duration > 0:
            deltas.append((s.start, +1))
            deltas.append((s.end, -1))
    running = 0
    for ts, step in sorted(deltas):
        running += step
        out.append({
            "name": "active workers", "ph": PHASE_COUNTER, "pid": 1,
            "ts": ts * 1e6, "args": {"workers": running},
        })

    # Wire bytes in flight on the WAN, from MapUpload/MapDownload events.
    byte_deltas: list[tuple[float, int]] = []
    for e in events:
        if getattr(e, "kind", "") in ("map_upload", "map_download"):
            byte_deltas.append((e.start, +e.bytes_wire))
            byte_deltas.append((e.end, -e.bytes_wire))
    in_flight = 0
    for ts, step in sorted(byte_deltas):
        in_flight += step
        out.append({
            "name": "in-flight bytes", "ph": PHASE_COUNTER, "pid": 1,
            "ts": ts * 1e6, "args": {"bytes": in_flight},
        })
    return out


def _flow_events(spans: list[Span], tids: dict[str, int]) -> list[dict[str, Any]]:
    """Link each RETRY_BACKOFF span to the next RESUBMIT span after it."""
    retries = [s for s in spans if s.phase is Phase.RETRY_BACKOFF]
    resubmits = [s for s in spans if s.phase is Phase.RESUBMIT]
    out: list[dict[str, Any]] = []
    flow_id = 0
    for retry in retries:
        target = next((r for r in resubmits if r.start >= retry.end), None)
        if target is None:
            continue
        flow_id += 1
        common = {"name": "retry->resubmit", "cat": "resilience", "id": flow_id,
                  "pid": 1}
        out.append({**common, "ph": PHASE_FLOW_START,
                    "tid": tids[retry.resource or "(unnamed)"],
                    "ts": retry.end * 1e6})
        out.append({**common, "ph": PHASE_FLOW_END, "bp": "e",
                    "tid": tids[target.resource or "(unnamed)"],
                    "ts": target.start * 1e6})

    # Speculation flows: the driver's launch span connects to the copy's
    # first span on the rescuing worker (labelled "task-<id>-spec").  Flow
    # ids continue the retry counter so the pairing stays collision-free.
    for launch in (s for s in spans if s.phase is Phase.SPECULATION):
        label = (launch.label or "").replace("speculate-", "task-", 1)
        target = next((s for s in spans
                       if s.label == f"{label}-spec" and s.start >= launch.end),
                      None)
        if target is None:
            continue
        flow_id += 1
        common = {"name": "speculate->copy", "cat": "scheduling",
                  "id": flow_id, "pid": 1}
        out.append({**common, "ph": PHASE_FLOW_START,
                    "tid": tids[launch.resource or "(unnamed)"],
                    "ts": launch.end * 1e6})
        out.append({**common, "ph": PHASE_FLOW_END, "bp": "e",
                    "tid": tids[target.resource or "(unnamed)"],
                    "ts": target.start * 1e6})
    return out


def _critical_track(critical: Iterable[Span], tid: int) -> list[dict[str, Any]]:
    """The critical-path highlight lane: one X event per chain span."""
    out: list[dict[str, Any]] = [{
        "name": "thread_name",
        "ph": PHASE_METADATA,
        "pid": 1,
        "tid": tid,
        "args": {"name": "critical path"},
    }]
    for span in critical:
        out.append({
            "name": span.label or span.phase.value,
            "cat": "critical-path",
            "ph": PHASE_COMPLETE,
            "pid": 1,
            "tid": tid,
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "args": {"phase": span.phase.value,
                     "resource": span.resource or "(unnamed)"},
        })
    return out


def to_chrome_trace(
    timeline: Timeline,
    process_name: str = "ompcloud",
    events: Iterable[Any] = (),
    critical: Iterable[Span] | None = None,
) -> dict[str, Any]:
    """Build the Trace Event Format dict for ``timeline``.

    ``events`` may be the recorded stream of an
    :class:`~repro.obs.events.EventBus` — upload/download events then feed
    the in-flight-bytes counter track.  ``critical`` (a chain of spans, e.g.
    the profiler's :attr:`~repro.obs.profile.OffloadProfile.critical_spans`)
    adds the highlight track."""
    spans = _sorted_spans(timeline)
    # Stable track ids: resources in order of first activity.
    tids: dict[str, int] = {}
    for span in spans:
        tids.setdefault(span.resource or "(unnamed)", len(tids))

    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": PHASE_METADATA,
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for resource, tid in tids.items():
        trace_events.append({
            "name": "thread_name",
            "ph": PHASE_METADATA,
            "pid": 1,
            "tid": tid,
            "args": {"name": resource},
        })
    for span in spans:
        tid = tids[span.resource or "(unnamed)"]
        trace_events.append({
            "name": span.label or span.phase.value,
            "cat": span.phase.bucket,
            "ph": PHASE_COMPLETE,
            "pid": 1,
            "tid": tid,
            "ts": span.start * 1e6,  # simulated seconds -> microseconds
            "dur": span.duration * 1e6,
            "args": {"phase": span.phase.value},
        })
    trace_events.extend(_counter_events(spans, events))
    trace_events.extend(_flow_events(spans, tids))
    if critical is not None:
        trace_events.extend(_critical_track(critical, tid=len(tids)))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_trace(trace: dict[str, Any]) -> None:
    """Check the Trace Event JSON schema this exporter promises.

    Raises :class:`ValueError` on the first violation.  Used by the
    round-trip tests and safe to run on any exporter output.
    """
    if set(trace) != {"traceEvents", "displayTimeUnit"}:
        raise ValueError(f"unexpected top-level keys: {sorted(trace)}")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in (PHASE_COMPLETE, PHASE_METADATA, PHASE_COUNTER,
                      PHASE_FLOW_START, PHASE_FLOW_END):
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        if not isinstance(e.get("name"), str) or not e["name"]:
            raise ValueError(f"event {i}: missing name")
        if e.get("pid") != 1:
            raise ValueError(f"event {i}: bad pid {e.get('pid')!r}")
        if ph == PHASE_COMPLETE:
            if not isinstance(e.get("ts"), (int, float)):
                raise ValueError(f"event {i}: X event needs numeric ts")
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                raise ValueError(f"event {i}: X event needs dur >= 0")
            if "tid" not in e:
                raise ValueError(f"event {i}: X event needs a tid")
        elif ph == PHASE_COUNTER:
            if not isinstance(e.get("args"), dict) or not e["args"]:
                raise ValueError(f"event {i}: C event needs args values")
        elif ph in (PHASE_FLOW_START, PHASE_FLOW_END):
            if "id" not in e or "tid" not in e:
                raise ValueError(f"event {i}: flow event needs id and tid")
            if ph == PHASE_FLOW_END and e.get("bp") != "e":
                raise ValueError(f"event {i}: flow end should bind enclosing")
    # Flow starts and ends must pair up by id.
    starts = {e["id"] for e in events if e.get("ph") == PHASE_FLOW_START}
    ends = {e["id"] for e in events if e.get("ph") == PHASE_FLOW_END}
    if starts != ends:
        raise ValueError(f"unpaired flow ids: starts {sorted(starts)} "
                         f"vs ends {sorted(ends)}")


def write_chrome_trace(timeline: Timeline, path: str,
                       process_name: str = "ompcloud",
                       events: Iterable[Any] = (),
                       critical: Iterable[Span] | None = None) -> str:
    """Serialize the trace to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(timeline, process_name, events=events,
                                  critical=critical), fh)
    return path
