"""Parameter sweeps over the modeled experiment space.

A thin grid-runner used by the extension benches: sweep any combination of
workload, core count, density and problem size, collect one flat row per
point, and export CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.metrics.costs import experiment_cost
from repro.metrics.figures import run_point


@dataclass(frozen=True)
class SweepRow:
    """One grid point, flattened."""

    workload: str
    cores: int
    density: float
    size: int
    full_s: float
    spark_s: float
    computation_s: float
    host_comm_s: float
    speedup_full: float
    speedup_spark: float
    speedup_computation: float
    cost_usd: float

    FIELDS = (
        "workload", "cores", "density", "size", "full_s", "spark_s",
        "computation_s", "host_comm_s", "speedup_full", "speedup_spark",
        "speedup_computation", "cost_usd",
    )

    def as_tuple(self) -> tuple:
        return tuple(getattr(self, f) for f in self.FIELDS)


def sweep(
    workloads: Sequence[str],
    cores: Sequence[int],
    densities: Sequence[float] = (1.0,),
    size: int | None = None,
    n_workers: int = 16,
) -> list[SweepRow]:
    """Run the full cartesian grid; one modeled offload per point."""
    rows: list[SweepRow] = []
    for name in workloads:
        for c in cores:
            for d in densities:
                pt = run_point(name, c, d, size=size, n_workers=n_workers)
                cost = experiment_cost(pt.report.full_s, n_workers=n_workers)
                rows.append(SweepRow(
                    workload=name,
                    cores=c,
                    density=d,
                    size=size if size is not None else -1,
                    full_s=pt.report.full_s,
                    spark_s=pt.report.spark_job_s,
                    computation_s=pt.report.computation_s,
                    host_comm_s=pt.report.host_comm_s,
                    speedup_full=pt.speedup_full,
                    speedup_spark=pt.speedup_spark,
                    speedup_computation=pt.speedup_computation,
                    cost_usd=cost.total_usd,
                ))
    return rows


def to_csv(rows: Iterable[SweepRow]) -> str:
    """Render sweep rows as CSV text (header included)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(SweepRow.FIELDS)
    for row in rows:
        writer.writerow(row.as_tuple())
    return buf.getvalue()


def cheapest_point(rows: Sequence[SweepRow]) -> SweepRow:
    """The grid point with the lowest dollar cost (ties: fewer cores)."""
    if not rows:
        raise ValueError("empty sweep")
    return min(rows, key=lambda r: (r.cost_usd, r.cores))


def fastest_point(rows: Sequence[SweepRow]) -> SweepRow:
    if not rows:
        raise ValueError("empty sweep")
    return min(rows, key=lambda r: (r.full_s, r.cores))
