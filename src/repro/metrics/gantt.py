"""ASCII Gantt rendering of offload timelines.

Turns a :class:`~repro.simtime.timeline.Timeline` into a monospace chart —
one row per resource, one glyph per phase — so a report can *show* where an
offload spent its time (the visual counterpart of Figure 5's stacks):

    host        CCCUUUUUUU..................DDd
    driver      ..........SSRR....rr..........
    driver-nic  ............xx........cc......
    worker-0    ..............ddjMMMMMMMMw....

With ``critical=`` (a chain of spans, e.g. the profiler's
:attr:`~repro.obs.profile.OffloadProfile.critical_spans`) a ``[critical]``
row is prepended showing which phase gated the makespan in each column —
the one lane that is busy end to end when the run is gap-free.
"""

from __future__ import annotations

from typing import Iterable

from repro.simtime.timeline import Phase, Span, Timeline

#: One glyph per phase (upper-case = usually dominant phases).
PHASE_GLYPHS: dict[Phase, str] = {
    Phase.HOST_COMPRESS: "C",
    Phase.HOST_UPLOAD: "U",
    Phase.HOST_DOWNLOAD: "D",
    Phase.HOST_DECOMPRESS: "d",
    Phase.CLUSTER_INIT: "I",
    Phase.STORAGE_READ: "R",
    Phase.STORAGE_WRITE: "W",
    Phase.SCHEDULING: "S",
    Phase.SPECULATION: "s",
    Phase.BROADCAST: "B",
    Phase.INTRA_TRANSFER: "x",
    Phase.WORKER_DECOMPRESS: "u",
    Phase.WORKER_COMPRESS: "z",
    Phase.COLLECT: "c",
    Phase.RECONSTRUCT: "r",
    Phase.JNI_CALL: "j",
    Phase.ENV_ENTER: "e",
    Phase.ENV_EXIT: "E",
    Phase.TARGET_UPDATE: "t",
    Phase.RETRY_BACKOFF: "~",
    Phase.RESUBMIT: "!",
    Phase.PREEMPTION: "X",
    Phase.RECOVERY: "+",
    Phase.FALLBACK: "F",
    Phase.FUSED: "f",
    Phase.COMPUTE: "M",
}


#: Row label of the critical-path lane.
CRITICAL_ROW = "[critical]"


def render_gantt(
    timeline: Timeline,
    width: int = 80,
    max_rows: int = 24,
    critical: Iterable[Span] | None = None,
) -> str:
    """Render the timeline as an ASCII Gantt chart.

    Resources are rows (ordered by first activity); simulated time maps
    linearly onto ``width`` columns.  When several phases of one resource
    share a column, the one covering more of that column wins.  Rows beyond
    ``max_rows`` are folded into a ``(+N more)`` line.  ``critical`` adds
    the :data:`CRITICAL_ROW` lane above the resource rows.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    spans = timeline.spans
    if not spans:
        return "(empty timeline)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    horizon = max(t1 - t0, 1e-12)

    resources: list[str] = []
    for s in sorted(spans, key=lambda s: s.start):
        name = s.resource or "(unnamed)"
        if name not in resources:
            resources.append(name)

    hidden = 0
    if len(resources) > max_rows:
        hidden = len(resources) - max_rows
        resources = resources[:max_rows]

    crit_spans = list(critical) if critical is not None else None

    def row_for(row_spans) -> str:
        # Per-column coverage: phase -> seconds covered in that column.
        coverage: list[dict[Phase, float]] = [dict() for _ in range(width)]
        for s in row_spans:
            c_lo = (s.start - t0) / horizon * width
            c_hi = (s.end - t0) / horizon * width
            for col in range(max(0, int(c_lo)), min(width, int(c_hi) + 1)):
                overlap = min(c_hi, col + 1) - max(c_lo, col)
                if overlap > 0:
                    coverage[col][s.phase] = coverage[col].get(s.phase, 0.0) + overlap
        row = []
        for col in range(width):
            if not coverage[col]:
                row.append(".")
            else:
                phase = max(coverage[col], key=coverage[col].get)  # type: ignore[arg-type]
                row.append(PHASE_GLYPHS.get(phase, "?"))
        return "".join(row)

    label_w = max(len(r) for r in resources)
    if crit_spans is not None:
        label_w = max(label_w, len(CRITICAL_ROW))
    lines = [
        f"{'':{label_w}}  0.0s{'':{max(0, width - 12)}}{horizon:.1f}s",
    ]
    if crit_spans is not None:
        lines.append(f"{CRITICAL_ROW:{label_w}}  {row_for(crit_spans)}")
    for name in resources:
        cells = row_for(s for s in spans
                        if (s.resource or "(unnamed)") == name)
        lines.append(f"{name:{label_w}}  {cells}")
    if hidden:
        lines.append(f"{'':{label_w}}  (+{hidden} more resource rows)")

    legend_phases = sorted(
        {s.phase for s in spans} | {s.phase for s in (crit_spans or [])},
        key=lambda p: p.value,
    )
    legend = "  ".join(f"{PHASE_GLYPHS[p]}={p.value}" for p in legend_phases)
    lines.append("")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
