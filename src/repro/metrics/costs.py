"""Dollar-cost estimation of the experiments.

The paper's pay-as-you-go argument ("the programmer can automatically control
the usage of the cloud infrastructure, thus allowing him/her to pay for just
the amount of computational resources used") becomes measurable here: given
an offload's duration, charge the cluster's instances at the 2017 on-demand
rates with EC2's hour-rounded billing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.ec2 import EC2_INSTANCE_TYPES


@dataclass(frozen=True)
class CostEstimate:
    """Cost of keeping a cluster up for one offload."""

    instance_type: str
    n_instances: int  # workers + driver
    hours_billed: float
    total_usd: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_instances} x {self.instance_type} for {self.hours_billed:.0f} "
            f"billed hour(s): ${self.total_usd:.2f}"
        )


def experiment_cost(
    duration_s: float,
    n_workers: int = 16,
    instance_type: str = "c3.8xlarge",
    include_driver: bool = True,
) -> CostEstimate:
    """EC2-2017 billing: whole hours, rounded up, minimum one hour."""
    if duration_s < 0:
        raise ValueError(f"negative duration {duration_s!r}")
    itype = EC2_INSTANCE_TYPES[instance_type]
    hours = max(1.0, float(-(-int(duration_s) // 3600)))
    n = n_workers + (1 if include_driver else 0)
    return CostEstimate(
        instance_type=instance_type,
        n_instances=n,
        hours_billed=hours,
        total_usd=hours * itype.hourly_usd * n,
    )
