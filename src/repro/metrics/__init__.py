"""Experiment drivers and reporting for the paper's evaluation.

:mod:`~repro.metrics.figures` runs the modeled experiments behind Figure 4
(speedup curves) and Figure 5 (load-distribution stacks) and the headline
numbers of Section IV; :mod:`~repro.metrics.tables` renders aligned text
tables; :mod:`~repro.metrics.costs` estimates the dollar cost of each
experiment through the billing substrate.
"""

from repro.metrics.figures import (
    CORE_SWEEP,
    DENSE,
    SPARSE,
    ExperimentPoint,
    Figure4Row,
    Figure5Row,
    demo_config,
    figure4_series,
    figure5_series,
    headline_numbers,
    run_point,
)
from repro.metrics.tables import format_table
from repro.metrics.costs import experiment_cost
from repro.metrics.gantt import render_gantt
from repro.metrics.tracing import to_chrome_trace, write_chrome_trace
from repro.metrics.sweep import SweepRow, cheapest_point, fastest_point, sweep, to_csv

__all__ = [
    "CORE_SWEEP",
    "DENSE",
    "SPARSE",
    "ExperimentPoint",
    "Figure4Row",
    "Figure5Row",
    "demo_config",
    "figure4_series",
    "figure5_series",
    "headline_numbers",
    "run_point",
    "format_table",
    "experiment_cost",
    "render_gantt",
    "to_chrome_trace",
    "write_chrome_trace",
    "SweepRow",
    "cheapest_point",
    "fastest_point",
    "sweep",
    "to_csv",
]
