"""Experiment drivers for Figures 4 and 5 and the Section-IV numbers.

Every point is one modeled offload of a paper-scale workload on a 16-worker
c3.8xlarge cluster capped to the requested number of physical cores (8..256),
with dense and sparse inputs.  Speedups are over modeled single-core native
execution, exactly as the paper normalizes; Figure 4's caption says *average*
speedup, so its series average the dense and sparse runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cloud.credentials import Credentials
from repro.core.api import offload
from repro.core.buffers import ExecutionMode
from repro.core.config import CloudConfig
from repro.core.plugin_cloud import CloudDevice
from repro.core.report import OffloadReport
from repro.core.runtime import OffloadRuntime
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.compute import ComputeModel
from repro.workloads.specs import WORKLOADS, WorkloadSpec

#: The paper's x-axis: 8 to 256 dedicated CPU cores on a 16-worker cluster.
CORE_SWEEP = (8, 16, 32, 64, 128, 256)
#: OmpThread reference thread counts ("the largest ... c3 has 16 cores").
THREAD_SWEEP = (8, 16)

DENSE = 1.0
SPARSE = 0.05


def demo_config(n_workers: int = 16) -> CloudConfig:
    """A valid offline configuration for the simulated EC2 + S3 stack."""
    creds = Credentials(
        provider="ec2",
        username="ubuntu",
        access_key_id="AKIA" + "REPRODUCTION" + "0000",
        secret_key="offline-simulated-secret-key",
    )
    return CloudConfig(credentials=creds, n_workers=n_workers)


@dataclass(frozen=True)
class ExperimentPoint:
    """One (workload, cores, density) modeled offload."""

    workload: str
    cores: int
    density: float
    report: OffloadReport
    sequential_s: float

    @property
    def speedup_full(self) -> float:
        return self.sequential_s / self.report.full_s

    @property
    def speedup_spark(self) -> float:
        return self.sequential_s / self.report.spark_job_s

    @property
    def speedup_computation(self) -> float:
        return self.sequential_s / self.report.computation_s

    @property
    def spark_overhead_share(self) -> float:
        """1 - S_spark/S_comp: the gap the paper quotes for SYRK/collinear."""
        return 1.0 - self.speedup_spark / self.speedup_computation


def _total_flops(spec: WorkloadSpec, size: int) -> float:
    region = spec.build_region()
    scalars = spec.scalars(size)
    return sum(
        loop.tile_flops(0, loop.trip_count_value(scalars), scalars)
        for loop in region.loops
    )


def run_point(
    workload: str,
    cores: int,
    density: float = DENSE,
    size: int | None = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    n_workers: int = 16,
) -> ExperimentPoint:
    """Run one modeled offload and wrap it with its speedup baselines."""
    spec = WORKLOADS[workload]
    actual_size = size if size is not None else spec.paper_size
    region = spec.build_region("CLOUD")
    scalars = spec.scalars(actual_size)
    runtime = OffloadRuntime()
    device = CloudDevice(
        demo_config(n_workers=n_workers),
        physical_cores=cores,
        calibration=calibration,
    )
    runtime.register(device)
    mapped = {i.name for c in region.maps for i in c.items}
    densities = {name: density for name in mapped}
    report = offload(
        region,
        scalars=scalars,
        runtime=runtime,
        densities=densities,
        mode=ExecutionMode.MODELED,
    )
    seq = ComputeModel(calibration).sequential_time(_total_flops(spec, actual_size))
    return ExperimentPoint(
        workload=workload, cores=cores, density=density, report=report, sequential_s=seq
    )


@lru_cache(maxsize=4096)
def _cached_point(workload: str, cores: int, density: float, size: int | None) -> ExperimentPoint:
    return run_point(workload, cores, density, size=size)


# ------------------------------------------------------------------ Figure 4
@dataclass(frozen=True)
class Figure4Row:
    """One x-position of one Figure-4 panel."""

    workload: str
    cores: int
    omp_thread: float | None  # only defined for 8 and 16 cores
    cloud_full: float
    cloud_spark: float
    cloud_computation: float


def figure4_series(workload: str, cores: tuple[int, ...] = CORE_SWEEP,
                   size: int | None = None) -> list[Figure4Row]:
    """The four series of one Figure-4 panel (dense/sparse averaged)."""
    spec = WORKLOADS[workload]
    region = spec.build_region()
    cm = ComputeModel()
    rows = []
    for c in cores:
        pts = [_cached_point(workload, c, d, size) for d in (DENSE, SPARSE)]
        thread = (
            cm.omp_thread_speedup(c, region.memory_intensity) if c in THREAD_SWEEP else None
        )
        rows.append(
            Figure4Row(
                workload=workload,
                cores=c,
                omp_thread=thread,
                cloud_full=sum(p.speedup_full for p in pts) / len(pts),
                cloud_spark=sum(p.speedup_spark for p in pts) / len(pts),
                cloud_computation=sum(p.speedup_computation for p in pts) / len(pts),
            )
        )
    return rows


# ------------------------------------------------------------------ Figure 5
@dataclass(frozen=True)
class Figure5Row:
    """One stacked bar of one Figure-5 panel."""

    workload: str
    cores: int
    density_label: str
    host_comm_s: float
    spark_overhead_s: float
    computation_s: float

    @property
    def total_s(self) -> float:
        return self.host_comm_s + self.spark_overhead_s + self.computation_s


def figure5_series(workload: str, cores: tuple[int, ...] = CORE_SWEEP,
                   size: int | None = None) -> list[Figure5Row]:
    """All stacked bars of one Figure-5 panel (dense and sparse)."""
    rows = []
    for density, label in ((SPARSE, "sparse"), (DENSE, "dense")):
        for c in cores:
            p = _cached_point(workload, c, density, size)
            rows.append(
                Figure5Row(
                    workload=workload,
                    cores=c,
                    density_label=label,
                    host_comm_s=p.report.host_comm_s,
                    spark_overhead_s=p.report.spark_overhead_s,
                    computation_s=p.report.computation_s,
                )
            )
    return rows


# ------------------------------------------------------- Section IV numbers
def headline_numbers(size: int | None = None) -> dict[str, float]:
    """The quotable numbers of Section IV, from the same experiment grid.

    Keys:
      overhead_computation_16 / overhead_spark_16 / overhead_full_16 —
        average relative overhead of OmpCloud vs 16-thread OpenMP on one
        worker (paper: 1.8 % / 8.8 % / 13.6 %);
      syrk_overhead_8 / syrk_overhead_256 — SYRK spark-vs-computation gap
        (paper: 17 % -> 69 %);
      collinear_overhead_8 / collinear_overhead_256 — (paper: 0.1 % -> 15 %);
      s3mm_{computation,spark,full}_256 — 3MM speedups (paper: 143/97/86);
      runtime_8_min / runtime_8_max — 8-core full-run band in minutes
        (paper: ~10 min to ~1 h 30).
    """
    cm = ComputeModel()
    comp_ovh, spark_ovh, full_ovh = [], [], []
    for name, spec in WORKLOADS.items():
        region = spec.build_region()
        intensity = region.memory_intensity
        pt = _cached_point(name, 16, DENSE, size)
        flops = _total_flops(spec, size if size is not None else spec.paper_size)
        t_thread = cm.omp_thread_time(flops, 16, intensity)
        comp_ovh.append(1.0 - t_thread / pt.report.computation_s)
        spark_ovh.append(1.0 - t_thread / pt.report.spark_job_s)
        full_ovh.append(1.0 - t_thread / pt.report.full_s)

    syrk8 = _cached_point("syrk", 8, DENSE, size)
    syrk256 = _cached_point("syrk", 256, DENSE, size)
    col8 = _cached_point("collinear", 8, DENSE, size)
    col256 = _cached_point("collinear", 256, DENSE, size)
    mm3_256 = [_cached_point("3mm", 256, d, size) for d in (DENSE, SPARSE)]
    mm2_256 = [_cached_point("2mm", 256, d, size) for d in (DENSE, SPARSE)]

    full8 = [_cached_point(n, 8, DENSE, size).report.full_s for n in WORKLOADS]
    return {
        "overhead_computation_16": sum(comp_ovh) / len(comp_ovh),
        "overhead_spark_16": sum(spark_ovh) / len(spark_ovh),
        "overhead_full_16": sum(full_ovh) / len(full_ovh),
        "syrk_overhead_8": syrk8.spark_overhead_share,
        "syrk_overhead_256": syrk256.spark_overhead_share,
        "collinear_overhead_8": col8.spark_overhead_share,
        "collinear_overhead_256": col256.spark_overhead_share,
        "s3mm_computation_256": sum(p.speedup_computation for p in mm3_256) / 2,
        "s3mm_spark_256": sum(p.speedup_spark for p in mm3_256) / 2,
        "s3mm_full_256": sum(p.speedup_full for p in mm3_256) / 2,
        "s2mm_full_256": sum(p.speedup_full for p in mm2_256) / 2,
        "runtime_8_min": min(full8) / 60.0,
        "runtime_8_max": max(full8) / 60.0,
    }
