"""Plain-text table rendering for bench output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Floats are shown with 2 decimals, None as '-'.
    """

    def cell(v: object) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for j, v in enumerate(row):
            widths[j] = max(widths[j], len(v))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(x: float) -> str:
    return f"{100.0 * x:.1f}%"
