"""Amazon EC2 simulator with the 2017-era c3/c4/m4 instance catalog.

The paper's cluster is 1 driver + 16 workers of type **c3.8xlarge** (32 vCPU
on Intel Xeon E5-2680 v2, 60 GB RAM); prices below are the 2017 us-east-1
on-demand rates, which the billing examples reproduce.
"""

from __future__ import annotations

from repro.cloud.credentials import Credentials
from repro.cloud.provider import CloudProvider, InstanceType, ProviderError

#: 2017 us-east-1 on-demand catalog (subset relevant to Spark clusters).
EC2_INSTANCE_TYPES: dict[str, InstanceType] = {
    t.name: t
    for t in (
        InstanceType("c3.xlarge", vcpus=4, ram_gb=7.5, hourly_usd=0.210),
        InstanceType("c3.2xlarge", vcpus=8, ram_gb=15.0, hourly_usd=0.420),
        InstanceType("c3.4xlarge", vcpus=16, ram_gb=30.0, hourly_usd=0.840),
        InstanceType("c3.8xlarge", vcpus=32, ram_gb=60.0, hourly_usd=1.680),
        InstanceType("c4.8xlarge", vcpus=36, ram_gb=60.0, hourly_usd=1.591),
        InstanceType("m4.4xlarge", vcpus=16, ram_gb=64.0, hourly_usd=0.800),
        InstanceType("m4.10xlarge", vcpus=40, ram_gb=160.0, hourly_usd=2.000),
    )
}


class EC2Provider(CloudProvider):
    """EC2 with region-scoped capacity limits and the c3/c4/m4 catalog."""

    boot_delay_s = 60.0  # Ubuntu 14.04 AMI boot + Spark daemons, as in cgcloud
    stop_delay_s = 25.0

    def __init__(
        self,
        credentials: Credentials | None = None,
        region: str = "us-east-1",
        instance_limit: int = 64,
    ) -> None:
        super().__init__(credentials=credentials)
        self.region = region
        self.instance_limit = instance_limit

    @property
    def kind(self) -> str:
        return "ec2"

    def instance_type(self, name: str) -> InstanceType:
        try:
            return EC2_INSTANCE_TYPES[name]
        except KeyError:
            raise ProviderError(
                f"EC2 {self.region}: unknown instance type {name!r}; "
                f"known: {sorted(EC2_INSTANCE_TYPES)}"
            ) from None

    def launch(self, type_name, now, count=1, tags=None):  # type: ignore[override]
        active = [i for i in self.instances() if i.state.value not in ("terminated",)]
        if len(active) + count > self.instance_limit:
            raise ProviderError(
                f"EC2 {self.region}: instance limit {self.instance_limit} exceeded "
                f"({len(active)} active, {count} requested)"
            )
        return super().launch(type_name, now, count=count, tags=tags)
