"""SSH channel simulator.

OmpCloud submits Spark jobs "through SSH connection" to the driver node.  The
simulator models connection hand-shake latency, command execution against a
registered handler (the driver's ``spark-submit``), and the failure modes the
plugin must survive: unreachable host, authentication rejection, non-zero
remote exit status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.credentials import Credentials
from repro.obs.events import SSHConnect, get_bus


class SSHError(Exception):
    """Connection-level SSH failure (unreachable, auth rejected)."""


@dataclass
class CommandResult:
    """Outcome of one remote command."""

    command: str
    exit_status: int
    stdout: str = ""
    stderr: str = ""

    @property
    def ok(self) -> bool:
        return self.exit_status == 0


CommandHandler = Callable[[str], CommandResult]


class SSHEndpoint:
    """A host that accepts SSH connections and executes commands."""

    def __init__(
        self,
        hostname: str,
        authorized_users: set[str] | None = None,
        reachable: bool = True,
    ) -> None:
        self.hostname = hostname
        self.authorized_users = authorized_users if authorized_users is not None else set()
        self.reachable = reachable
        self._handlers: list[tuple[str, CommandHandler]] = []

    def register_handler(self, prefix: str, handler: CommandHandler) -> None:
        """Commands starting with ``prefix`` are dispatched to ``handler``.

        Re-registering a prefix replaces the old handler — the host that
        serves ``spark-submit`` serves whatever job was installed last.
        """
        for i, (p, _) in enumerate(self._handlers):
            if p == prefix:
                self._handlers[i] = (prefix, handler)
                return
        self._handlers.append((prefix, handler))

    def dispatch(self, command: str) -> CommandResult:
        for prefix, handler in self._handlers:
            if command.startswith(prefix):
                return handler(command)
        return CommandResult(
            command=command, exit_status=127, stderr=f"{command.split()[0]}: command not found"
        )


class SSHClient:
    """Client side of the channel, used by the cloud plugin."""

    #: TCP + key exchange + auth, charged to simulated time per connection.
    handshake_s = 0.35

    def __init__(self, endpoint: SSHEndpoint, credentials: Credentials) -> None:
        self._endpoint = endpoint
        self._credentials = credentials
        self._connected = False
        self.commands_run: list[CommandResult] = []

    def connect(self) -> float:
        """Establish the session; returns the simulated handshake duration."""
        host = self._endpoint.hostname
        user = self._credentials.username
        try:
            if not self._endpoint.reachable:
                raise SSHError(f"ssh: connect to host {host}: no route to host")
            if self._endpoint.authorized_users and user not in self._endpoint.authorized_users:
                raise SSHError(
                    f"ssh: {user}@{host}: Permission denied (publickey)"
                )
        except SSHError as exc:
            get_bus().emit(SSHConnect(resource=host, host=host, user=user,
                                      ok=False, error=str(exc)))
            raise
        self._connected = True
        get_bus().emit(SSHConnect(resource=host, host=host, user=user, ok=True))
        return self.handshake_s

    def exec_command(self, command: str) -> CommandResult:
        """Run a remote command; requires a prior :meth:`connect`."""
        if not self._connected:
            raise SSHError("exec_command on a closed SSH session")
        result = self._endpoint.dispatch(command)
        self.commands_run.append(result)
        return result

    def close(self) -> None:
        self._connected = False

    def __enter__(self) -> "SSHClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def is_connected(self) -> bool:
        return self._connected
