"""Amazon S3 simulator.

Adds the S3-isms the OmpCloud plugin interacts with: buckets with naming
rules, ``s3://bucket/key`` addressing, and multipart upload for large objects
(the real plugin streams gzip output in parts).  Authentication follows the
AWS credential shape checked by :class:`repro.cloud.credentials.Credentials`.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

from repro.cloud.credentials import CredentialError, Credentials
from repro.cloud.storage import AccessDeniedError, ObjectStore, StorageError

_BUCKET_RE = re.compile(r"^[a-z0-9][a-z0-9.-]{1,61}[a-z0-9]$")

#: S3's multipart threshold: parts other than the last must be >= 5 MiB.
MIN_PART_SIZE = 5 * 1024 * 1024


def parse_s3_uri(uri: str) -> tuple[str, str]:
    """Split ``s3://bucket/key`` into (bucket, key)."""
    if not uri.startswith("s3://"):
        raise ValueError(f"not an s3 uri: {uri!r}")
    rest = uri[len("s3://") :]
    bucket, _, key = rest.partition("/")
    if not bucket:
        raise ValueError(f"missing bucket in s3 uri {uri!r}")
    return bucket, key


@dataclass
class MultipartUpload:
    """In-flight multipart upload state."""

    upload_id: str
    key: str
    parts: dict[int, bytes] = field(default_factory=dict)

    def assembled(self) -> bytes:
        if not self.parts:
            raise StorageError(f"multipart upload {self.upload_id} has no parts")
        numbers = sorted(self.parts)
        if numbers != list(range(1, len(numbers) + 1)):
            raise StorageError(
                f"multipart upload {self.upload_id}: non-contiguous part numbers {numbers}"
            )
        for n in numbers[:-1]:
            if len(self.parts[n]) < MIN_PART_SIZE:
                raise StorageError(
                    f"multipart part {n} is {len(self.parts[n])} bytes; "
                    f"S3 requires >= {MIN_PART_SIZE} for all but the last part"
                )
        return b"".join(self.parts[n] for n in numbers)


class S3Store(ObjectStore):
    """One S3 bucket.

    S3's first-byte latency is higher than HDFS's but sustained throughput
    from EC2 is excellent; the defaults reflect that.
    """

    cluster_read_bps = 500e6
    cluster_write_bps = 350e6
    request_latency_s = 0.050

    def __init__(self, bucket: str, credentials: Credentials | None = None) -> None:
        if not _BUCKET_RE.match(bucket) or ".." in bucket:
            raise ValueError(f"invalid S3 bucket name {bucket!r}")
        super().__init__(name=f"s3://{bucket}", credentials=credentials)
        self.bucket = bucket
        self._uploads: dict[str, MultipartUpload] = {}
        self._upload_seq = 0
        self._mp_lock = threading.Lock()

    def check_access(self, credentials: Credentials | None) -> None:
        if credentials is None:
            raise AccessDeniedError(f"{self.name}: S3 requires AWS credentials")
        try:
            credentials.validated_for("aws")
        except CredentialError as e:
            raise AccessDeniedError(f"{self.name}: {e}") from e

    def uri_for(self, key: str) -> str:
        return f"s3://{self.bucket}/{key}"

    # -------------------------------------------------------------- multipart
    def initiate_multipart(self, key: str, credentials: Credentials | None = None) -> str:
        self._authorize(credentials)
        with self._mp_lock:
            self._upload_seq += 1
            upload_id = f"mpu-{self._upload_seq:06d}"
            self._uploads[upload_id] = MultipartUpload(upload_id=upload_id, key=key)
        return upload_id

    def upload_part(
        self,
        upload_id: str,
        part_number: int,
        data: bytes,
        credentials: Credentials | None = None,
    ) -> None:
        self._authorize(credentials)
        if part_number < 1 or part_number > 10_000:
            raise ValueError(f"part number must be in [1, 10000], got {part_number}")
        with self._mp_lock:
            try:
                upload = self._uploads[upload_id]
            except KeyError:
                raise StorageError(f"unknown multipart upload {upload_id!r}") from None
            upload.parts[part_number] = data

    def complete_multipart(self, upload_id: str, credentials: Credentials | None = None) -> None:
        self._authorize(credentials)
        with self._mp_lock:
            try:
                upload = self._uploads.pop(upload_id)
            except KeyError:
                raise StorageError(f"unknown multipart upload {upload_id!r}") from None
        self.put(upload.key, data=upload.assembled(), credentials=credentials)

    def abort_multipart(self, upload_id: str, credentials: Credentials | None = None) -> None:
        self._authorize(credentials)
        with self._mp_lock:
            self._uploads.pop(upload_id, None)
