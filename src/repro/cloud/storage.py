"""Abstract cloud object storage.

The OmpCloud plugin moves mapped buffers as *binary files* through a cloud
file storage — AWS S3, any HDFS server, or Azure Storage.  The simulated
stores hold either real ``bytes`` (functional mode) or just an object size
(modeled mode, where a 1 GB matrix would not fit in test memory); both paths
share the same bookkeeping so the cost models see identical traffic.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cloud.credentials import Credentials
from repro.obs.events import CorruptionDetected, StorageOp, get_bus
from repro.resilience.integrity import content_checksum, virtual_checksum


class StorageError(Exception):
    """Base error for object-store operations."""


class NoSuchObjectError(StorageError):
    """GET/DELETE of a key that does not exist."""


class TransientStorageError(StorageError):
    """A retryable service hiccup (throttling, 5xx, connection reset).

    Real S3/HDFS clients see these routinely; the plugin retries with
    backoff.  Tests inject them via :meth:`ObjectStore.inject_failures`."""


class CorruptObjectError(TransientStorageError):
    """A read failed end-to-end checksum verification.

    Subclasses :class:`TransientStorageError` deliberately: a corrupt read
    is billed like any other read and re-fetched under the caller's bounded
    retry policy; if every attempt returns a corrupt object the policy
    exhausts and the error escalates like any persistent storage failure."""


class AccessDeniedError(StorageError):
    """Operation attempted with missing or invalid credentials."""


@dataclass
class StoredObject:
    """One object in a store.

    ``data is None`` marks a *virtual* object: it has a size (for the cost
    models) but no materialized payload.  Reading a virtual object's bytes is
    an error; reading its size is always fine.  ``checksum`` is stamped by
    :meth:`ObjectStore.put` and verified by every :meth:`ObjectStore.get`.
    """

    key: str
    size: int
    data: Optional[bytes] = None
    checksum: str = ""

    @property
    def is_virtual(self) -> bool:
        return self.data is None


class ObjectStore(abc.ABC):
    """Key -> object storage with flat namespaces.

    Thread-safe: the cloud plugin uploads buffers from one thread per buffer,
    exactly as the paper's runtime does.
    """

    #: Sustained single-object throughput seen from inside the cluster, B/s.
    cluster_read_bps: float = 400e6
    cluster_write_bps: float = 300e6
    #: Per-request overhead (metadata round trip), seconds.
    request_latency_s: float = 0.020

    def __init__(self, name: str, credentials: Credentials | None = None) -> None:
        self.name = name
        self._objects: dict[str, StoredObject] = {}
        self._lock = threading.Lock()
        self._credentials = credentials
        self.bytes_written = 0
        self.bytes_read = 0
        self.put_count = 0
        self.get_count = 0
        self._fail_puts = 0
        self._fail_gets = 0
        self._fail_metas = 0
        self._corrupt_keys: dict[str, int] = {}
        self.corruption_count = 0
        #: Optional simulated clock for event timestamps; the cloud plugin
        #: wires its own clock in so StorageOp events line up with the run.
        self.clock = None

    def _emit_op(self, op: str, key: str, nbytes: int = 0) -> None:
        """Publish one completed operation (called outside :attr:`_lock` —
        subscribers may be arbitrary code and must not deadlock us)."""
        get_bus().emit(StorageOp(
            time=self.clock.now if self.clock is not None else 0.0,
            resource=self.name, store=self.name, op=op, key=key,
            nbytes=nbytes,
        ))

    # -------------------------------------------------------------- security
    @abc.abstractmethod
    def check_access(self, credentials: Credentials | None) -> None:
        """Raise :class:`AccessDeniedError` unless ``credentials`` suffice."""

    def _authorize(self, credentials: Credentials | None) -> None:
        self.check_access(credentials if credentials is not None else self._credentials)

    # ------------------------------------------------------------------- API
    def put(
        self,
        key: str,
        data: bytes | memoryview | None = None,
        size: int | None = None,
        credentials: Credentials | None = None,
    ) -> StoredObject:
        """Store an object.  Pass ``data`` for a real object, ``size`` for a
        virtual one (exactly one of the two must be given).

        ``data`` may be any bytes-like object — callers hand in zero-copy
        views of live host arrays.  The store materialises its own copy
        here (the one semantically required copy: the payload "crossed the
        wire"), so a stored object never aliases caller memory and later
        host writes cannot corrupt it."""
        self._authorize(credentials)
        if (data is None) == (size is None):
            raise ValueError("provide exactly one of data= or size=")
        if data is not None and not isinstance(data, bytes):
            data = bytes(data)
        nbytes = len(data) if data is not None else int(size or 0)
        digest = (content_checksum(data) if data is not None
                  else virtual_checksum(key, nbytes))
        obj = StoredObject(key=key, size=nbytes, data=data, checksum=digest)
        if obj.size < 0:
            raise ValueError(f"negative object size {obj.size}")
        with self._lock:
            if self._fail_puts > 0:
                self._fail_puts -= 1
                raise TransientStorageError(
                    f"{self.name}: transient PUT failure (injected)"
                )
            self._objects[key] = obj
            self.bytes_written += obj.size
            self.put_count += 1
        self._emit_op("PUT", key, obj.size)
        return obj

    def get(self, key: str, credentials: Credentials | None = None) -> StoredObject:
        """Fetch the object record (payload included for real objects).

        Every read is verified end to end: the payload's checksum (or, for
        virtual objects, an armed corruption injection) is compared against
        the digest stamped at write time.  A mismatch is *billed like a
        successful read* — the bytes crossed the wire before the client
        could notice — and raises :class:`CorruptObjectError` for the
        caller's retry policy to repair or escalate."""
        self._authorize(credentials)
        with self._lock:
            if self._fail_gets > 0:
                self._fail_gets -= 1
                raise TransientStorageError(
                    f"{self.name}: transient GET failure (injected)"
                )
            try:
                obj = self._objects[key]
            except KeyError:
                raise NoSuchObjectError(f"{self.name}: no object {key!r}") from None
            self.bytes_read += obj.size
            self.get_count += 1
            corrupted = self._consume_corruption(key)
            actual = obj.checksum
            if corrupted:
                actual = "corrupt:injected"
            elif obj.data is not None and obj.checksum:
                actual = content_checksum(obj.data)
            mismatch = actual != obj.checksum
            if mismatch:
                self.corruption_count += 1
        self._emit_op("GET", key, obj.size)
        if mismatch:
            get_bus().emit(CorruptionDetected(
                time=self.clock.now if self.clock is not None else 0.0,
                resource=self.name, store=self.name, op="GET", key=key,
                expected=obj.checksum, actual=actual,
            ))
            raise CorruptObjectError(
                f"{self.name}: object {key!r} failed checksum verification "
                f"(expected {obj.checksum}, read {actual})"
            )
        return obj

    def get_bytes(self, key: str, credentials: Credentials | None = None) -> bytes:
        """Fetch the payload of a real object; error on virtual objects."""
        obj = self.get(key, credentials)
        if obj.data is None:
            raise StorageError(
                f"{self.name}: object {key!r} is virtual (size-only); no payload to read"
            )
        return obj.data

    def size_of(self, key: str) -> int:
        with self._lock:
            self._maybe_fail_meta("HEAD")
            try:
                size = self._objects[key].size
            except KeyError:
                raise NoSuchObjectError(f"{self.name}: no object {key!r}") from None
        self._emit_op("HEAD", key, size)
        return size

    def exists(self, key: str) -> bool:
        with self._lock:
            self._maybe_fail_meta("EXISTS")
            found = key in self._objects
        self._emit_op("EXISTS", key)
        return found

    def checksum_of(self, key: str) -> str:
        """The checksum stamped at write time (a metadata round trip, like
        ``size_of`` — real stores expose this as an ETag/content-MD5 HEAD)."""
        with self._lock:
            self._maybe_fail_meta("CHECKSUM")
            try:
                digest = self._objects[key].checksum
            except KeyError:
                raise NoSuchObjectError(f"{self.name}: no object {key!r}") from None
        self._emit_op("CHECKSUM", key)
        return digest

    def _maybe_fail_meta(self, op: str) -> None:
        """Consume one armed metadata failure (caller holds the lock)."""
        if self._fail_metas > 0:
            self._fail_metas -= 1
            raise TransientStorageError(
                f"{self.name}: transient {op} failure (injected)"
            )

    def delete(self, key: str, credentials: Credentials | None = None) -> None:
        self._authorize(credentials)
        with self._lock:
            if key not in self._objects:
                raise NoSuchObjectError(f"{self.name}: no object {key!r}")
            del self._objects[key]

    def list_keys(self, prefix: str = "") -> Iterator[str]:
        with self._lock:
            keys = sorted(k for k in self._objects if k.startswith(prefix))
        return iter(keys)

    def clear(self) -> None:
        with self._lock:
            self._objects.clear()

    def total_bytes_stored(self) -> int:
        with self._lock:
            return sum(o.size for o in self._objects.values())

    def inject_failures(self, puts: int = 0, gets: int = 0, metas: int = 0) -> None:
        """Arm the next ``puts``/``gets``/``metas`` operations to fail
        transiently (``metas`` covers the metadata ops ``size_of``/``exists``)."""
        if puts < 0 or gets < 0 or metas < 0:
            raise ValueError("failure counts must be non-negative")
        with self._lock:
            self._fail_puts += puts
            self._fail_gets += gets
            self._fail_metas += metas

    def arm_corruption(self, key_substring: str, count: int = 1) -> None:
        """Arm the next ``count`` GETs of keys containing ``key_substring``
        to return corrupt data (checksum mismatch).  Deterministic fault
        injection for :attr:`~repro.spark.faults.FaultPlan.corrupt_keys`."""
        if count < 0:
            raise ValueError("corruption count must be non-negative")
        if not key_substring:
            raise ValueError("key_substring must be non-empty")
        with self._lock:
            self._corrupt_keys[key_substring] = (
                self._corrupt_keys.get(key_substring, 0) + count)

    def _consume_corruption(self, key: str) -> bool:
        """Consume one armed corruption matching ``key`` (lock held)."""
        for sub, left in self._corrupt_keys.items():
            if left > 0 and sub in key:
                self._corrupt_keys[sub] = left - 1
                return True
        return False

    # ---------------------------------------------------------- cost queries
    def cluster_read_time(self, nbytes: int) -> float:
        """Seconds for a cluster node to read ``nbytes`` from this store."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        return self.request_latency_s + nbytes / self.cluster_read_bps

    def cluster_write_time(self, nbytes: int) -> float:
        """Seconds for a cluster node to write ``nbytes`` to this store."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        return self.request_latency_s + nbytes / self.cluster_write_bps
