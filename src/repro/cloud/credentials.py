"""Credential records for cloud services.

The paper notes that, unlike GPUs, "cloud devices cannot be detected
automatically ... the user has to provide an identification/authentication
information" through the configuration file.  This module models those
credentials and their validation; the simulated providers check them so that
mis-configured runs fail the same way a real run would (authentication error
before any data moves).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class CredentialError(Exception):
    """Raised when credentials are missing or malformed."""


_AWS_KEY_ID_RE = re.compile(r"^AKIA[0-9A-Z]{12,20}$")


@dataclass(frozen=True)
class Credentials:
    """Authentication material for one cloud service.

    Which fields matter depends on the provider: AWS uses
    ``access_key_id``/``secret_key``, Azure a ``username``/``secret_key`` pair,
    a private cluster just ``username`` + ``ssh_key_path``.
    """

    provider: str
    username: str = ""
    access_key_id: str = ""
    secret_key: str = ""
    ssh_key_path: str = ""
    region: str = "us-east-1"
    extra: dict[str, str] = field(default_factory=dict)

    def validated_for(self, provider_kind: str) -> "Credentials":
        """Check that this record satisfies ``provider_kind``'s requirements.

        Returns ``self`` on success so calls can be chained; raises
        :class:`CredentialError` otherwise.
        """
        kind = provider_kind.lower()
        if kind in ("aws", "ec2"):
            if not self.access_key_id or not self.secret_key:
                raise CredentialError(
                    "AWS offloading requires both an access key id and a secret key"
                )
            if not _AWS_KEY_ID_RE.match(self.access_key_id):
                raise CredentialError(
                    f"malformed AWS access key id {self.access_key_id!r} "
                    "(expected AKIA followed by 12-20 uppercase alphanumerics)"
                )
        elif kind in ("azure", "hdinsight"):
            if not self.username or not self.secret_key:
                raise CredentialError(
                    "Azure HDInsight offloading requires a username and a key"
                )
        elif kind in ("private", "local"):
            if not self.username:
                raise CredentialError("private-cloud offloading requires a username")
        else:
            raise CredentialError(f"unknown provider kind {provider_kind!r}")
        return self

    def redacted(self) -> dict[str, str]:
        """A loggable view with secrets masked."""

        def mask(s: str) -> str:
            if not s:
                return ""
            return s[:4] + "*" * max(0, len(s) - 4)

        return {
            "provider": self.provider,
            "username": self.username,
            "access_key_id": mask(self.access_key_id),
            "secret_key": mask(self.secret_key),
            "region": self.region,
        }
