"""Private-cloud provider: a fixed rack of already-owned machines.

The paper supports "Spark clusters running within a private cloud".  Machines
are free (already paid for), boot instantly (they are up), and the catalog is
whatever the operator says the rack contains.
"""

from __future__ import annotations

from repro.cloud.credentials import Credentials
from repro.cloud.provider import CloudProvider, InstanceType, ProviderError


class PrivateCloudProvider(CloudProvider):
    """A fixed inventory of zero-cost machines."""

    boot_delay_s = 0.0
    stop_delay_s = 0.0

    def __init__(
        self,
        credentials: Credentials | None = None,
        machine: InstanceType | None = None,
        machine_count: int = 8,
    ) -> None:
        super().__init__(credentials=credentials)
        self.machine = machine or InstanceType(
            "rack-node", vcpus=16, ram_gb=32.0, hourly_usd=0.0
        )
        self.machine_count = machine_count

    @property
    def kind(self) -> str:
        return "private"

    def instance_type(self, name: str) -> InstanceType:
        if name != self.machine.name:
            raise ProviderError(
                f"private cloud only has {self.machine.name!r} machines, asked for {name!r}"
            )
        return self.machine

    def launch(self, type_name, now, count=1, tags=None):  # type: ignore[override]
        in_use = len([i for i in self.instances() if i.state.value != "terminated"])
        if in_use + count > self.machine_count:
            raise ProviderError(
                f"private cloud has {self.machine_count} machines; "
                f"{in_use} in use, {count} requested"
            )
        return super().launch(type_name, now, count=count, tags=tags)
