"""HDFS simulator: namenode metadata + block placement + replication.

The paper supports "any HDFS server" as the staging storage.  The pieces of
HDFS that matter to OmpCloud's cost profile are modelled: files are split into
fixed-size blocks, each block is replicated onto ``replication`` distinct
datanodes, and reads are served from whichever replica is local when possible
(the driver co-located with a datanode reads at local-disk speed).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cloud.credentials import Credentials
from repro.cloud.storage import AccessDeniedError, NoSuchObjectError, ObjectStore

DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024


@dataclass(frozen=True)
class BlockLocation:
    """One replica of one block."""

    block_id: int
    datanode: str
    length: int


@dataclass
class FileMeta:
    """Namenode record for one file."""

    path: str
    size: int
    blocks: list[BlockLocation] = field(default_factory=list)

    def block_count(self) -> int:
        seen = {b.block_id for b in self.blocks}
        return len(seen)


class HDFSStore(ObjectStore):
    """An HDFS namespace backed by ``datanodes`` simulated datanodes.

    Objects are stored via the common :class:`ObjectStore` machinery; on top,
    the namenode tracks per-file block placement so locality-aware readers can
    ask :meth:`locations` and the tests can verify the replication invariant
    (every block on ``min(replication, n_datanodes)`` distinct nodes).
    """

    cluster_read_bps = 700e6  # local replica reads are fast
    cluster_write_bps = 250e6  # pipeline writes pay the replication factor
    request_latency_s = 0.005

    def __init__(
        self,
        name: str = "hdfs://namenode:9000",
        datanodes: int = 4,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
        credentials: Credentials | None = None,
    ) -> None:
        if datanodes < 1:
            raise ValueError(f"need at least one datanode, got {datanodes}")
        if block_size < 1:
            raise ValueError(f"block size must be positive, got {block_size}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        super().__init__(name=name, credentials=credentials)
        self.datanode_names = [f"datanode-{i}" for i in range(datanodes)]
        self.block_size = block_size
        self.replication = replication
        self._meta: dict[str, FileMeta] = {}
        self._block_ids = itertools.count()
        self._rr = 0  # round-robin cursor for primary placement

    def check_access(self, credentials: Credentials | None) -> None:
        # HDFS inside a private cluster uses simple auth: any username works,
        # no username does not.
        if credentials is None or not credentials.username:
            raise AccessDeniedError(f"{self.name}: HDFS simple auth requires a username")

    # ----------------------------------------------------------- namenode ops
    def put(self, key, data=None, size=None, credentials=None):  # type: ignore[override]
        obj = super().put(key, data=data, size=size, credentials=credentials)
        self._meta[key] = self._place_blocks(key, obj.size)
        return obj

    def delete(self, key, credentials=None):  # type: ignore[override]
        super().delete(key, credentials=credentials)
        self._meta.pop(key, None)

    def _place_blocks(self, path: str, size: int) -> FileMeta:
        meta = FileMeta(path=path, size=size)
        n_nodes = len(self.datanode_names)
        reps = min(self.replication, n_nodes)
        remaining = size
        while remaining > 0 or (size == 0 and not meta.blocks):
            length = min(self.block_size, remaining) if size > 0 else 0
            block_id = next(self._block_ids)
            # Primary replica round-robins; the rest go to the next nodes,
            # mirroring HDFS's rack-unaware default placement.
            for r in range(reps):
                node = self.datanode_names[(self._rr + r) % n_nodes]
                meta.blocks.append(BlockLocation(block_id=block_id, datanode=node, length=length))
            self._rr = (self._rr + 1) % n_nodes
            remaining -= length
            if size == 0:
                break
        return meta

    def locations(self, path: str) -> FileMeta:
        """Namenode lookup: block placement of ``path``."""
        try:
            return self._meta[path]
        except KeyError:
            raise NoSuchObjectError(f"{self.name}: no file {path!r}") from None

    def read_time_from(self, path: str, reader_node: str) -> float:
        """Seconds for ``reader_node`` to read the file, exploiting locality.

        Blocks with a replica on the reader move at local speed; the rest pay
        a remote (intra-cluster network-bound) penalty.
        """
        meta = self.locations(path)
        local_bps = self.cluster_read_bps
        remote_bps = self.cluster_read_bps / 2.0
        t = self.request_latency_s
        seen: set[int] = set()
        for b in meta.blocks:
            if b.block_id in seen:
                continue
            replicas = [x for x in meta.blocks if x.block_id == b.block_id]
            local = any(x.datanode == reader_node for x in replicas)
            t += b.length / (local_bps if local else remote_bps)
            seen.add(b.block_id)
        return t

    def datanode_usage(self) -> dict[str, int]:
        """Bytes of block replicas per datanode (balance diagnostics)."""
        usage = {n: 0 for n in self.datanode_names}
        for meta in self._meta.values():
            for b in meta.blocks:
                usage[b.datanode] += b.length
        return usage
