"""Pay-as-you-go cost accounting.

One of the paper's selling points is that starting/stopping instances around
each offload lets the programmer "pay for just the amount of computational
resources used"; the ledger makes that claim measurable in the examples and
ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LineItem:
    """One billed charge."""

    sku: str
    quantity: float
    unit_usd: float
    note: str = ""

    @property
    def total_usd(self) -> float:
        return self.quantity * self.unit_usd


@dataclass
class BillingLedger:
    """Append-only list of charges with roll-up queries."""

    items: list[LineItem] = field(default_factory=list)

    def charge(self, sku: str, quantity: float, unit_usd: float, note: str = "") -> LineItem:
        if quantity < 0:
            raise ValueError(f"negative quantity {quantity!r}")
        if unit_usd < 0:
            raise ValueError(f"negative unit price {unit_usd!r}")
        item = LineItem(sku=sku, quantity=quantity, unit_usd=unit_usd, note=note)
        self.items.append(item)
        return item

    def total_usd(self) -> float:
        return sum(i.total_usd for i in self.items)

    def by_sku(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for i in self.items:
            out[i.sku] = out.get(i.sku, 0.0) + i.total_usd
        return out

    def merged_with(self, other: "BillingLedger") -> "BillingLedger":
        return BillingLedger(items=self.items + other.items)

    def summary(self) -> str:
        """Human-readable invoice."""
        lines = [f"{'sku':<16} {'qty':>8} {'unit $':>8} {'total $':>10}"]
        for sku, total in sorted(self.by_sku().items()):
            qty = sum(i.quantity for i in self.items if i.sku == sku)
            unit = next(i.unit_usd for i in self.items if i.sku == sku)
            lines.append(f"{sku:<16} {qty:>8.1f} {unit:>8.3f} {total:>10.2f}")
        lines.append(f"{'TOTAL':<34} {self.total_usd():>10.2f}")
        return "\n".join(lines)
