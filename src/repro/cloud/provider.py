"""Abstract cloud compute provider: instance types, lifecycle, billing hooks.

The OmpCloud plugin can "(on-the-fly) start and stop virtual machines from the
EC2 service ... the EC2 instance can be started when offloading the code and
stopped after it ends its execution", so the lifecycle state machine — with
realistic boot/stop delays charged to simulated time — is a first-class part
of the substrate, as is per-hour billing.
"""

from __future__ import annotations

import abc
import enum
import itertools
from dataclasses import dataclass, field

from repro.cloud.billing import BillingLedger
from repro.cloud.credentials import Credentials


class ProviderError(Exception):
    """Lifecycle or capacity errors from a compute provider."""


class InstanceState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"
    TERMINATED = "terminated"


@dataclass(frozen=True)
class InstanceType:
    """A purchasable machine shape.

    ``vcpus`` counts hyper-threads; ``physical_cores`` counts dedicated cores
    (the paper: "each EC2 vCPU corresponds to one hyper-threaded core ...
    1 dedicated CPU core corresponds 2 vCPUs").
    """

    name: str
    vcpus: int
    ram_gb: float
    hourly_usd: float
    network_gbps: float = 10.0

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError(f"instance type needs >= 1 vCPU, got {self.vcpus}")
        if self.vcpus % 2:
            raise ValueError(f"vCPUs come in hyper-thread pairs, got {self.vcpus}")

    @property
    def physical_cores(self) -> int:
        return self.vcpus // 2


@dataclass
class Instance:
    """One virtual machine."""

    instance_id: str
    itype: InstanceType
    state: InstanceState = InstanceState.PENDING
    launched_at: float = 0.0
    running_since: float | None = None
    billed_hours: float = 0.0
    tags: dict[str, str] = field(default_factory=dict)

    @property
    def is_usable(self) -> bool:
        return self.state == InstanceState.RUNNING


class CloudProvider(abc.ABC):
    """Base class for EC2 / Azure / private-cloud simulators."""

    #: Seconds of simulated time an instance spends PENDING before RUNNING.
    boot_delay_s: float = 45.0
    #: Seconds spent STOPPING before STOPPED.
    stop_delay_s: float = 20.0

    def __init__(self, credentials: Credentials | None = None) -> None:
        self._instances: dict[str, Instance] = {}
        self._ids = itertools.count(1)
        self.ledger = BillingLedger()
        self._credentials = credentials

    # -------------------------------------------------------------- identity
    @property
    @abc.abstractmethod
    def kind(self) -> str:
        """Provider kind keyword, e.g. ``"ec2"``."""

    @abc.abstractmethod
    def instance_type(self, name: str) -> InstanceType:
        """Look up a purchasable instance type by name."""

    def authenticate(self, credentials: Credentials | None = None) -> None:
        creds = credentials if credentials is not None else self._credentials
        if creds is None:
            raise ProviderError(f"{self.kind}: no credentials supplied")
        creds.validated_for(self.kind)

    # -------------------------------------------------------------- lifecycle
    def launch(self, type_name: str, now: float, count: int = 1, tags: dict[str, str] | None = None) -> list[Instance]:
        """Request ``count`` instances; they become RUNNING after the boot delay."""
        self.authenticate()
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        itype = self.instance_type(type_name)
        out = []
        for _ in range(count):
            iid = f"{self.kind}-{next(self._ids):05d}"
            inst = Instance(instance_id=iid, itype=itype, launched_at=now, tags=dict(tags or {}))
            self._instances[iid] = inst
            out.append(inst)
        return out

    def wait_running(self, instances: list[Instance], now: float) -> float:
        """Block (in simulated time) until all instances are RUNNING.

        Returns the time at which the last instance came up.  Boot proceeds in
        parallel, so the wait is one boot delay, not ``count`` of them.
        """
        ready_at = now
        for inst in instances:
            if inst.state == InstanceState.TERMINATED:
                raise ProviderError(f"{inst.instance_id} is terminated")
            if inst.state == InstanceState.RUNNING:
                continue
            up = max(inst.launched_at + self.boot_delay_s, now)
            inst.state = InstanceState.RUNNING
            inst.running_since = up
            ready_at = max(ready_at, up)
        return ready_at

    def stop(self, instance_id: str, now: float) -> float:
        """Stop a running instance, billing the elapsed run time.

        Returns the time at which the instance is fully stopped.
        """
        inst = self._get(instance_id)
        if inst.state != InstanceState.RUNNING:
            raise ProviderError(f"cannot stop {instance_id} in state {inst.state.value}")
        assert inst.running_since is not None
        self._bill(inst, start=inst.running_since, end=now)
        inst.state = InstanceState.STOPPING
        stopped_at = now + self.stop_delay_s
        inst.state = InstanceState.STOPPED
        inst.running_since = None
        return stopped_at

    def start(self, instance_id: str, now: float) -> float:
        """Restart a stopped instance; returns when it is RUNNING again."""
        inst = self._get(instance_id)
        if inst.state != InstanceState.STOPPED:
            raise ProviderError(f"cannot start {instance_id} in state {inst.state.value}")
        up = now + self.boot_delay_s
        inst.state = InstanceState.RUNNING
        inst.running_since = up
        return up

    def terminate(self, instance_id: str, now: float) -> None:
        inst = self._get(instance_id)
        if inst.state == InstanceState.RUNNING and inst.running_since is not None:
            self._bill(inst, start=inst.running_since, end=now)
        inst.state = InstanceState.TERMINATED
        inst.running_since = None

    # ------------------------------------------------------------- accounting
    def _bill(self, inst: Instance, start: float, end: float) -> None:
        """EC2-2017-style billing: whole hours, rounded up, minimum one hour."""
        if end < start:
            raise ValueError(f"billing interval ends before it starts ({start}..{end})")
        hours = max(1.0, float(-(-int(end - start) // 3600)))
        inst.billed_hours += hours
        self.ledger.charge(
            sku=inst.itype.name,
            quantity=hours,
            unit_usd=inst.itype.hourly_usd,
            note=f"{inst.instance_id} ran {end - start:.0f}s",
        )

    def _get(self, instance_id: str) -> Instance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise ProviderError(f"unknown instance {instance_id!r}") from None

    def instances(self, state: InstanceState | None = None) -> list[Instance]:
        out = list(self._instances.values())
        if state is not None:
            out = [i for i in out if i.state == state]
        return out

    def describe(self, instance_id: str) -> Instance:
        return self._get(instance_id)
