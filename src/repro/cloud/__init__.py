"""Cloud infrastructure substrate.

The paper offloads to real AWS EC2 / Azure HDInsight clusters and moves data
through S3, HDFS or Azure Storage over the public Internet.  None of that is
available offline, so this package provides faithful *simulators* exposing the
same API surface the OmpCloud plugin needs:

* :mod:`repro.cloud.network` — WAN / LAN links with parallel-stream and
  BitTorrent-broadcast cost models;
* :mod:`repro.cloud.storage` + :mod:`~repro.cloud.s3` /
  :mod:`~repro.cloud.hdfs` / :mod:`~repro.cloud.azure_storage` — object stores
  that hold real bytes (functional mode) or virtual sizes (modeled mode);
* :mod:`repro.cloud.provider` + :mod:`~repro.cloud.ec2` /
  :mod:`~repro.cloud.azure` / :mod:`~repro.cloud.private` — instance lifecycle
  and per-hour billing, including the paper's on-the-fly start/stop of EC2
  instances during offload;
* :mod:`repro.cloud.ssh` — the SSH channel used to submit Spark jobs;
* :mod:`repro.cloud.provision` — a cgcloud-style cluster provisioner.
"""

from repro.cloud.credentials import Credentials
from repro.cloud.network import NetworkModel, Link
from repro.cloud.storage import ObjectStore, StorageError, StoredObject
from repro.cloud.s3 import S3Store
from repro.cloud.hdfs import HDFSStore
from repro.cloud.azure_storage import AzureBlobStore
from repro.cloud.provider import CloudProvider, Instance, InstanceState, InstanceType
from repro.cloud.ec2 import EC2Provider, EC2_INSTANCE_TYPES
from repro.cloud.azure import AzureProvider
from repro.cloud.private import PrivateCloudProvider
from repro.cloud.billing import BillingLedger, LineItem
from repro.cloud.ssh import SSHClient, SSHError
from repro.cloud.provision import ClusterSpec, ProvisionedCluster, provision_cluster

__all__ = [
    "Credentials",
    "NetworkModel",
    "Link",
    "ObjectStore",
    "StorageError",
    "StoredObject",
    "S3Store",
    "HDFSStore",
    "AzureBlobStore",
    "CloudProvider",
    "Instance",
    "InstanceState",
    "InstanceType",
    "EC2Provider",
    "EC2_INSTANCE_TYPES",
    "AzureProvider",
    "PrivateCloudProvider",
    "BillingLedger",
    "LineItem",
    "SSHClient",
    "SSHError",
    "ClusterSpec",
    "ProvisionedCluster",
    "provision_cluster",
]
