"""cgcloud-style cluster provisioner.

The paper instantiates its Spark cluster "using a third-party script called
cgcloud [which] allowed us to quickly instantiate a fully operational and
highly customizable Spark cluster within AWS".  ``provision_cluster`` plays
that role: it launches 1 driver + N worker instances from any provider, waits
for them (in simulated time), and wires up the driver's SSH endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.provider import CloudProvider, Instance
from repro.cloud.ssh import SSHEndpoint
from repro.simtime.clock import SimClock


@dataclass(frozen=True)
class ClusterSpec:
    """What to provision: the paper's default is 16 x c3.8xlarge workers."""

    instance_type: str = "c3.8xlarge"
    n_workers: int = 16
    driver_type: str | None = None  # defaults to the worker type
    authorized_users: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"a Spark cluster needs >= 1 worker, got {self.n_workers}")


@dataclass
class ProvisionedCluster:
    """Handle on a live cluster: instances plus the driver's SSH endpoint."""

    provider: CloudProvider
    driver: Instance
    workers: list[Instance]
    ssh_endpoint: SSHEndpoint
    ready_at: float = 0.0
    torn_down: bool = False
    tags: dict[str, str] = field(default_factory=dict)

    @property
    def total_physical_cores(self) -> int:
        return sum(w.itype.physical_cores for w in self.workers)

    @property
    def worker_ram_gb(self) -> float:
        return self.workers[0].itype.ram_gb if self.workers else 0.0

    def teardown(self, now: float) -> None:
        """Terminate every instance (idempotent)."""
        if self.torn_down:
            return
        for inst in [self.driver, *self.workers]:
            if inst.state.value not in ("terminated",):
                self.provider.terminate(inst.instance_id, now)
        self.torn_down = True

    def stop_all(self, now: float) -> float:
        """Stop (not terminate) every instance; returns when all are stopped."""
        done = now
        for inst in [self.driver, *self.workers]:
            if inst.state.value == "running":
                done = max(done, self.provider.stop(inst.instance_id, now))
        return done

    def start_all(self, now: float) -> float:
        """Restart a stopped cluster; returns when all instances are running."""
        up = now
        for inst in [self.driver, *self.workers]:
            if inst.state.value == "stopped":
                up = max(up, self.provider.start(inst.instance_id, now))
        self.ready_at = up
        return up


def provision_cluster(
    provider: CloudProvider,
    spec: ClusterSpec,
    clock: SimClock,
    driver_hostname: str = "spark-driver",
) -> ProvisionedCluster:
    """Launch and boot a 1-driver + N-worker cluster.

    Advances ``clock`` past the (parallel) boot of all instances, mirroring
    cgcloud's blocking ``create-cluster`` behaviour.
    """
    provider.authenticate()
    driver_type = spec.driver_type or spec.instance_type
    now = clock.now
    driver = provider.launch(driver_type, now, count=1, tags={"role": "driver"})[0]
    workers = provider.launch(
        spec.instance_type, now, count=spec.n_workers, tags={"role": "worker"}
    )
    ready = provider.wait_running([driver, *workers], now)
    clock.advance_to(ready)
    endpoint = SSHEndpoint(
        hostname=driver_hostname,
        authorized_users=set(spec.authorized_users),
    )
    return ProvisionedCluster(
        provider=provider,
        driver=driver,
        workers=workers,
        ssh_endpoint=endpoint,
        ready_at=ready,
    )
