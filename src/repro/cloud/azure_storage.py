"""Microsoft Azure Blob Storage simulator.

Mirrors the subset OmpCloud touches: a storage *account* holding *containers*
of block blobs, addressed as ``wasb://container@account/key`` (the scheme
HDInsight clusters mount).  Semantics beyond addressing and auth are shared
with the generic :class:`~repro.cloud.storage.ObjectStore`.
"""

from __future__ import annotations

import re

from repro.cloud.credentials import CredentialError, Credentials
from repro.cloud.storage import AccessDeniedError, ObjectStore

_ACCOUNT_RE = re.compile(r"^[a-z0-9]{3,24}$")
_CONTAINER_RE = re.compile(r"^[a-z0-9][a-z0-9-]{2,62}$")


def parse_wasb_uri(uri: str) -> tuple[str, str, str]:
    """Split ``wasb://container@account/key`` into (account, container, key)."""
    if not uri.startswith("wasb://"):
        raise ValueError(f"not a wasb uri: {uri!r}")
    rest = uri[len("wasb://") :]
    authority, _, key = rest.partition("/")
    container, _, account = authority.partition("@")
    if not container or not account:
        raise ValueError(f"malformed wasb uri {uri!r}")
    return account, container, key


class AzureBlobStore(ObjectStore):
    """One container in one Azure storage account."""

    cluster_read_bps = 350e6
    cluster_write_bps = 250e6
    request_latency_s = 0.060

    def __init__(
        self,
        account: str,
        container: str,
        credentials: Credentials | None = None,
    ) -> None:
        if not _ACCOUNT_RE.match(account):
            raise ValueError(f"invalid Azure storage account name {account!r}")
        if not _CONTAINER_RE.match(container):
            raise ValueError(f"invalid Azure container name {container!r}")
        super().__init__(name=f"wasb://{container}@{account}", credentials=credentials)
        self.account = account
        self.container = container

    def check_access(self, credentials: Credentials | None) -> None:
        if credentials is None:
            raise AccessDeniedError(f"{self.name}: Azure requires account credentials")
        try:
            credentials.validated_for("azure")
        except CredentialError as e:
            raise AccessDeniedError(f"{self.name}: {e}") from e

    def uri_for(self, key: str) -> str:
        return f"wasb://{self.container}@{self.account}/{key}"
