"""Network cost models: host<->cloud WAN, intra-cluster LAN, broadcast.

The paper's experiments place the host laptop "far away from the cloud
data-center", so the WAN link is slow and high-latency, while the cluster's
internal 10 GbE fabric is fast.  Two effects the paper leans on are modelled
explicitly:

* **Parallel upload streams** — the cloud plugin spawns one thread per mapped
  buffer.  A single TCP stream over a long fat network rarely saturates the
  path (window/RTT limits), so per-stream throughput is capped; ``k`` parallel
  streams achieve ``min(k * stream_cap, capacity)``.
* **BitTorrent broadcast** — Spark's TorrentBroadcast splits a variable into
  chunks that workers re-seed to each other, so broadcast time grows
  logarithmically with the number of nodes instead of linearly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A point-to-point link with a fluid-flow cost model.

    ``capacity_bps`` is the total usable bandwidth in *bytes* per second;
    ``latency_s`` is the one-way setup cost charged once per transfer;
    ``stream_cap_bps`` caps what one TCP stream can extract from the path.
    """

    capacity_bps: float
    latency_s: float
    stream_cap_bps: float | None = None

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bps!r}")
        if self.latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_s!r}")
        if self.stream_cap_bps is not None and self.stream_cap_bps <= 0:
            raise ValueError(f"stream cap must be positive, got {self.stream_cap_bps!r}")

    def effective_bandwidth(self, streams: int = 1) -> float:
        """Aggregate throughput achieved by ``streams`` concurrent streams."""
        if streams < 1:
            raise ValueError(f"need at least one stream, got {streams}")
        if self.stream_cap_bps is None:
            return self.capacity_bps
        return min(streams * self.stream_cap_bps, self.capacity_bps)

    def transfer_time(self, nbytes: int, streams: int = 1) -> float:
        """Seconds to move ``nbytes`` split evenly over ``streams`` streams."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        if nbytes == 0:
            return self.latency_s
        return self.latency_s + nbytes / self.effective_bandwidth(streams)

    def serial_transfer_time(self, sizes: list[int]) -> float:
        """Seconds to move each buffer one after the other on a single stream."""
        return sum(self.transfer_time(n, streams=1) for n in sizes)

    def parallel_transfer_time(self, sizes: list[int]) -> float:
        """Seconds to move all buffers concurrently, one stream per buffer.

        Uses progressive filling: while ``k`` streams are active each runs at
        ``effective_bandwidth(k)/k``; as short transfers finish, the survivors
        speed up (if the path, not the stream cap, was the bottleneck).
        """
        remaining = sorted(float(n) for n in sizes if n > 0)
        if not remaining:
            return self.latency_s if sizes else 0.0
        t = self.latency_s
        while remaining:
            k = len(remaining)
            per_stream = self.effective_bandwidth(k) / k
            # Time until the smallest remaining transfer drains.
            dt = remaining[0] / per_stream
            t += dt
            drained = per_stream * dt
            remaining = [r - drained for r in remaining[1:] if r - drained > 1e-9]
        return t


class NetworkModel:
    """The two links of an offload run plus collective-operation costs."""

    def __init__(self, wan: Link, lan: Link) -> None:
        self.wan = wan
        self.lan = lan
        self.bytes_over_wan = 0
        self.bytes_over_lan = 0
        # (nbytes, streams) -> seconds.  Link.transfer_time is pure, and the
        # scheduler asks for the same handful of payload sizes millions of
        # times per large job; bounded so pathological size diversity cannot
        # grow it without limit.
        self._lan_memo: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------ WAN
    def upload_time(self, sizes: list[int], parallel: bool = True) -> float:
        """Host -> cloud-storage time for the given buffer sizes."""
        self.bytes_over_wan += sum(sizes)
        if parallel:
            return self.wan.parallel_transfer_time(sizes)
        return self.wan.serial_transfer_time(sizes)

    def download_time(self, sizes: list[int], parallel: bool = True) -> float:
        """Cloud-storage -> host time (symmetric link model)."""
        self.bytes_over_wan += sum(sizes)
        if parallel:
            return self.wan.parallel_transfer_time(sizes)
        return self.wan.serial_transfer_time(sizes)

    # ------------------------------------------------------------------ LAN
    def lan_transfer_time(self, nbytes: int, streams: int = 1) -> float:
        """Point-to-point transfer inside the cluster."""
        self.bytes_over_lan += nbytes
        memo = self._lan_memo
        key = (nbytes, streams)
        t = memo.get(key)
        if t is None:
            if len(memo) >= 4096:
                memo.clear()
            t = memo[key] = self.lan.transfer_time(nbytes, streams=streams)
        return t

    def scatter_time(self, total_bytes: int, n_nodes: int) -> float:
        """Driver scatters disjoint chunks of ``total_bytes`` to ``n_nodes``.

        The driver's NIC is the bottleneck: all chunks leave through one link,
        so the cost is one full traversal of the data plus per-node latency.
        """
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        self.bytes_over_lan += total_bytes
        return n_nodes * self.lan.latency_s + total_bytes / self.lan.capacity_bps

    def broadcast_time(self, nbytes: int, n_nodes: int, bittorrent: bool = True) -> float:
        """Send one ``nbytes`` variable to every node.

        With BitTorrent-style re-seeding the pipeline cost is one data
        traversal plus a log-depth start-up; the naive fallback pays one full
        copy per node out of the driver.
        """
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        if n_nodes == 0 or nbytes == 0:
            return 0.0
        if bittorrent:
            self.bytes_over_lan += nbytes  # driver sends ~one copy; peers re-seed
            depth = math.ceil(math.log2(n_nodes + 1))
            return depth * self.lan.latency_s + nbytes / self.lan.capacity_bps
        self.bytes_over_lan += nbytes * n_nodes
        return n_nodes * (self.lan.latency_s + nbytes / self.lan.capacity_bps)

    def gather_time(self, total_bytes: int, n_nodes: int) -> float:
        """Workers send disjoint results back to the driver (collect)."""
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        self.bytes_over_lan += total_bytes
        return n_nodes * self.lan.latency_s + total_bytes / self.lan.capacity_bps


def default_wan() -> Link:
    """A realistic long-haul residential/campus uplink (calibration default).

    ~400 Mbit/s aggregate, 60 ms latency, single TCP stream limited to
    ~100 Mbit/s — values in line with the paper's 'laptop far from the
    data-center' setup once compression is taken into account.
    """
    return Link(capacity_bps=50e6, latency_s=0.060, stream_cap_bps=12.5e6)


def default_lan() -> Link:
    """Intra-cluster 10 GbE with sub-millisecond latency."""
    return Link(capacity_bps=1.25e9, latency_s=0.0005)
