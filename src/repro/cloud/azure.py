"""Microsoft Azure HDInsight simulator.

HDInsight provisions a managed Spark cluster rather than raw VMs, so boots
are slower but the head node arrives pre-configured.  The catalog covers the
D-series sizes HDInsight offered in 2017.
"""

from __future__ import annotations

from repro.cloud.credentials import Credentials
from repro.cloud.provider import CloudProvider, InstanceType, ProviderError

AZURE_INSTANCE_TYPES: dict[str, InstanceType] = {
    t.name: t
    for t in (
        InstanceType("D4_v2", vcpus=8, ram_gb=28.0, hourly_usd=0.458),
        InstanceType("D5_v2", vcpus=16, ram_gb=56.0, hourly_usd=0.916),
        InstanceType("D14_v2", vcpus=16, ram_gb=112.0, hourly_usd=1.482),
        InstanceType("D15_v2", vcpus=20, ram_gb=140.0, hourly_usd=1.853),
    )
}


class AzureProvider(CloudProvider):
    """Azure HDInsight: managed-cluster semantics over the VM lifecycle."""

    boot_delay_s = 180.0  # HDInsight cluster provisioning is minutes, not seconds
    stop_delay_s = 60.0

    def __init__(self, credentials: Credentials | None = None, region: str = "eastus") -> None:
        super().__init__(credentials=credentials)
        self.region = region

    @property
    def kind(self) -> str:
        return "azure"

    def instance_type(self, name: str) -> InstanceType:
        try:
            return AZURE_INSTANCE_TYPES[name]
        except KeyError:
            raise ProviderError(
                f"Azure {self.region}: unknown size {name!r}; known: {sorted(AZURE_INSTANCE_TYPES)}"
            ) from None
