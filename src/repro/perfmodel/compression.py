"""gzip compression: the real thing and the analytic model.

The OmpCloud plugin compresses each mapped buffer before upload "if the data
size is larger than a predefined minimal compression size", and the paper's
sparse/dense experiment shows compressibility dominating the communication
phases.  Functional runs use real zlib (gzip's deflate); modeled runs at
1 GB scale use :class:`CompressionModel`, whose dense/sparse instances were
fitted by running zlib on synthetic float32 matrices.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

#: gzip level the plugin uses: fast, streaming-friendly.
GZIP_LEVEL = 1


def gzip_compress(data: bytes, level: int = GZIP_LEVEL) -> bytes:
    """Deflate ``data`` (zlib container; the 'gzip' of the paper's plugin)."""
    return zlib.compress(data, level)


def gzip_decompress(data: bytes) -> bytes:
    return zlib.decompress(data)


def measure_ratio(data: bytes, level: int = GZIP_LEVEL) -> float:
    """Compressed/raw size ratio of ``data`` (1.0 for empty input)."""
    if not data:
        return 1.0
    return len(gzip_compress(data, level)) / len(data)


@dataclass(frozen=True)
class CompressionModel:
    """Analytic stand-in for gzip on one class of data.

    ``ratio`` is compressed/raw; throughputs are raw bytes per second on one
    core.  ``applies_to(nbytes, threshold)`` mirrors the plugin's minimal-
    compression-size rule.
    """

    name: str
    ratio: float
    compress_bps: float
    decompress_bps: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio!r}")
        if self.compress_bps <= 0 or self.decompress_bps <= 0:
            raise ValueError("throughputs must be positive")

    def compressed_size(self, nbytes: int, threshold: int = 0) -> int:
        """Wire size of an ``nbytes`` buffer under the threshold rule."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes!r}")
        if nbytes < threshold:
            return nbytes
        return int(round(nbytes * self.ratio))

    def compress_time(self, nbytes: int, threshold: int = 0) -> float:
        """Seconds to compress (0 when below the threshold: sent raw)."""
        if nbytes < threshold:
            return 0.0
        return nbytes / self.compress_bps

    def decompress_time(self, nbytes: int, threshold: int = 0) -> float:
        if nbytes < threshold:
            return 0.0
        return nbytes / self.decompress_bps


#: Fitted on np.float32 uniform noise: deflate-1 barely dents it.
DENSE_MODEL = CompressionModel("dense", ratio=0.92, compress_bps=60e6, decompress_bps=250e6)
#: Fitted on 95%-zero float32 matrices: long zero runs deflate beautifully.
SPARSE_MODEL = CompressionModel("sparse", ratio=0.08, compress_bps=200e6, decompress_bps=500e6)


def model_for_density(density: float) -> CompressionModel:
    """Interpolate between the sparse and dense fits by nonzero density.

    ``density`` is the fraction of nonzero elements; the paper's two regimes
    are density ~1.0 (dense) and ~0.05 (sparse).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density!r}")
    lo, hi = SPARSE_MODEL, DENSE_MODEL
    # Piecewise-linear in density anchored at the two fitted points.
    lo_d, hi_d = 0.05, 1.0
    w = min(1.0, max(0.0, (density - lo_d) / (hi_d - lo_d)))
    return CompressionModel(
        name=f"density-{density:.2f}",
        ratio=lo.ratio + w * (hi.ratio - lo.ratio),
        compress_bps=lo.compress_bps + w * (hi.compress_bps - lo.compress_bps),
        decompress_bps=lo.decompress_bps + w * (hi.decompress_bps - lo.decompress_bps),
    )


def fit_model_from_sample(arr: np.ndarray, name: str = "fitted") -> CompressionModel:
    """Fit a model's *ratio* by actually deflating (a sample of) ``arr``.

    Throughputs stay at the calibrated dense values — wall-clock measurements
    on the test machine would not transfer to the paper's hardware.
    """
    flat = np.ascontiguousarray(arr).reshape(-1)
    sample = flat[: min(flat.size, 1 << 20)]
    ratio = measure_ratio(sample.tobytes())
    return CompressionModel(
        name=name,
        ratio=max(1e-6, min(1.0, ratio)),
        compress_bps=DENSE_MODEL.compress_bps,
        decompress_bps=DENSE_MODEL.decompress_bps,
    )
