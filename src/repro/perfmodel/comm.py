"""Host-target communication model.

The cloud plugin "automatically creates a new thread for transmitting each
offloaded data (possibly after gzip compression if the data size is larger
than a predefined minimal compression size)".  So an upload of K mapped
buffers is K concurrent pipelines of compress -> WAN stream; a download is
the mirror image.  The phase totals reported here are what Figure 5 stacks
as *host-target communication*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.network import NetworkModel
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.compression import CompressionModel


@dataclass(frozen=True)
class TransferPlan:
    """One mapped buffer to move across the WAN."""

    name: str
    nbytes: int
    compression: CompressionModel

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative buffer size {self.nbytes!r}")


@dataclass(frozen=True)
class TransferCost:
    """Phase durations of one direction of host-target communication."""

    compress_s: float
    transfer_s: float
    decompress_s: float
    raw_bytes: int
    wire_bytes: int

    @property
    def total_s(self) -> float:
        return self.compress_s + self.transfer_s + self.decompress_s

    @property
    def compression_ratio(self) -> float:
        return self.wire_bytes / self.raw_bytes if self.raw_bytes else 1.0


class HostCommModel:
    """Costs of moving mapped buffers between host and cloud storage."""

    def __init__(
        self,
        calibration: Calibration = DEFAULT_CALIBRATION,
        network: NetworkModel | None = None,
        compress: bool = True,
        parallel_streams: bool = True,
    ) -> None:
        self.cal = calibration
        self.network = network if network is not None else NetworkModel(
            calibration.wan_link(), calibration.lan_link()
        )
        self.compress_enabled = compress
        self.parallel_streams = parallel_streams

    # ------------------------------------------------------------ directions
    def upload(self, plans: list[TransferPlan]) -> TransferCost:
        """Host compresses (one thread per buffer) then uploads to storage."""
        wire = [self._wire_size(p) for p in plans]
        compress_s = self._codec_time(plans, direction="compress")
        transfer_s = self.network.upload_time(wire, parallel=self.parallel_streams) if wire else 0.0
        return TransferCost(
            compress_s=compress_s,
            transfer_s=transfer_s,
            decompress_s=0.0,
            raw_bytes=sum(p.nbytes for p in plans),
            wire_bytes=sum(wire),
        )

    def download(self, plans: list[TransferPlan]) -> TransferCost:
        """Host downloads results from storage then decompresses."""
        wire = [self._wire_size(p) for p in plans]
        transfer_s = self.network.download_time(wire, parallel=self.parallel_streams) if wire else 0.0
        decompress_s = self._codec_time(plans, direction="decompress")
        return TransferCost(
            compress_s=0.0,
            transfer_s=transfer_s,
            decompress_s=decompress_s,
            raw_bytes=sum(p.nbytes for p in plans),
            wire_bytes=sum(wire),
        )

    # -------------------------------------------------------------- internals
    def _wire_size(self, plan: TransferPlan) -> int:
        if not self.compress_enabled:
            return plan.nbytes
        return plan.compression.compressed_size(plan.nbytes, self.cal.min_compress_size)

    def _codec_time(self, plans: list[TransferPlan], direction: str) -> float:
        """Compression runs on one host core per buffer, concurrently; the
        phase lasts as long as the slowest buffer."""
        if not self.compress_enabled or not plans:
            return 0.0
        times = []
        for p in plans:
            if direction == "compress":
                times.append(p.compression.compress_time(p.nbytes, self.cal.min_compress_size))
            else:
                times.append(p.compression.decompress_time(p.nbytes, self.cal.min_compress_size))
        return max(times)
