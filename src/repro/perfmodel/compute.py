"""Computation-time model.

Three effects shape the paper's computation curves:

* **JNI** — loop bodies run natively through the Java Native Interface; the
  paper measures the cost at "just 1.8%" plus one call per task (which is why
  Algorithm 1 tiles the loop down to one task per core);
* **per-node memory contention** — the Polybench kernels are naive,
  memory-bound loops, so co-resident tasks fight for the node's memory
  bandwidth.  This is what bends OmpThread-16 to ~9x and caps the 256-core
  computation speedup of 3MM at ~143x; compute-bound collinear-list (low
  ``memory_intensity``) is nearly immune;
* **stragglers** — EC2 multi-tenant jitter, modelled as deterministic
  seeded lognormal noise per task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class TaskTiming:
    """Modelled durations of one map task's slot occupancy."""

    compute_s: float
    jni_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.jni_s


class ComputeModel:
    """Turns flop counts into simulated durations."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION, seed: int = 7) -> None:
        self.cal = calibration
        self._seed = seed
        # Straggler noise is deterministic per (seed, task_index) but each
        # draw constructs a fresh Generator (~45 us); the codegen asks for
        # the same index up to three times per tile, so memoize.
        self._noise_cache: dict[int, float] = {}

    # ----------------------------------------------------------- baselines
    def sequential_time(self, flops: float) -> float:
        """Single-core native execution: the speedup denominator of Fig. 4."""
        if flops < 0:
            raise ValueError(f"negative flops {flops!r}")
        return flops / self.cal.core_flops

    def contention_factor(self, tasks_on_node: int, slots_per_node: int, intensity: float) -> float:
        """Slowdown of each task when ``tasks_on_node`` share one node.

        Linear in the co-runner count, scaled by the workload's memory
        intensity (1.0 = fully bandwidth-bound, 0.0 = pure compute).
        """
        if tasks_on_node < 1:
            raise ValueError(f"tasks_on_node must be >= 1, got {tasks_on_node}")
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity!r}")
        if slots_per_node <= 1:
            return 1.0
        k = min(tasks_on_node, slots_per_node)
        return 1.0 + self.cal.contention_ceiling * intensity * (k - 1) / (slots_per_node - 1)

    # --------------------------------------------------------------- OmpCloud
    def task_timing(
        self,
        tile_flops: float,
        tasks_on_node: int,
        slots_per_node: int,
        intensity: float,
        task_index: int = 0,
        jni_calls: int = 1,
    ) -> TaskTiming:
        """Slot time of one map task computing ``tile_flops``.

        ``jni_calls`` is 1 after Algorithm 1's tiling; an untiled loop pays one
        call per iteration (the ablation bench exercises exactly this).
        """
        base = self.sequential_time(tile_flops)
        cont = self.contention_factor(tasks_on_node, slots_per_node, intensity)
        noise = self._straggler_noise(task_index)
        compute = base * (1.0 + self.cal.jni_efficiency_loss) * cont * noise
        return TaskTiming(compute_s=compute, jni_s=self.cal.jni_call_s * max(0, jni_calls))

    def straggler_noise(self, task_index: int) -> float:
        """The seeded mean-one straggler multiplier for ``task_index``.

        Public so the critical-path profiler can compare the *observed*
        max/median tile skew against what the calibrated lognormal model
        predicts for the same task count."""
        return self._straggler_noise(task_index)

    def _straggler_noise(self, task_index: int) -> float:
        if self.cal.straggler_sigma <= 0.0:
            return 1.0
        cached = self._noise_cache.get(task_index)
        if cached is not None:
            return cached
        rng = np.random.default_rng((self._seed, task_index))
        sigma = self.cal.straggler_sigma
        # Mean-one lognormal: E[exp(N(-s^2/2, s^2))] = 1.
        noise = float(rng.lognormal(mean=-(sigma**2) / 2.0, sigma=sigma))
        self._noise_cache[task_index] = noise
        return noise

    def task_timing_vec(
        self,
        tile_flops: np.ndarray,
        tasks_on_node: int,
        slots_per_node: int,
        intensity: float,
        task_indices: np.ndarray,
        jni_calls: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`task_timing`: ``(compute_s, jni_s)`` arrays.

        Element ``j`` is bit-identical to
        ``task_timing(tile_flops[j], ..., task_index=task_indices[j])`` —
        the multiplications happen in the same order on the same float64
        values, and the straggler draw goes through the same per-index
        generator (memoized).  With ``straggler_sigma == 0`` the whole
        timing pass is a handful of array ops regardless of task count.
        """
        flops = np.asarray(tile_flops, dtype=np.float64)
        if flops.size and float(flops.min()) < 0:
            j = int(np.argmin(flops))
            raise ValueError(f"negative flops {float(flops[j])!r}")
        base = flops / self.cal.core_flops
        cont = self.contention_factor(tasks_on_node, slots_per_node, intensity)
        if self.cal.straggler_sigma <= 0.0:
            compute = base * (1.0 + self.cal.jni_efficiency_loss) * cont
        else:
            noise = np.fromiter(
                (self._straggler_noise(int(i)) for i in task_indices),
                dtype=np.float64, count=len(task_indices))
            compute = base * (1.0 + self.cal.jni_efficiency_loss) * cont * noise
        jni = np.full(flops.shape, self.cal.jni_call_s * max(0, jni_calls))
        return compute, jni

    # -------------------------------------------------------------- OmpThread
    def omp_thread_time(self, total_flops: float, threads: int, intensity: float,
                        slots_per_node: int | None = None) -> float:
        """Multi-threaded OpenMP on one node (the Fig. 4 reference series)."""
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        slots = slots_per_node if slots_per_node is not None else self.cal.worker_task_slots
        cont = self.contention_factor(threads, slots, intensity)
        per_thread = self.sequential_time(total_flops) / threads
        return per_thread * cont * (1.0 + self.cal.omp_sync_loss)

    def omp_thread_speedup(self, threads: int, intensity: float) -> float:
        """Speedup over single core, independent of the flop count."""
        t1 = 1.0
        tn = self.omp_thread_time(self.cal.core_flops, threads, intensity)
        return t1 / tn
