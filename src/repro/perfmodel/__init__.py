"""Performance models and calibration.

The reproduction runs on a laptop, not a 256-core EC2 cluster, so task
durations, compression times and transfer times are *modelled*.  This package
holds all the constants in one place (:mod:`~repro.perfmodel.calibration`),
the compute-time model with per-node memory contention and straggler noise
(:mod:`~repro.perfmodel.compute`), the host-target communication model
(:mod:`~repro.perfmodel.comm`) and the gzip compressibility model — which
also provides the *real* zlib round-trip used in functional mode
(:mod:`~repro.perfmodel.compression`).

Calibration targets are the paper's headline observations, recorded in
EXPERIMENTS.md; no constant is chosen per-figure after the fact — one global
set reproduces all of them.
"""

from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.compression import (
    CompressionModel,
    DENSE_MODEL,
    SPARSE_MODEL,
    gzip_compress,
    gzip_decompress,
    measure_ratio,
    model_for_density,
)
from repro.perfmodel.compute import ComputeModel, TaskTiming
from repro.perfmodel.comm import HostCommModel, TransferPlan, TransferCost

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "CompressionModel",
    "DENSE_MODEL",
    "SPARSE_MODEL",
    "gzip_compress",
    "gzip_decompress",
    "measure_ratio",
    "model_for_density",
    "ComputeModel",
    "TaskTiming",
    "HostCommModel",
    "TransferPlan",
    "TransferCost",
]
