"""Every tunable constant of the performance model, in one frozen record.

The values below were calibrated once, jointly, against the paper's reported
observations (see EXPERIMENTS.md for the paper-vs-measured table):

* 8-core cloud runtimes between ~10 min and ~1 h 30 per benchmark (Fig. 5);
* 3MM speedups of ≈143x / 97x / 86x (computation / spark / full) at 256
  cores (Fig. 4f) — which pins the per-node memory-contention ceiling;
* one-worker overheads vs. 16-thread OpenMP of ≈1.8 % / 8.8 % / 13.6 %;
* Spark-overhead share rising from 17 % to 69 % for SYRK and from 0.1 % to
  15 % for collinear-list as cores go 8 -> 256;
* dense-vs-sparse gaps driven entirely by gzip compressibility (Fig. 5).

Nothing is tuned per-figure: the same instance feeds every bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.network import Link


@dataclass(frozen=True)
class Calibration:
    """Calibrated machine/runtime constants (SI units: bytes, seconds)."""

    # ---------------------------------------------------------- computation
    #: Effective single-core throughput of the naive C kernels on the
    #: Xeon E5-2680 v2, flop/s.  Polybench loops are not BLAS: no blocking,
    #: no vectorised FMA, so ~1.0 GF/s single precision is representative.
    core_flops: float = 1.0e9
    #: Relative cost of running the loop body through JNI instead of a plain
    #: native call (the paper measures computation overhead of "just 1.8%").
    jni_efficiency_loss: float = 0.018
    #: Fixed cost of one JNI invocation (crossing + argument pinning).
    jni_call_s: float = 5e-4
    #: Per-node memory-bandwidth contention: running k tasks on one node
    #: slows each by 1 + ceiling * intensity * (k-1)/(slots-1).  0.63 makes a
    #: fully loaded c3.8xlarge match both OmpThread-16 and the ~143x
    #: computation speedup of 3MM at 256 cores.
    contention_ceiling: float = 0.63
    #: Multiplicative straggler noise on task durations (lognormal sigma);
    #: EC2 multi-tenant jitter.
    straggler_sigma: float = 0.015
    #: Extra synchronisation overhead of OpenMP multi-threading (fork/join,
    #: barrier) as a fraction of compute.
    omp_sync_loss: float = 0.010

    # ---------------------------------------------------------------- spark
    #: Driver-side closure serialization + launch RPC, per task.
    task_launch_s: float = 0.004
    #: Driver-side ByteArray slicing / reassembly throughput: the JVM copies
    #: and garbage-collects every byte that passes through RDD_IN
    #: construction (Eq. 1-3) and output reconstruction (Eq. 8-10).
    driver_byte_bps: float = 100e6
    #: Worker-side per-task byte processing (deserialize + decompress inputs,
    #: serialize + compress outputs, JNI buffer pinning).  Low on purpose:
    #: this is JVM ByteArray churn, not raw zlib.
    worker_byte_bps: float = 12e6
    #: Broadcast-variable serialization throughput on the driver.
    broadcast_serialize_bps: float = 150e6
    #: Spark job submission / stage setup fixed cost.
    job_setup_s: float = 3.0

    # ------------------------------------------------------------ networking
    #: Host <-> cloud storage WAN: ~480 Mbit/s aggregate, 120 Mbit/s per TCP
    #: stream, 60 ms of latency (laptop "far away from the data-center").
    wan_capacity_bps: float = 60e6
    wan_stream_cap_bps: float = 15e6
    wan_latency_s: float = 0.060
    #: Intra-cluster 10 GbE.
    lan_capacity_bps: float = 1.25e9
    lan_latency_s: float = 0.0005

    # --------------------------------------------------------------- storage
    #: Sustained cloud-storage throughput seen from cluster nodes.
    storage_read_bps: float = 250e6
    storage_write_bps: float = 200e6

    # ----------------------------------------------------------- compression
    #: gzip ratio (compressed/raw) and throughput for dense float32 noise.
    dense_ratio: float = 0.92
    dense_compress_bps: float = 60e6
    dense_decompress_bps: float = 250e6
    #: ... and for sparse matrices ("compressed faster with better rate").
    sparse_ratio: float = 0.08
    sparse_compress_bps: float = 200e6
    sparse_decompress_bps: float = 500e6
    #: Buffers below this size are sent uncompressed (plugin threshold).
    min_compress_size: int = 1 << 20

    # ---------------------------------------------------------- cluster shape
    #: vCPUs per worker node (c3.8xlarge).
    worker_vcpus: int = 32
    #: vCPUs reserved per Spark task (paper: spark.task.cpus=2).
    task_cpus: int = 2

    # ------------------------------------------------------------- lifecycle
    #: EC2 boot / stop latencies for the on-the-fly instance management path.
    instance_boot_s: float = 60.0
    instance_stop_s: float = 25.0

    # ----------------------------------------------------------- conveniences
    def wan_link(self) -> Link:
        return Link(
            capacity_bps=self.wan_capacity_bps,
            latency_s=self.wan_latency_s,
            stream_cap_bps=self.wan_stream_cap_bps,
        )

    def lan_link(self) -> Link:
        return Link(capacity_bps=self.lan_capacity_bps, latency_s=self.lan_latency_s)

    @property
    def worker_task_slots(self) -> int:
        return self.worker_vcpus // self.task_cpus


#: The single calibrated instance used everywhere.
DEFAULT_CALIBRATION = Calibration()
