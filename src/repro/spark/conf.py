"""Spark configuration.

Only the keys the paper tunes are interpreted (``spark.task.cpus``,
``spark.cores.max``, ``spark.default.parallelism``, ``spark.executor.memory``)
but arbitrary keys round-trip, like real ``SparkConf``.
"""

from __future__ import annotations

from typing import Iterator


class SparkConf:
    """String key/value configuration with typed accessors.

    >>> conf = SparkConf().set("spark.task.cpus", "2")
    >>> conf.task_cpus
    2
    """

    _DEFAULTS = {
        "spark.task.cpus": "1",
        "spark.default.parallelism": "0",  # 0 = derive from cluster
        "spark.cores.max": "0",  # 0 = unlimited
        "spark.executor.memory": "40g",
        "spark.io.compression.codec": "lz4",
        "spark.broadcast.blockSize": "4m",
    }

    def __init__(self, entries: dict[str, str] | None = None) -> None:
        self._entries: dict[str, str] = dict(self._DEFAULTS)
        if entries:
            for k, v in entries.items():
                self.set(k, v)

    def set(self, key: str, value: str | int | float) -> "SparkConf":
        if not key.startswith("spark."):
            raise ValueError(f"Spark configuration keys start with 'spark.', got {key!r}")
        self._entries[key] = str(value)
        return self

    def get(self, key: str, default: str | None = None) -> str:
        if key in self._entries:
            return self._entries[key]
        if default is None:
            raise KeyError(key)
        return default

    def get_int(self, key: str, default: int = 0) -> int:
        raw = self._entries.get(key)
        return int(raw) if raw is not None else default

    def get_bytes(self, key: str, default: int = 0) -> int:
        """Parse a JVM-style size suffix (k/m/g)."""
        raw = self._entries.get(key)
        if raw is None:
            return default
        raw = raw.strip().lower()
        multipliers = {"k": 1024, "m": 1024**2, "g": 1024**3}
        if raw and raw[-1] in multipliers:
            return int(float(raw[:-1]) * multipliers[raw[-1]])
        return int(raw)

    def items(self) -> Iterator[tuple[str, str]]:
        return iter(sorted(self._entries.items()))

    # ----------------------------------------------------- interpreted keys
    @property
    def task_cpus(self) -> int:
        """vCPUs reserved per task; the paper sets 2 (one physical core)."""
        v = self.get_int("spark.task.cpus", 1)
        if v < 1:
            raise ValueError(f"spark.task.cpus must be >= 1, got {v}")
        return v

    @property
    def cores_max(self) -> int:
        """Upper bound on vCPUs used across the cluster; 0 = no bound."""
        v = self.get_int("spark.cores.max", 0)
        if v < 0:
            raise ValueError(f"spark.cores.max must be >= 0, got {v}")
        return v

    @property
    def default_parallelism(self) -> int:
        v = self.get_int("spark.default.parallelism", 0)
        if v < 0:
            raise ValueError(f"spark.default.parallelism must be >= 0, got {v}")
        return v

    @property
    def executor_memory_bytes(self) -> int:
        return self.get_bytes("spark.executor.memory", 40 * 1024**3)

    def copy(self) -> "SparkConf":
        return SparkConf(dict(self._entries))
