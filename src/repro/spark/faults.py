"""Fault injection for the Spark substrate.

RDD fault tolerance is one of the features OmpCloud gets "transparently" from
Spark, so the reproduction must be able to kill workers and show the job still
completes with identical results.  A :class:`FaultPlan` describes the
failures; the scheduler consults it both in simulated scheduling (a worker
dies at a simulated instant) and in functional runs (a worker's Nth task
raises).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultPlan:
    """Planned executor failures.

    ``die_at`` maps worker id -> simulated time after which the worker serves
    nothing; ``fail_task_number`` maps worker id -> 1-based index of the task
    execution on that worker that raises (functional mode).
    """

    die_at: dict[str, float] = field(default_factory=dict)
    fail_task_number: dict[str, int] = field(default_factory=dict)

    def is_dead(self, worker_id: str, when: float) -> bool:
        t = self.die_at.get(worker_id)
        return t is not None and when >= t

    def kills_reservation(self, worker_id: str, start: float, end: float) -> bool:
        """True when the worker dies before the reservation completes."""
        t = self.die_at.get(worker_id)
        return t is not None and t < end

    def should_raise(self, worker_id: str, task_number: int) -> bool:
        return self.fail_task_number.get(worker_id) == task_number

    @property
    def empty(self) -> bool:
        return not self.die_at and not self.fail_task_number


#: A plan with no failures, shared default.
NO_FAULTS = FaultPlan()
