"""Fault injection for the Spark substrate and the offload pipeline.

RDD fault tolerance is one of the features OmpCloud gets "transparently" from
Spark, so the reproduction must be able to kill workers and show the job still
completes with identical results.  A :class:`FaultPlan` describes the
failures; the scheduler consults it both in simulated scheduling (a worker
dies at a simulated instant) and in functional runs (a worker's Nth task
raises).  Beyond worker loss, a plan also covers the infrastructure faults
the cloud plugin must survive: EC2 spot preemption, a flaky or lost SSH
channel to the driver, and ``spark-submit`` runs that exit non-zero.

Plans are immutable: the shared :data:`NO_FAULTS` default is safe to pass to
any number of devices, and the mapping fields reject accidental mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping


@dataclass(frozen=True, eq=False)
class FaultPlan:
    """Planned failures, all keyed in simulated time.

    Worker-level (recovered by lineage recomputation inside the job):

    * ``die_at`` maps worker id -> simulated time after which the worker
      serves nothing;
    * ``preempt_at`` maps worker id -> the instant EC2 reclaims the spot
      instance.  Scheduling-wise a preemption is a death, but the plugin
      additionally detects it, bills the instance, and provisions a
      replacement worker;
    * ``fail_task_number`` maps worker id -> 1-based index of the task
      execution on that worker that raises (functional mode).

    Offload-level (recovered by retry, resubmission, or host fallback):

    * ``ssh_connect_failures`` — the first N SSH connects from the plugin
      fail transiently (connection reset);
    * ``spark_submit_failures`` — the first N ``spark-submit`` runs exit
      non-zero before doing any work;
    * ``driver_dies_at`` — from this instant on the Spark driver node is
      gone: connects fail and in-flight jobs are lost.

    Data-integrity (recovered by checksum verification + bounded re-fetch):

    * ``corrupt_keys`` maps a storage-key substring -> how many reads of
      matching keys return corrupt data (checksum mismatch) before the
      object heals.
    """

    die_at: Mapping[str, float] = field(default_factory=dict)
    fail_task_number: Mapping[str, int] = field(default_factory=dict)
    preempt_at: Mapping[str, float] = field(default_factory=dict)
    ssh_connect_failures: int = 0
    spark_submit_failures: int = 0
    driver_dies_at: float | None = None
    corrupt_keys: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the mappings: the shared NO_FAULTS default must be immune
        # to accidental mutation by any device that holds it.
        object.__setattr__(self, "die_at", MappingProxyType(dict(self.die_at)))
        object.__setattr__(self, "fail_task_number",
                           MappingProxyType(dict(self.fail_task_number)))
        object.__setattr__(self, "preempt_at",
                           MappingProxyType(dict(self.preempt_at)))
        object.__setattr__(self, "corrupt_keys",
                           MappingProxyType(dict(self.corrupt_keys)))
        if self.ssh_connect_failures < 0:
            raise ValueError("ssh_connect_failures must be >= 0")
        if self.spark_submit_failures < 0:
            raise ValueError("spark_submit_failures must be >= 0")
        if any(n < 0 for n in self.corrupt_keys.values()):
            raise ValueError("corrupt_keys counts must be >= 0")

    # ----------------------------------------------------------- worker loss
    def death_time(self, worker_id: str) -> float | None:
        """When this worker stops serving (plain death or spot preemption)."""
        t_die = self.die_at.get(worker_id)
        t_pre = self.preempt_at.get(worker_id)
        if t_die is None:
            return t_pre
        if t_pre is None:
            return t_die
        return min(t_die, t_pre)

    def is_dead(self, worker_id: str, when: float) -> bool:
        t = self.death_time(worker_id)
        return t is not None and when >= t

    def kills_reservation(self, worker_id: str, start: float, end: float) -> bool:
        """True when the worker dies *during* ``[start, end)``.

        A worker already dead before ``start`` never received the
        reservation; the scheduler filters those with :meth:`is_dead` before
        handing out work.
        """
        t = self.death_time(worker_id)
        return t is not None and start <= t < end

    def should_raise(self, worker_id: str, task_number: int) -> bool:
        return self.fail_task_number.get(worker_id) == task_number

    # ------------------------------------------------------------- channel
    def driver_lost(self, when: float) -> bool:
        """Whether the Spark driver node is gone at simulated time ``when``."""
        return self.driver_dies_at is not None and when >= self.driver_dies_at

    @property
    def empty(self) -> bool:
        return (not self.die_at and not self.fail_task_number
                and not self.preempt_at and self.ssh_connect_failures == 0
                and self.spark_submit_failures == 0
                and self.driver_dies_at is None
                and not self.corrupt_keys)


#: A plan with no failures, shared (and safely immutable) default.
NO_FAULTS = FaultPlan()
