"""Resilient Distributed Datasets.

The execution model of the paper (Section III-C) is expressed entirely in RDD
terms: ``RDD_IN`` is a parallelized collection of ``(i, V_IN(i))`` pairs, a
``map`` applies the loop body, and the outputs are collected and reconstructed
on the driver.  This module implements the RDD abstraction with the three
properties OmpCloud relies on:

* **partitioning** — elements are split into equal parts across workers
  (Eq. 3), here via :func:`repro.spark.partitioner.range_partition`;
* **laziness + lineage** — transformations build a DAG; ``compute(split)``
  materializes one partition by recursively computing its parents, which is
  also exactly the **fault recovery** story: a lost task is re-run from
  lineage, nothing else;
* **actions** — ``collect``/``reduce``/``count`` hand the DAG to the driver,
  which schedules one task per partition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TYPE_CHECKING

from repro.spark.partitioner import range_partition

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext


@dataclass(frozen=True)
class Partition:
    """A handle on one split of an RDD."""

    rdd_id: int
    index: int


class RDD:
    """Base class; subclasses define :meth:`compute`."""

    _ids = itertools.count()

    def __init__(self, context: "SparkContext", num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError(f"an RDD needs >= 1 partition, got {num_partitions}")
        self.context = context
        self.id = next(RDD._ids)
        self.num_partitions = num_partitions
        self._cache: dict[int, list[Any]] | None = None

    # ------------------------------------------------------------- lineage
    def compute(self, split: int) -> list[Any]:
        """Materialize partition ``split`` (recursively via parents)."""
        raise NotImplementedError

    def partitions(self) -> list[Partition]:
        return [Partition(self.id, i) for i in range(self.num_partitions)]

    def iterator(self, split: int) -> list[Any]:
        """compute() with cache lookup, like Spark's ``RDD.iterator``."""
        self._check_split(split)
        if self._cache is not None:
            if split not in self._cache:
                self._cache[split] = self.compute(split)
            return self._cache[split]
        return self.compute(split)

    def cache(self) -> "RDD":
        """Keep computed partitions around (driver-side block manager)."""
        if self._cache is None:
            self._cache = {}
        return self

    def unpersist(self) -> "RDD":
        self._cache = None
        return self

    def _check_split(self, split: int) -> None:
        if not 0 <= split < self.num_partitions:
            raise IndexError(
                f"RDD {self.id} has {self.num_partitions} partitions, asked for {split}"
            )

    # ------------------------------------------------------ transformations
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return MappedRDD(self, lambda it: [fn(x) for x in it])

    def filter(self, fn: Callable[[Any], bool]) -> "RDD":
        return MappedRDD(self, lambda it: [x for x in it if fn(x)])

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return MappedRDD(self, lambda it: [y for x in it for y in fn(x)])

    def map_partitions(self, fn: Callable[[list[Any]], Iterable[Any]]) -> "RDD":
        return MappedRDD(self, lambda it: list(fn(it)))

    def map_partitions_with_index(
        self, fn: Callable[[int, list[Any]], Iterable[Any]]
    ) -> "RDD":
        return MappedRDD(self, fn, with_index=True)

    def zip_with_index(self) -> "RDD":
        """Pair each element with its global index (requires a size pass,
        like Spark's ``zipWithIndex``)."""
        counts = [len(self.iterator(i)) for i in range(self.num_partitions)]
        offsets = [0]
        for c in counts[:-1]:
            offsets.append(offsets[-1] + c)

        def fn(idx: int, it: list[Any]) -> list[Any]:
            return [(x, offsets[idx] + j) for j, x in enumerate(it)]

        return MappedRDD(self, fn, with_index=True)

    def glom(self) -> "RDD":
        """Each partition becomes a single list element."""
        return MappedRDD(self, lambda it: [list(it)])

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs partition-wise (narrow, no shuffle)."""
        return UnionRDD(self, other)

    def zip(self, other: "RDD") -> "RDD":
        """Pair elements position-wise; requires identical partitioning,
        like Spark's ``zip``."""
        if other.num_partitions != self.num_partitions:
            raise ValueError(
                f"can only zip RDDs with the same number of partitions "
                f"({self.num_partitions} != {other.num_partitions})"
            )
        return ZippedRDD(self, other)

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda x: (fn(x), x))

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def reduce_by_key(self, fn: Callable[[Any, Any], Any],
                      num_partitions: int | None = None) -> "RDD":
        """Combine values per key.

        Map-side combining happens per partition on the substrate; the merge
        across partitions runs on the driver (a simplification of Spark's
        shuffle that preserves its semantics — OmpCloud's generated jobs never
        need a distributed shuffle).  Keys keep first-seen order.
        """

        def combine(it: list[Any]) -> list[Any]:
            acc: dict[Any, Any] = {}
            for k, v in it:
                acc[k] = fn(acc[k], v) if k in acc else v
            return list(acc.items())

        partials = [x for p in self.context.run_job(self, combine) for x in p]
        merged: dict[Any, Any] = {}
        for k, v in partials:
            merged[k] = fn(merged[k], v) if k in merged else v
        n = num_partitions if num_partitions is not None else self.num_partitions
        return ParallelCollectionRDD(self.context, list(merged.items()),
                                     max(1, min(n, max(len(merged), 1))))

    def collect_as_map(self) -> dict:
        """collectAsMap(): the pairs of this RDD as a driver-side dict."""
        return dict(self.collect())

    # --------------------------------------------------------------- actions
    def collect(self) -> list[Any]:
        """Run the job and concatenate all partitions, in order."""
        parts = self.context.run_job(self)
        return [x for p in parts for x in p]

    def count(self) -> int:
        parts = self.context.run_job(self, lambda it: [len(it)])
        return sum(x for p in parts for x in p)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Tree-free two-level reduce: within partitions, then on the driver."""

        def reduce_partition(it: list[Any]) -> list[Any]:
            if not it:
                return []
            acc = it[0]
            for x in it[1:]:
                acc = fn(acc, x)
            return [acc]

        partials = [x for p in self.context.run_job(self, reduce_partition) for x in p]
        if not partials:
            raise ValueError("reduce of an empty RDD")
        acc = partials[0]
        for x in partials[1:]:
            acc = fn(acc, x)
        return acc

    def take(self, n: int) -> list[Any]:
        out: list[Any] = []
        for i in range(self.num_partitions):
            if len(out) >= n:
                break
            out.extend(self.iterator(i))
        return out[:n]


class ParallelCollectionRDD(RDD):
    """An RDD born from a driver-side sequence (``sc.parallelize``)."""

    def __init__(self, context: "SparkContext", data: Sequence[Any], num_partitions: int) -> None:
        super().__init__(context, num_partitions)
        # Slicing is lazy: modeled jobs never call ``compute``, so eagerly
        # materialising one list per partition would be pure allocation
        # overhead at million-task scale.  ``data`` is driver-side and
        # immutable by convention (``parallelize`` callers hand over fresh
        # sequences), so deferred slicing reads the same values.
        self._data = data
        self._bounds = range_partition(len(data), num_partitions)

    def compute(self, split: int) -> list[Any]:
        self._check_split(split)
        lo, hi = self._bounds[split]
        return list(self._data[lo:hi])


class MappedRDD(RDD):
    """A narrow one-parent transformation."""

    def __init__(
        self,
        parent: RDD,
        fn: Callable[..., Iterable[Any]],
        with_index: bool = False,
    ) -> None:
        super().__init__(parent.context, parent.num_partitions)
        self.parent = parent
        self.fn = fn
        self.with_index = with_index

    def compute(self, split: int) -> list[Any]:
        self._check_split(split)
        parent_data = self.parent.iterator(split)
        if self.with_index:
            return list(self.fn(split, parent_data))
        return list(self.fn(parent_data))


class UnionRDD(RDD):
    """Partition-wise concatenation of two parents (Spark's UnionRDD)."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.context, left.num_partitions + right.num_partitions)
        self.left = left
        self.right = right

    def compute(self, split: int) -> list[Any]:
        self._check_split(split)
        if split < self.left.num_partitions:
            return self.left.iterator(split)
        return self.right.iterator(split - self.left.num_partitions)


class ZippedRDD(RDD):
    """Position-wise pairing of two identically-partitioned parents."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.context, left.num_partitions)
        self.left = left
        self.right = right

    def compute(self, split: int) -> list[Any]:
        self._check_split(split)
        a = self.left.iterator(split)
        b = self.right.iterator(split)
        if len(a) != len(b):
            raise ValueError(
                f"cannot zip partition {split}: {len(a)} vs {len(b)} elements "
                f"(Spark requires the same number of elements per partition)"
            )
        return list(zip(a, b))


def lineage_depth(rdd: RDD) -> int:
    """Number of transformation hops back to a source RDD (diagnostics)."""
    depth = 0
    node = rdd
    while isinstance(node, MappedRDD):
        node = node.parent
        depth += 1
    return depth
