"""Spark cluster wiring: executors + network + clock + conf.

Reproduces the paper's deployment: one driver node plus ``n_workers`` worker
nodes, each running a single executor JVM managing all of the node's vCPUs.
``spark.cores.max`` caps how many vCPUs a job may occupy; like the paper's
standalone deployment (8..256 physical cores on a fixed 16-worker cluster),
cores are granted by filling workers one after another, so 8 or 16 physical
cores land on a single worker node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cloud.network import NetworkModel, default_lan, default_wan
from repro.simtime.clock import SimClock
from repro.spark.conf import SparkConf
from repro.spark.executor import Executor


@dataclass(frozen=True)
class WorkerShape:
    """Hardware of one worker node (default: c3.8xlarge, as in the paper)."""

    vcpus: int = 32
    ram_gb: float = 60.0

    @property
    def physical_cores(self) -> int:
        return self.vcpus // 2


class SparkCluster:
    """A fixed group of worker nodes with one executor JVM each."""

    def __init__(
        self,
        n_workers: int = 16,
        shape: WorkerShape | None = None,
        conf: SparkConf | None = None,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
        worker_speeds: Sequence[float] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self.shape = shape if shape is not None else WorkerShape()
        self.conf = conf if conf is not None else SparkConf()
        self.network = network if network is not None else NetworkModel(default_wan(), default_lan())
        self.clock = clock if clock is not None else SimClock()
        self.n_workers = n_workers
        #: Relative per-core throughput per worker index; workers past the
        #: end of the list (and all workers by default) run at 1.0.
        self.worker_speeds = tuple(worker_speeds) if worker_speeds else ()
        self.executors = self._build_executors()

    def _build_executors(self) -> list[Executor]:
        """Grant vCPUs worker-by-worker until spark.cores.max is exhausted."""
        task_cpus = self.conf.task_cpus
        cores_max = self.conf.cores_max  # in vCPUs; 0 = all
        remaining = cores_max if cores_max > 0 else self.n_workers * self.shape.vcpus
        heap = self.conf.executor_memory_bytes
        out: list[Executor] = []
        for w in range(self.n_workers):
            if remaining < task_cpus:
                break
            grant = min(self.shape.vcpus, remaining)
            if grant // task_cpus < 1:
                break
            out.append(
                Executor(
                    worker_id=f"worker-{w}",
                    vcpus=grant,
                    task_cpus=task_cpus,
                    heap_bytes=heap,
                    speed=self._speed_of(w),
                )
            )
            remaining -= grant
        if not out:
            raise ValueError(
                f"spark.cores.max={cores_max} grants no full task slot "
                f"(task.cpus={task_cpus})"
            )
        return out

    def _speed_of(self, worker_index: int) -> float:
        if worker_index < len(self.worker_speeds):
            return self.worker_speeds[worker_index]
        return 1.0

    # ------------------------------------------------------------ capacities
    @property
    def total_task_slots(self) -> int:
        """Concurrent tasks the whole cluster can run — the C of Algorithm 1."""
        return sum(ex.task_slots for ex in self.executors)

    def slot_capacities(self) -> list[float]:
        """One relative speed per live task slot, in executor/slot order.

        This is the capacity vector :func:`repro.core.tiling.tile_weighted`
        consumes; the order matches the scheduler's earliest-available,
        first-executor-wins placement, so slot-major weighted tiles land on
        the slots they were sized for.
        """
        return [ex.speed
                for ex in self.executors if not ex.is_dead
                for _ in range(ex.task_slots)]

    @property
    def total_vcpus(self) -> int:
        return sum(ex.vcpus for ex in self.executors)

    @property
    def total_physical_cores(self) -> int:
        return sum(ex.physical_cores for ex in self.executors)

    @property
    def active_worker_nodes(self) -> int:
        return len(self.executors)

    def default_parallelism(self) -> int:
        conf_val = self.conf.default_parallelism
        return conf_val if conf_val > 0 else self.total_task_slots

    def reset_pools(self) -> None:
        """Free all executor slots at the current clock (between jobs)."""
        for ex in self.executors:
            if not ex.is_dead:
                ex.pool.reset(self.clock.now)

    def replace_executor(self, worker_id: str, now: float | None = None) -> Executor:
        """Swap in a fresh executor for a lost worker (spot replacement).

        The replacement keeps the node's shape but gets a new identity
        (``worker-3`` becomes ``worker-3+1``) — a replacement spot instance
        is a new machine, so fault plans targeting the old id do not apply
        to it, and any degraded ``speed`` of the lost node does not carry
        over (a fresh instance runs at full speed).  Its slots are free from
        ``now`` on.
        """
        when = self.clock.now if now is None else now
        for i, ex in enumerate(self.executors):
            if ex.worker_id == worker_id:
                base, _, gen = worker_id.partition("+")
                new_id = f"{base}+{int(gen or 0) + 1}"
                fresh = Executor(worker_id=new_id, vcpus=ex.vcpus,
                                 task_cpus=ex.task_cpus, heap_bytes=ex.heap_bytes)
                fresh.pool.reset(when)
                self.executors[i] = fresh
                return fresh
        raise ValueError(f"no executor {worker_id!r} in this cluster")

    @classmethod
    def for_physical_cores(
        cls,
        physical_cores: int,
        n_workers: int = 16,
        shape: WorkerShape | None = None,
        conf: SparkConf | None = None,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
        worker_speeds: Sequence[float] | None = None,
    ) -> "SparkCluster":
        """The paper's experimental knob: limit a 16-worker cluster to
        ``physical_cores`` dedicated cores via spark.cores.max (2 vCPUs per
        core, spark.task.cpus=2)."""
        conf = (conf if conf is not None else SparkConf()).copy()
        conf.set("spark.task.cpus", 2)
        conf.set("spark.cores.max", physical_cores * 2)
        conf.set("spark.default.parallelism", physical_cores)
        return cls(n_workers=n_workers, shape=shape, conf=conf, network=network,
                   clock=clock, worker_speeds=worker_speeds)
