"""Columnar task state for the Spark scheduler.

A 10,000-worker cluster running ~1M tiles cannot afford one :class:`Task`
dataclass, one :class:`TaskResult` dataclass and several interned label
strings per tile — at that scale object construction alone dominates the
simulation.  This module keeps the schedulable task set as a
:class:`TaskTable` of parallel numpy arrays (one row per tile) and
materializes :class:`Task`/:class:`TaskResult` objects **lazily**, only for
the rows that reports, journals, checkpoint commits or speculation logic
actually touch.

The dataclasses themselves stay the public API (tests and callers keep
constructing ``Task(...)`` lists; ``TaskScheduler.run_job`` accepts both a
``Sequence[Task]`` and a :class:`TaskTable`), and a materialized result is
bit-identical to what the historical object-per-task scheduler produced —
see docs/PERFORMANCE.md for the guarantee and the property test that pins it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence, overload

import numpy as np


@dataclass
class Task:
    """One schedulable unit: a tile of loop iterations (after Algorithm 1).

    Durations are split by phase so the timeline can reproduce Figure 5's
    decomposition; ``closure`` is executed for real in functional mode.
    """

    task_id: int
    split: int
    #: Stage label — the source loop this tile belongs to.  A fused region
    #: (docs/TASKGRAPH.md) submits one map stage per member loop under a
    #: single offload, so the label is what keeps each tile attributable to
    #: its member region in the timeline and exported traces.
    stage: str = ""
    compute_s: float = 0.0
    jni_s: float = 0.0
    decompress_s: float = 0.0
    compress_s: float = 0.0
    input_bytes: int = 0
    output_bytes: int = 0
    closure: Callable[[], Any] | None = None

    @property
    def slot_duration_s(self) -> float:
        return self.compute_s + self.jni_s + self.decompress_s + self.compress_s


@dataclass
class TaskResult:
    """Where and when one task ran, and what it produced."""

    task: Task
    worker_id: str
    start: float
    end: float
    value: Any = None
    attempts: int = 1
    collected_at: float = 0.0
    #: True when a speculative copy beat the original attempt.
    speculative: bool = False


class TaskTable:
    """A task set as parallel arrays, one row per tile.

    ``stage`` is a single label shared by every row (the common case — the
    driver labels one map stage per job) or a sequence of per-row labels
    (only when built from heterogeneous ``Task`` objects).  ``closures`` is
    ``None`` for modeled jobs; functional jobs carry one callable (or
    ``None``) per row.
    """

    __slots__ = ("task_id", "split", "compute_s", "jni_s", "decompress_s",
                 "compress_s", "input_bytes", "output_bytes", "stage",
                 "closures", "_tasks", "_materialized")

    def __init__(
        self,
        *,
        task_id: np.ndarray | Sequence[int],
        split: np.ndarray | Sequence[int],
        compute_s: np.ndarray | Sequence[float] | None = None,
        jni_s: np.ndarray | Sequence[float] | None = None,
        decompress_s: np.ndarray | Sequence[float] | None = None,
        compress_s: np.ndarray | Sequence[float] | None = None,
        input_bytes: np.ndarray | Sequence[int] | None = None,
        output_bytes: np.ndarray | Sequence[int] | None = None,
        stage: str | Sequence[str] = "",
        closures: Sequence[Callable[[], Any] | None] | None = None,
        tasks: Sequence[Task] | None = None,
    ) -> None:
        self.task_id = np.asarray(task_id, dtype=np.int64)
        n = len(self.task_id)

        def farr(x: Any) -> np.ndarray:
            return (np.zeros(n) if x is None
                    else np.asarray(x, dtype=np.float64))

        def iarr(x: Any) -> np.ndarray:
            return (np.zeros(n, dtype=np.int64) if x is None
                    else np.asarray(x, dtype=np.int64))

        self.split = iarr(split)
        self.compute_s = farr(compute_s)
        self.jni_s = farr(jni_s)
        self.decompress_s = farr(decompress_s)
        self.compress_s = farr(compress_s)
        self.input_bytes = iarr(input_bytes)
        self.output_bytes = iarr(output_bytes)
        for col in (self.split, self.compute_s, self.jni_s, self.decompress_s,
                    self.compress_s, self.input_bytes, self.output_bytes):
            if len(col) != n:
                raise ValueError(
                    f"column length mismatch: {len(col)} rows vs {n} task ids")
        if not isinstance(stage, str) and len(stage) != n:
            raise ValueError(f"need one stage per row, got {len(stage)} for {n}")
        self.stage = stage
        self.closures = list(closures) if closures is not None else None
        self._tasks = tasks
        self._materialized: dict[int, Task] = {}

    @classmethod
    def from_tasks(cls, tasks: Sequence[Task]) -> "TaskTable":
        """Columnar view over existing ``Task`` objects (kept for lazy reuse)."""
        stages: str | list[str] = [t.stage for t in tasks]
        if all(s == "" for s in stages):
            stages = ""
        closures: list[Callable[[], Any] | None] | None
        closures = [t.closure for t in tasks]
        if all(c is None for c in closures):
            closures = None
        return cls(
            task_id=[t.task_id for t in tasks],
            split=[t.split for t in tasks],
            compute_s=[t.compute_s for t in tasks],
            jni_s=[t.jni_s for t in tasks],
            decompress_s=[t.decompress_s for t in tasks],
            compress_s=[t.compress_s for t in tasks],
            input_bytes=[t.input_bytes for t in tasks],
            output_bytes=[t.output_bytes for t in tasks],
            stage=stages,
            closures=closures,
            tasks=tasks,
        )

    def __len__(self) -> int:
        return len(self.task_id)

    def slot_durations(self) -> np.ndarray:
        """Per-row intended slot seconds, added in the same order as
        ``Task.slot_duration_s`` so the result is bit-identical."""
        return self.compute_s + self.jni_s + self.decompress_s + self.compress_s

    def stage_of(self, row: int) -> str:
        return self.stage if isinstance(self.stage, str) else self.stage[row]

    def closure_of(self, row: int) -> Callable[[], Any] | None:
        return self.closures[row] if self.closures is not None else None

    def task_obj(self, row: int) -> Task:
        """The ``Task`` for one row — the original object when this table was
        built from one, otherwise materialized (and cached) from the arrays."""
        if self._tasks is not None:
            return self._tasks[row]
        t = self._materialized.get(row)
        if t is None:
            t = Task(
                task_id=int(self.task_id[row]),
                split=int(self.split[row]),
                stage=self.stage_of(row),
                compute_s=float(self.compute_s[row]),
                jni_s=float(self.jni_s[row]),
                decompress_s=float(self.decompress_s[row]),
                compress_s=float(self.compress_s[row]),
                input_bytes=int(self.input_bytes[row]),
                output_bytes=int(self.output_bytes[row]),
                closure=self.closure_of(row),
            )
            self._materialized[row] = t
        return t


class LazyResults(Sequence[TaskResult]):
    """``JobStats.results`` at scale: a split-ordered sequence of
    :class:`TaskResult` materialized row by row on first access.

    The scheduler fills plain per-row columns (start/end/worker/...) during
    the run; consumers that index or iterate see exactly the objects the
    historical eager list held, but a modeled 1M-task run whose results are
    never touched allocates nothing.
    """

    __slots__ = ("_table", "_order", "_start", "_end", "_collected",
                 "_attempts", "_worker_pos", "_worker_ids", "_spec_rows",
                 "_values", "_cache")

    def __init__(
        self,
        table: TaskTable,
        *,
        order: Sequence[int] | None,
        start: Sequence[float],
        end: Sequence[float],
        collected_at: Sequence[float],
        attempts: Sequence[int],
        worker_pos: Sequence[int],
        worker_ids: Sequence[str],
        speculative_rows: set[int],
        values: list[Any] | None,
    ) -> None:
        self._table = table
        self._order = order  # result position -> row; None = identity
        self._start = start
        self._end = end
        self._collected = collected_at
        self._attempts = attempts
        self._worker_pos = worker_pos
        self._worker_ids = worker_ids
        self._spec_rows = speculative_rows
        self._values = values
        self._cache: dict[int, TaskResult] = {}

    def __len__(self) -> int:
        return len(self._table)

    def _row_result(self, row: int) -> TaskResult:
        res = self._cache.get(row)
        if res is None:
            res = TaskResult(
                task=self._table.task_obj(row),
                worker_id=self._worker_ids[self._worker_pos[row]],
                start=self._start[row],
                end=self._end[row],
                value=self._values[row] if self._values is not None else None,
                attempts=self._attempts[row],
                collected_at=self._collected[row],
                speculative=row in self._spec_rows,
            )
            self._cache[row] = res
        return res

    @overload
    def __getitem__(self, i: int) -> TaskResult: ...
    @overload
    def __getitem__(self, i: slice) -> list[TaskResult]: ...

    def __getitem__(self, i: int | slice) -> TaskResult | list[TaskResult]:
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        row = i if self._order is None else int(self._order[i])
        return self._row_result(row)

    def __iter__(self) -> Iterator[TaskResult]:
        n = len(self)
        order = self._order
        for i in range(n):
            yield self._row_result(i if order is None else int(order[i]))
