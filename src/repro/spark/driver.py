"""The Spark driver.

"The driver is in charge of communication with the outside world (i.e. host
computer), resource allocation and task scheduling."  Here it turns an RDD
action into a task set, runs it through the :class:`TaskScheduler`, and hands
back per-partition results plus the job's timeline and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs.events import JobEnd, JobStart, get_bus
from repro.simtime.timeline import Timeline
from repro.spark.broadcast import Broadcast
from repro.spark.faults import NO_FAULTS, FaultPlan
from repro.spark.rdd import RDD, MappedRDD, ParallelCollectionRDD
from repro.spark.schedule import STATIC_SCHEDULE, ScheduleConfig
from repro.spark.scheduler import (
    JobStats,
    SchedulerCosts,
    Task,
    TaskScheduler,
    TaskTable,
)
from repro.spark.serialization import sizeof_element

if True:  # keep import group tight for the type checker
    from repro.spark.cluster import SparkCluster


@dataclass
class TaskCosts:
    """Per-task simulated durations and payload sizes, supplied by the
    OmpCloud codegen in modeled runs (functional runs default to zero cost)."""

    compute_s: float = 0.0
    jni_s: float = 0.0
    decompress_s: float = 0.0
    compress_s: float = 0.0
    input_bytes: int = -1  # -1 = measure from the partition data
    output_bytes: int = -1  # -1 = measure from the result


@dataclass
class TaskCostsArrays:
    """Per-task costs for a whole modeled job, as parallel arrays.

    The vectorized codegen computes every tile's durations and payload sizes
    in one numpy pass; shipping them as arrays lets the driver build a
    columnar :class:`~repro.spark.tasktable.TaskTable` without a Python
    ``costs_for`` call (and a :class:`Task` object) per tile.  Negative byte
    counts mean "unknown" and clamp to 0, matching the scalar
    :class:`TaskCosts` sentinel semantics for modeled runs.
    """

    compute_s: np.ndarray
    jni_s: np.ndarray
    decompress_s: np.ndarray
    compress_s: np.ndarray
    input_bytes: np.ndarray
    output_bytes: np.ndarray

    def __len__(self) -> int:
        return len(self.compute_s)


@dataclass
class JobResult:
    """Everything a job produced."""

    partitions: list[list[Any]]
    stats: JobStats
    timeline: Timeline = field(default_factory=Timeline)

    @property
    def makespan_s(self) -> float:
        return self.stats.makespan_s


CostsFor = Callable[[int], TaskCosts]
PartitionPost = Callable[[list[Any]], list[Any]]


class Driver:
    """Driver-node logic shared by functional and modeled jobs."""

    def __init__(self, cluster: "SparkCluster", costs: SchedulerCosts | None = None) -> None:
        self.cluster = cluster
        self.scheduler = TaskScheduler(costs)
        self._job_seq = 0

    def run_job(
        self,
        rdd: RDD,
        partition_post: PartitionPost | None = None,
        costs_for: CostsFor | None = None,
        broadcasts: Sequence[Broadcast] = (),
        fault_plan: FaultPlan = NO_FAULTS,
        functional: bool = True,
        schedule: ScheduleConfig = STATIC_SCHEDULE,
        stage: str = "",
        costs_arrays: TaskCostsArrays | None = None,
    ) -> JobResult:
        """Execute ``rdd`` (optionally post-processing each partition).

        In functional mode the closures really run; task payload sizes are
        measured from the data unless ``costs_for`` overrides them.
        ``stage`` labels every task's timeline spans with the loop it tiles
        (fused offloads submit one stage per member loop).

        Modeled callers may pass ``costs_arrays`` instead of ``costs_for``:
        the whole task set is then submitted as one columnar
        :class:`TaskTable` — no per-tile ``Task`` objects, no per-tile costs
        callback.  The schedule produced is bit-identical either way.
        """
        self._job_seq += 1
        timeline = Timeline()
        n = rdd.num_partitions
        tasks: list[Task] | TaskTable
        if costs_arrays is not None and not functional:
            if len(costs_arrays) != n:
                raise ValueError(
                    f"costs_arrays has {len(costs_arrays)} rows for "
                    f"{n} partitions")
            splits = np.arange(n, dtype=np.int64)
            tasks = TaskTable(
                task_id=self._job_seq * 100_000 + splits,
                split=splits,
                compute_s=costs_arrays.compute_s,
                jni_s=costs_arrays.jni_s,
                decompress_s=costs_arrays.decompress_s,
                compress_s=costs_arrays.compress_s,
                input_bytes=np.maximum(
                    np.asarray(costs_arrays.input_bytes, dtype=np.int64), 0),
                output_bytes=np.maximum(
                    np.asarray(costs_arrays.output_bytes, dtype=np.int64), 0),
                stage=stage,
            )
        else:
            task_list: list[Task] = []
            for split in range(n):
                costs = costs_for(split) if costs_for is not None else TaskCosts()
                task = Task(
                    task_id=self._job_seq * 100_000 + split,
                    split=split,
                    stage=stage,
                    compute_s=costs.compute_s,
                    jni_s=costs.jni_s,
                    decompress_s=costs.decompress_s,
                    compress_s=costs.compress_s,
                    input_bytes=(
                        costs.input_bytes
                        if costs.input_bytes >= 0
                        else (self._measure_input_bytes(rdd, split) if functional else 0)
                    ),
                    output_bytes=max(costs.output_bytes, 0),
                )
                if functional:
                    task.closure = self._make_closure(rdd, split, partition_post, task,
                                                      costs.output_bytes < 0)
                task_list.append(task)
            tasks = task_list

        bus = get_bus()
        bus.emit(JobStart(time=self.cluster.clock.now, resource="driver",
                          job_id=self._job_seq, tasks=n))
        stats = self.scheduler.run_job(
            tasks,
            executors=self.cluster.executors,
            network=self.cluster.network,
            clock=self.cluster.clock,
            timeline=timeline,
            broadcasts=broadcasts,
            fault_plan=fault_plan,
            functional=functional,
            schedule=schedule,
        )
        bus.emit(JobEnd(time=self.cluster.clock.now, resource="driver",
                        job_id=self._job_seq, makespan_s=stats.makespan_s,
                        tasks_recomputed=stats.recomputed_tasks))
        if isinstance(tasks, TaskTable):
            # Modeled columnar jobs have no values; don't materialize 1M
            # TaskResult objects just to read None from each.  The empty
            # list is shared — partitions of a modeled job are never mutated.
            partitions: list[list[Any]] = [[]] * n
        else:
            partitions = [r.value if r.value is not None else []
                          for r in stats.results]
        return JobResult(partitions=partitions, stats=stats, timeline=timeline)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _make_closure(
        rdd: RDD,
        split: int,
        partition_post: PartitionPost | None,
        task: Task,
        measure_output: bool,
    ) -> Callable[[], list[Any]]:
        def closure() -> list[Any]:
            data = rdd.iterator(split)
            if partition_post is not None:
                data = partition_post(data)
            if measure_output:
                task.output_bytes = sum(sizeof_element(x) for x in data)
            return data

        return closure

    @staticmethod
    def _measure_input_bytes(rdd: RDD, split: int) -> int:
        """Bytes that must move driver -> executor for this partition: the
        source collection's slice (narrow transformations recompute the rest
        on the worker)."""
        node = rdd
        while isinstance(node, MappedRDD):
            node = node.parent
        if isinstance(node, ParallelCollectionRDD):
            return sum(sizeof_element(x) for x in node.compute(split))
        return 0
