"""Broadcast variables.

Unpartitioned inputs (matrix ``B`` in the paper's running example) are sent
to every worker node once: "the communication overhead will be limited by the
efficiency of BitTorrent protocol used by Spark to broadcast variables".  The
value lives on the driver; executors receive a reference and the network cost
model charges one BitTorrent distribution per job that reads it.
"""

from __future__ import annotations

import itertools
from typing import Generic, TypeVar

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only variable shipped once per node.

    ``nbytes`` drives the cost model; in functional mode it is measured from
    the value, in modeled mode the caller supplies it for a virtual payload.
    """

    _ids = itertools.count()

    def __init__(self, value: T, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative broadcast size {nbytes!r}")
        self.id = next(Broadcast._ids)
        self._value: T | None = value
        self.nbytes = nbytes
        self._destroyed = False
        #: Nodes that already hold the blocks (filled in by the scheduler).
        self.nodes_seeded: set[str] = set()

    @property
    def value(self) -> T:
        if self._destroyed:
            raise RuntimeError(f"broadcast {self.id} was destroyed")
        return self._value  # type: ignore[return-value]

    def destroy(self) -> None:
        """Release the blocks everywhere (irreversible, like Spark)."""
        self._destroyed = True
        self._value = None
        self.nodes_seeded.clear()

    @property
    def is_destroyed(self) -> bool:
        return self._destroyed

    def __repr__(self) -> str:  # pragma: no cover
        return f"Broadcast(id={self.id}, nbytes={self.nbytes}, destroyed={self._destroyed})"
