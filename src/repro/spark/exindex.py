"""Earliest-free executor selection in O(log n).

The historical ``TaskScheduler._pick_executor`` linearly scanned every
executor per task — O(workers × tasks) over a job, the dominant cost at
cluster scale (10,000 workers × 1M tasks is 10^10 key evaluations).  This
index keeps the same *observable* choice while doing amortized O(log n)
work per pick.

Exact selection semantics being preserved (bit-identity with the scan):

* any executor whose pool is already free at ``ready`` beats every busy one,
  and among those the **first in executor-list order** wins;
* otherwise the executor with minimal ``(earliest_free, position)`` wins —
  the scan's strict ``<`` keeps the first of equals.

Two heaps express that exactly: ``_free`` holds bare positions known free at
the high-water ``ready`` (min-heap = lowest position first), ``_busy`` holds
``(earliest_free-snapshot, position)`` with lazy revalidation — a snapshot
that no longer matches the pool is refreshed on contact, so stale entries
are harmless and no explicit invalidation hooks are needed.

The fast path assumes ``ready`` queries arrive in nondecreasing order, which
holds for the driver's launch/scatter cursor.  A query *below* the
high-water mark (speculative copies probe at watch times in the past, retry
paths after failure detection) falls back to the exact linear scan — rare by
construction, so the common path stays logarithmic.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spark.executor import Executor


class ExecutorIndex:
    """Per-job priority structure over one fixed executor list."""

    __slots__ = ("executors", "_free", "_busy", "_hw")

    def __init__(self, executors: Sequence["Executor"]) -> None:
        self.executors = executors
        self._free: list[int] = []
        self._busy: list[tuple[float, int]] = [
            (ex.pool.earliest_free(), i)
            for i, ex in enumerate(executors) if not ex.is_dead
        ]
        heapq.heapify(self._busy)
        self._hw = float("-inf")

    def pick(self, ready: float) -> "Executor | None":
        """Best executor for a task runnable at ``ready`` (None = all dead)."""
        if ready < self._hw:
            return self._scan(ready, None)  # non-monotone query: exact path
        self._hw = ready
        execs = self.executors
        busy, free = self._busy, self._free
        # Migrate every executor whose pool is free at `ready` into the
        # position heap (snapshots only ever lag reality, so anything truly
        # free has an entry at or below `ready` here).
        while busy and busy[0][0] <= ready:
            _, i = heapq.heappop(busy)
            ex = execs[i]
            if ex.is_dead:
                continue
            cf = ex.pool.earliest_free()
            if cf <= ready:
                heapq.heappush(free, i)
            else:
                heapq.heappush(busy, (cf, i))
        # Lowest-position free executor wins; revalidate on pop (its pool may
        # have been reserved since it was drained).
        while free:
            i = heapq.heappop(free)
            ex = execs[i]
            if ex.is_dead:
                continue
            cf = ex.pool.earliest_free()
            heapq.heappush(busy, (cf, i))
            if cf <= ready:
                return ex
        # Nobody is free: earliest (earliest_free, position) among busy.
        while busy:
            f, i = busy[0]
            ex = execs[i]
            if ex.is_dead:
                heapq.heappop(busy)
                continue
            cf = ex.pool.earliest_free()
            if cf != f:
                heapq.heapreplace(busy, (cf, i))
                continue
            return ex
        return None

    def pick_excluding(self, ready: float,
                       exclude: "Executor") -> "Executor | None":
        """Best executor that is not ``exclude`` (speculative copies).

        Speculation probes at watch times unrelated to the launch cursor, so
        this is always the exact scan — it neither consults nor moves the
        high-water mark.
        """
        return self._scan(ready, exclude)

    def _scan(self, ready: float,
              exclude: "Executor | None") -> "Executor | None":
        best: "Executor | None" = None
        best_start = float("inf")
        for ex in self.executors:
            if ex.is_dead or ex is exclude:
                continue
            est = max(ex.pool.earliest_free(), ready)
            if est < best_start:
                best, best_start = ex, est
        return best
