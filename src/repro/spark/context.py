"""SparkContext: the user-facing entry point of the substrate.

Mirrors pyspark's surface for the operations the OmpCloud job generator
emits: ``parallelize``, ``broadcast``, and job execution for RDD actions.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.simtime.timeline import Timeline
from repro.spark.accumulators import Accumulator
from repro.spark.broadcast import Broadcast
from repro.spark.logging import SparkLog
from repro.spark.cluster import SparkCluster
from repro.spark.driver import Driver, JobResult, TaskCosts
from repro.spark.faults import NO_FAULTS, FaultPlan
from repro.spark.rdd import RDD, ParallelCollectionRDD
from repro.spark.scheduler import SchedulerCosts
from repro.spark.serialization import sizeof_element


class SparkContext:
    """Owns the cluster connection, accumulates job timelines."""

    def __init__(
        self,
        cluster: SparkCluster | None = None,
        scheduler_costs: SchedulerCosts | None = None,
        fault_plan: FaultPlan = NO_FAULTS,
    ) -> None:
        self.cluster = cluster if cluster is not None else SparkCluster(n_workers=2)
        self.driver = Driver(self.cluster, scheduler_costs)
        self.fault_plan = fault_plan
        self.timeline = Timeline()
        self.log = SparkLog()
        self._broadcasts: list[Broadcast] = []
        self.jobs_run = 0

    # ------------------------------------------------------------------ API
    def parallelize(self, data: Sequence[Any], num_slices: int | None = None) -> RDD:
        """Distribute a driver-side collection (Eq. 1: ``RDD_IN``)."""
        n = num_slices if num_slices is not None else self.cluster.default_parallelism()
        if n < 1:
            raise ValueError(f"num_slices must be >= 1, got {n}")
        return ParallelCollectionRDD(self, data, min(n, max(len(data), 1)))

    def accumulator(self, initial: Any = 0, op=None, name: str = "") -> Accumulator:
        """Create a write-only-from-tasks accumulator (sums by default)."""
        import operator

        return Accumulator(initial, op=op or operator.add, name=name)

    def broadcast(self, value: Any, nbytes: int | None = None) -> Broadcast:
        """Register a broadcast variable (size measured unless given)."""
        bc = Broadcast(value, nbytes if nbytes is not None else sizeof_element(value))
        self._broadcasts.append(bc)
        return bc

    def run_job(
        self,
        rdd: RDD,
        partition_post: Callable[[list[Any]], list[Any]] | None = None,
        costs_for: Callable[[int], TaskCosts] | None = None,
        functional: bool = True,
    ) -> list[list[Any]]:
        """Execute an action; returns per-partition results (used by RDD)."""
        result = self.run_job_detailed(rdd, partition_post, costs_for, functional)
        return result.partitions

    def run_job_detailed(
        self,
        rdd: RDD,
        partition_post: Callable[[list[Any]], list[Any]] | None = None,
        costs_for: Callable[[int], TaskCosts] | None = None,
        functional: bool = True,
    ) -> JobResult:
        """Like :meth:`run_job` but returns timings and stats too."""
        self.jobs_run += 1
        self.log.info(self.clock.now, "DAGScheduler",
                      f"Submitting job {self.jobs_run} with {rdd.num_partitions} tasks")
        result = self.driver.run_job(
            rdd,
            partition_post=partition_post,
            costs_for=costs_for,
            broadcasts=tuple(b for b in self._broadcasts if not b.is_destroyed),
            fault_plan=self.fault_plan,
            functional=functional,
        )
        self.timeline.extend(result.timeline)
        self.log.info(self.clock.now, "DAGScheduler",
                      f"Job {self.jobs_run} finished in {result.makespan_s:.3f} s "
                      f"({result.stats.recomputed_tasks} task(s) recomputed)")
        return result

    # ------------------------------------------------------------ inspection
    @property
    def default_parallelism(self) -> int:
        return self.cluster.default_parallelism()

    @property
    def clock(self):
        return self.cluster.clock

    def stop(self) -> None:
        """Release broadcasts (the cluster object may be reused)."""
        for bc in self._broadcasts:
            if not bc.is_destroyed:
                bc.destroy()
        self._broadcasts.clear()
