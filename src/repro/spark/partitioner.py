"""Range partitioning (Eq. 3 of the paper).

The driver divides ``RDD_IN`` "automatically ... in equal parts" among the
workers: worker ``w`` gets iterations ``w*floor(N/W) .. (w+1)*floor(N/W)-1``.
A literal reading strands the last ``N mod W`` iterations, so — like Spark's
``ParallelCollectionRDD.slice`` — the remainder is spread one extra element
per leading partition, preserving the paper's "equal parts" intent while
covering the whole range.  The exact-cover property is what the hypothesis
tests pin down.
"""

from __future__ import annotations


def range_partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous [lo, hi) chunks.

    Chunk sizes differ by at most one; empty chunks appear only when
    ``parts > n``.  Concatenating all chunks reproduces ``range(n)`` exactly.

    >>> range_partition(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    if n < 0:
        raise ValueError(f"cannot partition a negative range ({n})")
    if parts < 1:
        raise ValueError(f"need at least one partition, got {parts}")
    base, extra = divmod(n, parts)
    out: list[tuple[int, int]] = []
    lo = 0
    for p in range(parts):
        hi = lo + base + (1 if p < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def owner_of(index: int, n: int, parts: int) -> int:
    """Partition number that holds element ``index`` under :func:`range_partition`."""
    if not 0 <= index < n:
        raise IndexError(f"index {index} outside range({n})")
    base, extra = divmod(n, parts)
    boundary = extra * (base + 1)
    if index < boundary:
        return index // (base + 1)
    if base == 0:
        raise IndexError(f"index {index} beyond the populated partitions")
    return extra + (index - boundary) // base
