"""Serialization helpers and the JVM array ceiling.

Spark ships data between driver and executors as byte arrays; OmpCloud loads
each mapped buffer "as ByteArray objects".  Java arrays are indexed by
``int``, so a single array tops out just below 2^31 elements — the paper hits
exactly this wall: "we were limited by the maximal size of the arrays
supported by the Java Virtual Machine".  :func:`check_jvm_array_limit` makes
that failure mode explicit in the reproduction.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

#: Largest byte[] a HotSpot JVM will allocate (Integer.MAX_VALUE - 8 header words).
JVM_MAX_ARRAY_BYTES = 2**31 - 16


class JavaArrayLimitError(Exception):
    """A single buffer exceeds what a JVM byte[] can hold."""


def check_jvm_array_limit(nbytes: int, what: str = "buffer") -> None:
    """Raise :class:`JavaArrayLimitError` if ``nbytes`` exceeds the JVM cap."""
    if nbytes > JVM_MAX_ARRAY_BYTES:
        raise JavaArrayLimitError(
            f"{what} is {nbytes} bytes; the JVM cannot allocate arrays over "
            f"{JVM_MAX_ARRAY_BYTES} bytes (the paper's experiments hit the same limit)"
        )


def serialize(obj: Any) -> bytes:
    """Driver<->executor closure/element serialization (pickle stands in for
    Java serialization; the cost model charges for the byte volume, not the
    codec)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize(data: bytes) -> Any:
    return pickle.loads(data)


def array_to_bytes(arr: np.ndarray) -> bytes:
    """Flatten an ndarray into the binary-file format OmpCloud stages."""
    return np.ascontiguousarray(arr).tobytes()


def bytes_to_array(data: bytes, dtype: np.dtype | str, shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Inverse of :func:`array_to_bytes`."""
    arr = np.frombuffer(data, dtype=dtype).copy()
    if shape is not None:
        arr = arr.reshape(shape)
    return arr


def sizeof_element(obj: Any) -> int:
    """Approximate wire size of one RDD element for the cost model.

    ndarrays dominate in this workload; other objects fall back to pickle
    length (exact but slower, fine for small elements).
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, tuple):
        return sum(sizeof_element(x) for x in obj)
    if isinstance(obj, (int, float, bool)) or obj is None:
        return 8
    return len(serialize(obj))
