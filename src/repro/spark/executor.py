"""Spark executors.

Each worker node runs one executor JVM "that manages all 32 vCPUs and a heap
size of 40GB"; with ``spark.task.cpus=2`` it offers 16 concurrent task slots —
one per physical core.  The executor owns a :class:`SlotPool` for simulated
scheduling and really runs task closures for functional jobs.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.events import ExecutorLost, get_bus
from repro.simtime.resources import Reservation, SlotPool
from repro.spark.accumulators import TaskAccumulatorScope


class ExecutorLostError(Exception):
    """Raised when a task lands on a failed executor (functional mode)."""


class Executor:
    """One executor JVM on one worker node."""

    def __init__(
        self,
        worker_id: str,
        vcpus: int,
        task_cpus: int = 1,
        heap_bytes: int = 40 * 1024**3,
        speed: float = 1.0,
    ) -> None:
        if vcpus < 1:
            raise ValueError(f"executor needs >= 1 vCPU, got {vcpus}")
        if task_cpus < 1:
            raise ValueError(f"task_cpus must be >= 1, got {task_cpus}")
        if task_cpus > vcpus:
            raise ValueError(
                f"task_cpus={task_cpus} exceeds executor vcpus={vcpus}; no task could run"
            )
        if not speed > 0.0:
            raise ValueError(f"executor speed must be > 0, got {speed!r}")
        self.worker_id = worker_id
        self.vcpus = vcpus
        self.task_cpus = task_cpus
        self.heap_bytes = heap_bytes
        #: Relative per-core throughput (1.0 = the calibrated c3.8xlarge core).
        #: A degraded or older node runs every slot duration at 1/speed; the
        #: default of exactly 1.0 divides out bit-identically, so homogeneous
        #: clusters are unchanged.
        self.speed = speed
        self.pool = SlotPool(self.task_slots, label=worker_id)
        self.tasks_executed = 0
        self._dead = False

    @property
    def task_slots(self) -> int:
        """Concurrent tasks this executor can run (floor(vcpus / task_cpus))."""
        return self.vcpus // self.task_cpus

    @property
    def physical_cores(self) -> int:
        """Dedicated cores, assuming 2-way hyper-threading (paper's EC2 note)."""
        return self.vcpus // 2

    # -------------------------------------------------------------- failures
    def mark_dead(self, now: float = 0.0, reason: str = "") -> None:
        """Blacklist this executor: no further reservations or closures."""
        if not self._dead:
            get_bus().emit(ExecutorLost(time=now, resource=self.worker_id,
                                        worker=self.worker_id, reason=reason))
        self._dead = True
        for slot in self.pool.slots:
            slot.free_at = float("inf")
        self.pool.invalidate_cache()

    @property
    def is_dead(self) -> bool:
        return self._dead

    # ------------------------------------------------------------- execution
    def reserve(self, ready_at: float, duration: float) -> Reservation:
        """Reserve a slot; ``duration`` is scaled by this node's ``speed``."""
        if self._dead:
            raise ExecutorLostError(f"{self.worker_id} is dead")
        return self.pool.acquire(ready_at, duration / self.speed)

    def run_closure(self, fn: Callable[[], Any]) -> Any:
        """Really execute a task closure (functional mode).

        Increments the task counter first so fault plans can target "the Nth
        task executed on this worker".  Accumulator contributions are
        buffered for the duration of the closure and committed only on
        success — Spark's exactly-once-for-successful-tasks guarantee.
        """
        if self._dead:
            raise ExecutorLostError(f"{self.worker_id} is dead")
        self.tasks_executed += 1
        scope = TaskAccumulatorScope()
        with scope:
            try:
                result = fn()
            except BaseException:
                scope.discard()
                raise
        scope.commit()
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Executor({self.worker_id}, vcpus={self.vcpus}, "
            f"slots={self.task_slots}, dead={self._dead})"
        )
