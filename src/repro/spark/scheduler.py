"""Task scheduling.

The driver "is in charge of ... resource allocation and task scheduling".
This scheduler reproduces the cost structure of Spark's TaskSchedulerImpl for
the one-stage DOALL jobs OmpCloud generates:

* task launches are **serialized through the driver** (closure serialization +
  RPC), so per-task overhead scales with the task count — the reason the
  paper tiles loops down to one task per core (Algorithm 1);
* partition payloads scatter to executors through the **driver NIC**, modelled
  as a serial resource;
* broadcasts are charged once per job via the BitTorrent model;
* results stream back through the same NIC (``collect``);
* executor failures (from a :class:`~repro.spark.faults.FaultPlan`) trigger
  re-execution on surviving executors, up to ``spark.task.maxFailures``
  attempts — lineage recomputation in RDD terms.

A :class:`~repro.spark.schedule.ScheduleConfig` unlocks the adaptive layer
(all off by default, see ``docs/SCHEDULING.md``): speculative copies for
stragglers (``spark.speculation`` semantics, first result wins) and a
pipelined collect path that streams results through NIC idle gaps between
scatters instead of the strict end-of-job barrier.

Everything is accounted on a :class:`~repro.simtime.timeline.Timeline` with
the phases Figure 5 of the paper stacks.

Scale notes (docs/PERFORMANCE.md): the job loop runs over a columnar
:class:`~repro.spark.tasktable.TaskTable` (plain scalars in the hot loop, no
per-task dataclass), picks executors through the amortized-O(log n)
:class:`~repro.spark.exindex.ExecutorIndex`, orders collects with one
``np.lexsort`` instead of repeated ``sorted(results, ...)`` passes, and
materializes :class:`TaskResult` objects lazily.  All of it is bit-identical
to the historical object-per-task implementation — scheduling order is
observable through reports, journals and traces, and a property test pins
the equivalence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.cloud.network import NetworkModel
from repro.obs.events import (SpeculationWon, TaskEnd, TaskSpeculated,
                              TaskStart, get_bus)
from repro.simtime.clock import SimClock
from repro.simtime.timeline import Phase, Timeline
from repro.spark.broadcast import Broadcast
from repro.spark.executor import Executor, ExecutorLostError
from repro.spark.exindex import ExecutorIndex
from repro.spark.faults import NO_FAULTS, FaultPlan
from repro.spark.schedule import STATIC_SCHEDULE, ScheduleConfig
from repro.spark.tasktable import LazyResults, Task, TaskResult, TaskTable

__all__ = [
    "MAX_TASK_FAILURES",
    "JobFailedError",
    "SchedulerCosts",
    "Task",
    "TaskResult",
    "TaskTable",
    "JobStats",
    "TaskScheduler",
]

#: Spark's default spark.task.maxFailures.
MAX_TASK_FAILURES = 4


def _agg_entry(agg: dict, phase: Phase, resource: str) -> list:
    """Get-or-create one coarse aggregate ([count, min, max, busy]) entry.

    Entries start at the identity ([0, +inf, -inf, 0.0]) and are only ever
    created immediately before a :func:`_bump`, so no empty group is ever
    visible — the aggregate ends up element-for-element identical to what
    ``Timeline.record`` would have built span by span.
    """
    key = (phase, resource)
    e = agg.get(key)
    if e is None:
        e = agg[key] = [0, float("inf"), float("-inf"), 0.0]
    return e


def _bump(e: list, start: float, end: float) -> None:
    """Fold one span into a coarse aggregate entry (same math as
    ``Timeline.record``'s coarse path, minus the call overhead)."""
    e[0] += 1
    if start < e[1]:
        e[1] = start
    if end > e[2]:
        e[2] = end
    e[3] += end - start


class JobFailedError(Exception):
    """A task exhausted its attempts or no executor survives."""


@dataclass
class SchedulerCosts:
    """Driver-side constants (calibrated in :mod:`repro.perfmodel.calibration`)."""

    #: Closure serialization + launch RPC per task, on the driver.
    task_launch_s: float = 0.004
    #: Heartbeat-based failure detection latency.
    failure_detect_s: float = 2.0


@dataclass
class JobStats:
    """Aggregates the benches report."""

    tasks: int = 0
    recomputed_tasks: int = 0
    broadcast_s: float = 0.0
    makespan_s: float = 0.0
    speculated_tasks: int = 0
    speculation_wins: int = 0
    speculation_saved_s: float = 0.0
    results: Sequence[TaskResult] = field(default_factory=list)


class TaskScheduler:
    """Schedules one job's task set onto a fixed executor group."""

    def __init__(self, costs: SchedulerCosts | None = None) -> None:
        self.costs = costs if costs is not None else SchedulerCosts()

    def run_job(
        self,
        tasks: Sequence[Task] | TaskTable,
        executors: Sequence[Executor],
        network: NetworkModel,
        clock: SimClock,
        timeline: Timeline,
        broadcasts: Sequence[Broadcast] = (),
        fault_plan: FaultPlan = NO_FAULTS,
        functional: bool = True,
        schedule: ScheduleConfig = STATIC_SCHEDULE,
    ) -> JobStats:
        """Run all tasks; advances ``clock`` to job completion.

        ``tasks`` is either a sequence of :class:`Task` objects or a columnar
        :class:`TaskTable` (what the modeled codegen submits at scale).
        Returns per-task results ordered by ``split``.
        """
        job = _JobRun(self.costs, tasks, executors, network, clock, timeline,
                      fault_plan, functional, schedule)
        return job.run(broadcasts)


class _JobRun:
    """One job's mutable scheduling state (built per ``run_job`` call)."""

    def __init__(
        self,
        costs: SchedulerCosts,
        tasks: Sequence[Task] | TaskTable,
        executors: Sequence[Executor],
        network: NetworkModel,
        clock: SimClock,
        timeline: Timeline,
        fault_plan: FaultPlan,
        functional: bool,
        schedule: ScheduleConfig,
    ) -> None:
        self.costs = costs
        self.table = (tasks if isinstance(tasks, TaskTable)
                      else TaskTable.from_tasks(tasks))
        self.executors = executors
        self.network = network
        self.clock = clock
        self.timeline = timeline
        self.fault_plan = fault_plan
        self.functional = functional
        self.schedule = schedule
        self.stats = JobStats(tasks=len(self.table))
        self.index = ExecutorIndex(executors)
        #: Fine timelines carry per-task labels; coarse ones aggregate and
        #: ignore labels, so the hot loop skips building the f-strings and
        #: updates the timeline's aggregate dict in place (same math as
        #: ``Timeline.record``, without a method call per span).
        self.fine = not timeline.coarse
        self.agg = timeline._agg
        #: (id(executor) -> [entry or None] * 4) coarse aggregate entries for
        #: the four per-task worker phases, created lazily per executor.
        self._ex_entries: dict[int, list] = {}
        #: Fault bookkeeping is all dict probes; an empty plan (the common
        #: case) skips them entirely.
        self.no_faults = fault_plan is NO_FAULTS or fault_plan.empty
        self.bus = get_bus()

        n = len(self.table)
        durations = self.table.slot_durations()
        # Straggler threshold base: the median of the *intended* slot
        # durations (what Spark estimates from the task set), not the
        # speed-degraded actuals — a slow node must look like a straggler.
        self.median_s = float(np.median(durations)) if n else 0.0
        # Hot-loop columns as plain Python scalars (attribute/ndarray access
        # per task would dominate at 1M rows).
        self.dur = durations.tolist()
        self.tid = self.table.task_id.tolist()
        self.in_b = self.table.input_bytes.tolist()
        self.out_b = self.table.output_bytes.tolist()
        self.dec_s = self.table.decompress_s.tolist()
        self.jni_s = self.table.jni_s.tolist()
        self.cmp_s = self.table.compute_s.tolist()
        self.cpr_s = self.table.compress_s.tolist()
        # Result columns, filled as rows complete.
        self.r_start = [0.0] * n
        self.r_end = [0.0] * n
        self.r_collected = [0.0] * n
        self.r_attempts = [1] * n
        self.r_worker = [0] * n
        self.spec_rows: set[int] = set()
        self.values: list[Any] | None = (
            [None] * n if self.table.closures is not None else None)
        #: Worker-id snapshot at job start; results reference positions so a
        #: post-job ``replace_executor`` cannot rewrite history.
        self.worker_ids = [ex.worker_id for ex in executors]
        self.pos_of = {id(ex): i for i, ex in enumerate(executors)}

    # --------------------------------------------------------------- the job
    def run(self, broadcasts: Sequence[Broadcast]) -> JobStats:
        alive = [ex for ex in self.executors if not ex.is_dead]
        if not alive:
            raise JobFailedError("no alive executors")
        clock, timeline, network = self.clock, self.timeline, self.network
        schedule, stats, fine = self.schedule, self.stats, self.fine
        t0 = clock.now

        # ------------------------------------------------------- broadcasts
        ready0 = t0
        worker_ids = {ex.worker_id for ex in alive}
        for bc in broadcasts:
            missing = worker_ids - bc.nodes_seeded
            if not missing or bc.nbytes == 0:
                continue
            dt = network.broadcast_time(bc.nbytes, len(missing), bittorrent=True)
            timeline.record(Phase.BROADCAST, ready0, ready0 + dt, resource="cluster",
                            label=f"broadcast-{bc.id}")
            bc.nodes_seeded |= missing
            stats.broadcast_s += dt
            ready0 += dt

        # -------------------------------------------- launch + scatter + run
        n = len(self.table)
        launch_s = self.costs.task_launch_s
        record = timeline.record
        lan_time = network.lan_transfer_time
        tid, in_b, out_b = self.tid, self.in_b, self.out_b
        functional_rows = self.values is not None
        pipelined = schedule.pipelined
        driver_cursor = ready0
        nic_cursor = ready0
        agg = self.agg
        e_sched = (_agg_entry(agg, Phase.SCHEDULING, "driver")
                   if agg is not None and n else None)
        e_intra = None
        #: Pipelined mode: scattered rows whose result is due, as a heap of
        #: (end, task_id, row) — pop order is exactly the historical
        #: ``min(uncollected, key=(end, task_id))`` scan.
        uncollected: list[tuple[float, int, int]] = []
        for row in range(n):
            launch_start = driver_cursor
            driver_cursor += launch_s
            if e_sched is not None:
                _bump(e_sched, launch_start, driver_cursor)
            else:
                record(Phase.SCHEDULING, launch_start, driver_cursor,
                       resource="driver",
                       label=f"launch-{tid[row]}" if fine else "")
            ready = driver_cursor
            if in_b[row] > 0:
                if pipelined:
                    # Back-pressure: at most pipeline_depth results may sit
                    # uncollected before the NIC must drain one.
                    while len(uncollected) >= schedule.pipeline_depth:
                        nic_cursor = self._collect_one(uncollected, nic_cursor)
                    # Opportunistic overlap: any finished result whose
                    # transfer fits in the NIC gap before this scatter
                    # streams back now, while other tiles still compute.
                    while uncollected:
                        nxt_end, _, nxt_row = uncollected[0]
                        dt = lan_time(out_b[nxt_row])
                        if max(nxt_end, nic_cursor) + dt > ready:
                            break
                        nic_cursor = self._collect_one(uncollected, nic_cursor)
                x0 = ready if ready > nic_cursor else nic_cursor
                dt = lan_time(in_b[row])
                nic_cursor = x0 + dt
                if agg is not None:
                    if e_intra is None:
                        e_intra = _agg_entry(agg, Phase.INTRA_TRANSFER,
                                             "driver-nic")
                    _bump(e_intra, x0, nic_cursor)
                else:
                    record(Phase.INTRA_TRANSFER, x0, nic_cursor,
                           resource="driver-nic",
                           label=f"scatter-{tid[row]}" if fine else "")
                ready = nic_cursor
            self._run_one(row, ready)
            if functional_rows:
                # A measuring closure rewrites the source task's output size;
                # the collect path must see the post-run value.
                src = self.table.task_obj(row)
                out_b[row] = src.output_bytes
            if pipelined:
                if out_b[row] > 0:
                    heapq.heappush(uncollected,
                                   (self.r_end[row], tid[row], row))
                else:
                    self.r_collected[row] = self.r_end[row]

        # ---------------------------------------------------------- collect
        collect_cursor = nic_cursor
        if pipelined:
            while uncollected:
                collect_cursor = self._collect_one(uncollected, collect_cursor)
        else:
            ends = np.array(self.r_end)
            e_coll = None
            for row in np.lexsort((self.table.task_id, ends)).tolist():
                if out_b[row] > 0:
                    end = self.r_end[row]
                    c0 = end if end > collect_cursor else collect_cursor
                    dt = lan_time(out_b[row])
                    collect_cursor = c0 + dt
                    if agg is not None:
                        if e_coll is None:
                            e_coll = _agg_entry(agg, Phase.COLLECT,
                                                "driver-nic")
                        _bump(e_coll, c0, collect_cursor)
                    else:
                        record(Phase.COLLECT, c0, collect_cursor,
                               resource="driver-nic",
                               label=f"collect-{tid[row]}" if fine else "")
                    self.r_collected[row] = collect_cursor
                else:
                    self.r_collected[row] = self.r_end[row]

        job_end = max(self.r_collected, default=ready0)
        clock.advance_to(max(job_end, clock.now))
        stats.makespan_s = job_end - t0
        stats.results = self._ordered_results()
        return stats

    def _ordered_results(self) -> LazyResults:
        """Results ordered by split — lazily materialized, and sorted only
        when splits are actually out of order (they almost never are: the
        driver emits tiles in split order)."""
        split = self.table.split
        order: np.ndarray | None = None
        if len(split) > 1 and not bool(np.all(split[1:] >= split[:-1])):
            order = np.argsort(split, kind="stable")
        return LazyResults(
            self.table,
            order=order,
            start=self.r_start,
            end=self.r_end,
            collected_at=self.r_collected,
            attempts=self.r_attempts,
            worker_pos=self.r_worker,
            worker_ids=self.worker_ids,
            speculative_rows=self.spec_rows,
            values=self.values,
        )

    # ------------------------------------------------------------ internals
    def _run_one(self, row: int, ready: float) -> None:
        fault_plan = self.fault_plan
        no_faults = self.no_faults
        duration = self.dur[row]
        closure = self.table.closure_of(row)
        attempts = 0
        while attempts < MAX_TASK_FAILURES:
            attempts += 1
            ex = self.index.pick(ready)
            if ex is None:
                raise JobFailedError("all executors are dead")
            res = ex.reserve(ready, duration)

            if not no_faults:
                # Worker already gone (death or spot preemption) before the
                # task could start: it never receives the reservation.
                # Blacklist and reschedule; no work was lost, so nothing is
                # recomputed.
                death = fault_plan.death_time(ex.worker_id)
                if death is not None and death < res.start:
                    ex.mark_dead(now=death, reason="dead before task start")
                    ready = max(ready, death + self.costs.failure_detect_s)
                    attempts -= 1  # not a task failure, only a placement miss
                    continue

                # Simulated-time death of the worker mid-task.  The task goes
                # silent at `death`; heartbeat detection notices at
                # death + failure_detect_s.  With speculation on, the driver
                # may notice the straggling (silent) task at multiplier x
                # median first and race a copy on another executor.
                if fault_plan.kills_reservation(ex.worker_id, res.start, res.end):
                    death_t = death if death is not None else res.start
                    ex.mark_dead(now=death_t, reason="died mid-task")
                    self.stats.recomputed_tasks += 1
                    if self.schedule.speculation and self.median_s > 0.0:
                        won = self._speculate(
                            row, ex, res.start,
                            attempts=attempts, original_end=None,
                            detect_at=death_t + self.costs.failure_detect_s)
                        if won:
                            return
                    ready = max(ready, death_t + self.costs.failure_detect_s)
                    continue

            # Functional failure injection: the Nth closure on this worker
            # raises.  An application crash is a *failure*, never a
            # straggler — speculation must not mask maxFailures exhaustion.
            value = None
            if self.functional and closure is not None:
                if not no_faults and fault_plan.should_raise(
                        ex.worker_id, ex.tasks_executed + 1):
                    ex.tasks_executed += 1
                    ex.mark_dead(now=res.start, reason="task crashed")
                    self.stats.recomputed_tasks += 1
                    midpoint = res.start + duration / 2.0
                    ready = max(ready, midpoint + self.costs.failure_detect_s)
                    continue
                try:
                    value = ex.run_closure(closure)
                except ExecutorLostError:
                    self.stats.recomputed_tasks += 1
                    ready = max(ready, res.end + self.costs.failure_detect_s)
                    continue

            # Straggler: the slot runs the task >= multiplier x median (a
            # degraded node, speed < 1).  Race a copy; first result wins.
            actual_s = res.end - res.start
            if (self.schedule.speculation and self.median_s > 0.0
                    and actual_s >= self.schedule.speculation_multiplier * self.median_s):
                won = self._speculate(
                    row, ex, res.start,
                    attempts=attempts, original_end=res.end,
                    detect_at=float("inf"), value=value)
                if won:
                    # The losing original still occupies its slot to the end
                    # (Spark kills it, but the model bills the spent time);
                    # its spans stay on the timeline, unlabelled as a task
                    # completion — no TaskEnd is emitted for a killed copy.
                    self._record_task_spans(row, res.start, ex)
                    return

            self._record_task_spans(row, res.start, ex)
            if self.bus.is_active:
                tid = self.tid[row]
                self.bus.emit(TaskStart(time=res.start, resource=ex.worker_id,
                                        task_id=tid, worker=ex.worker_id))
                self.bus.emit(TaskEnd(time=res.end, resource=ex.worker_id,
                                      task_id=tid, worker=ex.worker_id,
                                      duration_s=duration / ex.speed,
                                      attempts=attempts))
            self.r_start[row] = res.start
            self.r_end[row] = res.end
            self.r_attempts[row] = attempts
            self.r_worker[row] = self.pos_of[id(ex)]
            if self.values is not None:
                self.values[row] = value
            return
        raise JobFailedError(
            f"task {self.tid[row]} failed {MAX_TASK_FAILURES} times; aborting job"
        )

    def _speculate(
        self,
        row: int,
        original: Executor,
        original_start: float,
        *,
        attempts: int,
        original_end: float | None,
        detect_at: float,
        value: Any = None,
    ) -> bool:
        """Try to rescue a straggling/silent task with a speculative copy.

        Fills the row's result columns and returns True when a copy wins;
        False when the copy is not launched (would not beat the original /
        detection) or itself fails — the caller then falls through to the
        ordinary retry path, so ``maxFailures`` accounting is never weakened.

        ``original_end`` is the instant the original attempt would finish
        (``None`` when the original died and will never finish, in which
        case ``detect_at`` is when heartbeat detection would fire instead).
        """
        schedule, fault_plan = self.schedule, self.fault_plan
        duration = self.dur[row]
        tid = self.tid[row]
        closure = self.table.closure_of(row)
        watch = original_start + schedule.speculation_multiplier * self.median_s
        if watch >= detect_at:
            return False  # heartbeat detection fires first; retry normally
        copy_ex = self.index.pick_excluding(watch, original)
        if copy_ex is None:
            return False  # nowhere else to run a copy
        launch_end = watch + self.costs.task_launch_s
        est_start = max(copy_ex.pool.earliest_free(), launch_end)
        est_end = est_start + duration / copy_ex.speed
        if original_end is not None and est_end >= original_end:
            return False  # the copy cannot win; Spark would not launch it

        copy = copy_ex.reserve(launch_end, duration)
        self.timeline.record(Phase.SPECULATION, watch, launch_end,
                             resource="driver",
                             label=f"speculate-{tid}" if self.fine else "")
        self.stats.speculated_tasks += 1
        bus = self.bus
        if bus.is_active:
            bus.emit(TaskSpeculated(time=watch, resource="driver",
                                    task_id=tid,
                                    worker=original.worker_id,
                                    copy_worker=copy_ex.worker_id,
                                    waited_s=watch - original_start,
                                    median_s=self.median_s))

        # The copy is as mortal as any task: the fault plan applies.
        copy_death = fault_plan.death_time(copy_ex.worker_id)
        if copy_death is not None and copy_death < copy.end:
            copy_ex.mark_dead(now=max(copy_death, 0.0),
                              reason="speculative copy lost")
            return False
        # Functional work runs on the copy only when the original never
        # finished; a straggling original already produced `value`, and
        # accumulators must commit exactly once per task.
        if self.functional and closure is not None and original_end is None:
            if fault_plan.should_raise(copy_ex.worker_id,
                                       copy_ex.tasks_executed + 1):
                copy_ex.tasks_executed += 1
                copy_ex.mark_dead(now=copy.start,
                                  reason="speculative copy crashed")
                return False
            try:
                value = copy_ex.run_closure(closure)
            except ExecutorLostError:
                return False

        # First result wins.  `saved` is what the tail would have cost
        # without the copy: the original's own finish, or (for a dead
        # original) detection + a full re-run — a lower bound, ignoring
        # re-queueing delays.
        counterfactual = (original_end if original_end is not None
                          else detect_at + duration)
        saved = max(0.0, counterfactual - copy.end)
        self.stats.speculation_wins += 1
        self.stats.speculation_saved_s += saved
        self._record_task_spans(row, copy.start, copy_ex, label_suffix="-spec")
        if bus.is_active:
            bus.emit(TaskStart(time=copy.start, resource=copy_ex.worker_id,
                               task_id=tid, worker=copy_ex.worker_id))
            bus.emit(TaskEnd(time=copy.end, resource=copy_ex.worker_id,
                             task_id=tid, worker=copy_ex.worker_id,
                             duration_s=duration / copy_ex.speed,
                             attempts=attempts))
            bus.emit(SpeculationWon(time=copy.end, resource=copy_ex.worker_id,
                                    task_id=tid,
                                    winner=copy_ex.worker_id,
                                    loser=original.worker_id, saved_s=saved))
        self.r_start[row] = copy.start
        self.r_end[row] = copy.end
        self.r_attempts[row] = attempts
        self.r_worker[row] = self.pos_of[id(copy_ex)]
        self.spec_rows.add(row)
        if self.values is not None:
            self.values[row] = value
        return True

    def _collect_one(self, pending: list[tuple[float, int, int]],
                     cursor: float) -> float:
        """Stream the earliest-finished pending result back over the NIC."""
        end, tid, row = heapq.heappop(pending)
        c0 = end if end > cursor else cursor
        dt = self.network.lan_transfer_time(self.out_b[row])
        cursor = c0 + dt
        agg = self.agg
        if agg is not None:
            _bump(_agg_entry(agg, Phase.COLLECT, "driver-nic"), c0, cursor)
        else:
            self.timeline.record(Phase.COLLECT, c0, cursor,
                                 resource="driver-nic",
                                 label=f"collect-{tid}" if self.fine else "")
        self.r_collected[row] = cursor
        return cursor

    def _record_task_spans(self, row: int, start: float, ex: Executor,
                           label_suffix: str = "") -> None:
        cursor = start
        speed = ex.speed
        agg = self.agg
        if agg is not None:
            # Coarse: fold the four phases into per-executor aggregate
            # entries, fetched once per executor and bumped in place.
            ents = self._ex_entries.get(id(ex))
            if ents is None:
                ents = self._ex_entries[id(ex)] = [None, None, None, None]
            resource = ex.worker_id
            for i, (phase, dur) in enumerate((
                (Phase.WORKER_DECOMPRESS, self.dec_s[row]),
                (Phase.JNI_CALL, self.jni_s[row]),
                (Phase.COMPUTE, self.cmp_s[row]),
                (Phase.WORKER_COMPRESS, self.cpr_s[row]),
            )):
                if dur > 0.0:
                    scaled = dur / speed
                    e = ents[i]
                    if e is None:
                        e = ents[i] = _agg_entry(agg, phase, resource)
                    nxt = cursor + scaled
                    _bump(e, cursor, nxt)
                    cursor = nxt
            return
        record = self.timeline.record
        resource = ex.worker_id
        if self.fine:
            stage = self.table.stage_of(row)
            prefix = f"{stage}/" if stage else ""
            label = f"{prefix}task-{self.tid[row]}{label_suffix}"
        else:
            label = ""
        for phase, dur in (
            (Phase.WORKER_DECOMPRESS, self.dec_s[row]),
            (Phase.JNI_CALL, self.jni_s[row]),
            (Phase.COMPUTE, self.cmp_s[row]),
            (Phase.WORKER_COMPRESS, self.cpr_s[row]),
        ):
            if dur > 0.0:
                scaled = dur / speed
                record(phase, cursor, cursor + scaled,
                       resource=resource, label=label)
                cursor += scaled
