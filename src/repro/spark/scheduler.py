"""Task scheduling.

The driver "is in charge of ... resource allocation and task scheduling".
This scheduler reproduces the cost structure of Spark's TaskSchedulerImpl for
the one-stage DOALL jobs OmpCloud generates:

* task launches are **serialized through the driver** (closure serialization +
  RPC), so per-task overhead scales with the task count — the reason the
  paper tiles loops down to one task per core (Algorithm 1);
* partition payloads scatter to executors through the **driver NIC**, modelled
  as a serial resource;
* broadcasts are charged once per job via the BitTorrent model;
* results stream back through the same NIC (``collect``);
* executor failures (from a :class:`~repro.spark.faults.FaultPlan`) trigger
  re-execution on surviving executors, up to ``spark.task.maxFailures``
  attempts — lineage recomputation in RDD terms.

A :class:`~repro.spark.schedule.ScheduleConfig` unlocks the adaptive layer
(all off by default, see ``docs/SCHEDULING.md``): speculative copies for
stragglers (``spark.speculation`` semantics, first result wins) and a
pipelined collect path that streams results through NIC idle gaps between
scatters instead of the strict end-of-job barrier.

Everything is accounted on a :class:`~repro.simtime.timeline.Timeline` with
the phases Figure 5 of the paper stacks.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cloud.network import NetworkModel
from repro.obs.events import (SpeculationWon, TaskEnd, TaskSpeculated,
                              TaskStart, get_bus)
from repro.simtime.clock import SimClock
from repro.simtime.timeline import Phase, Timeline
from repro.spark.broadcast import Broadcast
from repro.spark.executor import Executor, ExecutorLostError
from repro.spark.faults import NO_FAULTS, FaultPlan
from repro.spark.schedule import STATIC_SCHEDULE, ScheduleConfig

#: Spark's default spark.task.maxFailures.
MAX_TASK_FAILURES = 4


class JobFailedError(Exception):
    """A task exhausted its attempts or no executor survives."""


@dataclass
class SchedulerCosts:
    """Driver-side constants (calibrated in :mod:`repro.perfmodel.calibration`)."""

    #: Closure serialization + launch RPC per task, on the driver.
    task_launch_s: float = 0.004
    #: Heartbeat-based failure detection latency.
    failure_detect_s: float = 2.0


@dataclass
class Task:
    """One schedulable unit: a tile of loop iterations (after Algorithm 1).

    Durations are split by phase so the timeline can reproduce Figure 5's
    decomposition; ``closure`` is executed for real in functional mode.
    """

    task_id: int
    split: int
    #: Stage label — the source loop this tile belongs to.  A fused region
    #: (docs/TASKGRAPH.md) submits one map stage per member loop under a
    #: single offload, so the label is what keeps each tile attributable to
    #: its member region in the timeline and exported traces.
    stage: str = ""
    compute_s: float = 0.0
    jni_s: float = 0.0
    decompress_s: float = 0.0
    compress_s: float = 0.0
    input_bytes: int = 0
    output_bytes: int = 0
    closure: Callable[[], Any] | None = None

    @property
    def slot_duration_s(self) -> float:
        return self.compute_s + self.jni_s + self.decompress_s + self.compress_s


@dataclass
class TaskResult:
    """Where and when one task ran, and what it produced."""

    task: Task
    worker_id: str
    start: float
    end: float
    value: Any = None
    attempts: int = 1
    collected_at: float = 0.0
    #: True when a speculative copy beat the original attempt.
    speculative: bool = False


@dataclass
class JobStats:
    """Aggregates the benches report."""

    tasks: int = 0
    recomputed_tasks: int = 0
    broadcast_s: float = 0.0
    makespan_s: float = 0.0
    speculated_tasks: int = 0
    speculation_wins: int = 0
    speculation_saved_s: float = 0.0
    results: list[TaskResult] = field(default_factory=list)


class TaskScheduler:
    """Schedules one job's task set onto a fixed executor group."""

    def __init__(self, costs: SchedulerCosts | None = None) -> None:
        self.costs = costs if costs is not None else SchedulerCosts()

    def run_job(
        self,
        tasks: Sequence[Task],
        executors: Sequence[Executor],
        network: NetworkModel,
        clock: SimClock,
        timeline: Timeline,
        broadcasts: Sequence[Broadcast] = (),
        fault_plan: FaultPlan = NO_FAULTS,
        functional: bool = True,
        schedule: ScheduleConfig = STATIC_SCHEDULE,
    ) -> JobStats:
        """Run all tasks; advances ``clock`` to job completion.

        Returns per-task results ordered by ``split``.
        """
        alive = [ex for ex in executors if not ex.is_dead]
        if not alive:
            raise JobFailedError("no alive executors")
        t0 = clock.now
        stats = JobStats(tasks=len(tasks))

        # ------------------------------------------------------- broadcasts
        ready0 = t0
        worker_ids = {ex.worker_id for ex in alive}
        for bc in broadcasts:
            missing = worker_ids - bc.nodes_seeded
            if not missing or bc.nbytes == 0:
                continue
            dt = network.broadcast_time(bc.nbytes, len(missing), bittorrent=True)
            timeline.record(Phase.BROADCAST, ready0, ready0 + dt, resource="cluster",
                            label=f"broadcast-{bc.id}")
            bc.nodes_seeded |= missing
            stats.broadcast_s += dt
            ready0 += dt

        # Straggler threshold base: the median of the *intended* slot
        # durations (what Spark estimates from the task set), not the
        # speed-degraded actuals — a slow node must look like a straggler.
        median_s = (statistics.median(t.slot_duration_s for t in tasks)
                    if tasks else 0.0)

        # -------------------------------------------- launch + scatter + run
        driver_cursor = ready0
        nic_cursor = ready0
        results: list[TaskResult] = []
        uncollected: list[TaskResult] = []  # pipelined: scattered, result due
        for task in tasks:
            launch_start = driver_cursor
            driver_cursor += self.costs.task_launch_s
            timeline.record(Phase.SCHEDULING, launch_start, driver_cursor,
                            resource="driver", label=f"launch-{task.task_id}")
            ready = driver_cursor
            if task.input_bytes > 0:
                if schedule.pipelined:
                    # Back-pressure: at most pipeline_depth results may sit
                    # uncollected before the NIC must drain one.
                    while len(uncollected) >= schedule.pipeline_depth:
                        nic_cursor = self._collect_one(
                            uncollected, nic_cursor, network, timeline)
                    # Opportunistic overlap: any finished result whose
                    # transfer fits in the NIC gap before this scatter
                    # streams back now, while other tiles still compute.
                    while uncollected:
                        nxt = min(uncollected,
                                  key=lambda r: (r.end, r.task.task_id))
                        dt = network.lan_transfer_time(nxt.task.output_bytes)
                        if max(nxt.end, nic_cursor) + dt > ready:
                            break
                        nic_cursor = self._collect_one(
                            uncollected, nic_cursor, network, timeline)
                x0 = max(ready, nic_cursor)
                dt = network.lan_transfer_time(task.input_bytes)
                nic_cursor = x0 + dt
                timeline.record(Phase.INTRA_TRANSFER, x0, nic_cursor,
                                resource="driver-nic", label=f"scatter-{task.task_id}")
                ready = nic_cursor
            result = self._run_one(task, executors, ready, timeline,
                                   fault_plan, functional, stats,
                                   schedule=schedule, median_s=median_s)
            results.append(result)
            if schedule.pipelined:
                if task.output_bytes > 0:
                    uncollected.append(result)
                else:
                    result.collected_at = result.end

        # ---------------------------------------------------------- collect
        collect_cursor = nic_cursor
        if schedule.pipelined:
            while uncollected:
                collect_cursor = self._collect_one(
                    uncollected, collect_cursor, network, timeline)
        else:
            for res in sorted(results, key=lambda r: (r.end, r.task.task_id)):
                if res.task.output_bytes > 0:
                    c0 = max(res.end, collect_cursor)
                    dt = network.lan_transfer_time(res.task.output_bytes)
                    collect_cursor = c0 + dt
                    timeline.record(Phase.COLLECT, c0, collect_cursor,
                                    resource="driver-nic",
                                    label=f"collect-{res.task.task_id}")
                    res.collected_at = collect_cursor
                else:
                    res.collected_at = res.end

        job_end = max([r.collected_at for r in results], default=ready0)
        clock.advance_to(max(job_end, clock.now))
        stats.makespan_s = job_end - t0
        stats.results = sorted(results, key=lambda r: r.task.split)
        return stats

    # ------------------------------------------------------------ internals
    def _run_one(
        self,
        task: Task,
        executors: Sequence[Executor],
        ready: float,
        timeline: Timeline,
        fault_plan: FaultPlan,
        functional: bool,
        stats: JobStats,
        schedule: ScheduleConfig = STATIC_SCHEDULE,
        median_s: float = 0.0,
    ) -> TaskResult:
        attempts = 0
        while attempts < MAX_TASK_FAILURES:
            attempts += 1
            ex = self._pick_executor(executors, ready)
            res = ex.reserve(ready, task.slot_duration_s)

            # Worker already gone (death or spot preemption) before the task
            # could start: it never receives the reservation.  Blacklist and
            # reschedule; no work was lost, so nothing is recomputed.
            death = fault_plan.death_time(ex.worker_id)
            if death is not None and death < res.start:
                ex.mark_dead(now=death, reason="dead before task start")
                ready = max(ready, death + self.costs.failure_detect_s)
                attempts -= 1  # not a task failure, only a placement miss
                continue

            # Simulated-time death of the worker mid-task.  The task goes
            # silent at `death`; heartbeat detection notices at
            # death + failure_detect_s.  With speculation on, the driver may
            # notice the straggling (silent) task at multiplier x median
            # first and race a copy on another executor.
            if fault_plan.kills_reservation(ex.worker_id, res.start, res.end):
                death_t = death if death is not None else res.start
                ex.mark_dead(now=death_t, reason="died mid-task")
                stats.recomputed_tasks += 1
                if schedule.speculation and median_s > 0.0:
                    spec = self._speculate(
                        task, executors, ex, res.start, timeline, fault_plan,
                        functional, stats, schedule, median_s,
                        attempts=attempts, original_end=None,
                        detect_at=death_t + self.costs.failure_detect_s)
                    if spec is not None:
                        return spec
                ready = max(ready, death_t + self.costs.failure_detect_s)
                continue

            # Functional failure injection: the Nth closure on this worker
            # raises.  An application crash is a *failure*, never a
            # straggler — speculation must not mask maxFailures exhaustion.
            value = None
            if functional and task.closure is not None:
                if fault_plan.should_raise(ex.worker_id, ex.tasks_executed + 1):
                    ex.tasks_executed += 1
                    ex.mark_dead(now=res.start, reason="task crashed")
                    stats.recomputed_tasks += 1
                    midpoint = res.start + task.slot_duration_s / 2.0
                    ready = max(ready, midpoint + self.costs.failure_detect_s)
                    continue
                try:
                    value = ex.run_closure(task.closure)
                except ExecutorLostError:
                    stats.recomputed_tasks += 1
                    ready = max(ready, res.end + self.costs.failure_detect_s)
                    continue

            # Straggler: the slot runs the task >= multiplier x median (a
            # degraded node, speed < 1).  Race a copy; first result wins.
            actual_s = res.end - res.start
            if (schedule.speculation and median_s > 0.0
                    and actual_s >= schedule.speculation_multiplier * median_s):
                spec = self._speculate(
                    task, executors, ex, res.start, timeline, fault_plan,
                    functional, stats, schedule, median_s,
                    attempts=attempts, original_end=res.end,
                    detect_at=float("inf"), value=value)
                if spec is not None:
                    # The losing original still occupies its slot to the end
                    # (Spark kills it, but the model bills the spent time);
                    # its spans stay on the timeline, unlabelled as a task
                    # completion — no TaskEnd is emitted for a killed copy.
                    self._record_task_spans(task, res.start, ex, timeline)
                    return spec

            self._record_task_spans(task, res.start, ex, timeline)
            bus = get_bus()
            bus.emit(TaskStart(time=res.start, resource=ex.worker_id,
                               task_id=task.task_id, worker=ex.worker_id))
            bus.emit(TaskEnd(time=res.end, resource=ex.worker_id,
                             task_id=task.task_id, worker=ex.worker_id,
                             duration_s=task.slot_duration_s / ex.speed,
                             attempts=attempts))
            return TaskResult(task=task, worker_id=ex.worker_id,
                              start=res.start, end=res.end, value=value,
                              attempts=attempts)
        raise JobFailedError(
            f"task {task.task_id} failed {MAX_TASK_FAILURES} times; aborting job"
        )

    def _speculate(
        self,
        task: Task,
        executors: Sequence[Executor],
        original: Executor,
        original_start: float,
        timeline: Timeline,
        fault_plan: FaultPlan,
        functional: bool,
        stats: JobStats,
        schedule: ScheduleConfig,
        median_s: float,
        *,
        attempts: int,
        original_end: float | None,
        detect_at: float,
        value: Any = None,
    ) -> TaskResult | None:
        """Try to rescue a straggling/silent task with a speculative copy.

        Returns the winning copy's :class:`TaskResult`, or ``None`` when the
        copy is not launched (would not beat the original / detection) or
        itself fails — the caller then falls through to the ordinary retry
        path, so ``maxFailures`` accounting is never weakened.

        ``original_end`` is the instant the original attempt would finish
        (``None`` when the original died and will never finish, in which
        case ``detect_at`` is when heartbeat detection would fire instead).
        """
        watch = original_start + schedule.speculation_multiplier * median_s
        if watch >= detect_at:
            return None  # heartbeat detection fires first; retry normally
        copy_ex = self._pick_executor_excluding(executors, watch, original)
        if copy_ex is None:
            return None  # nowhere else to run a copy
        launch_end = watch + self.costs.task_launch_s
        est_start = max(copy_ex.pool.earliest_free(), launch_end)
        est_end = est_start + task.slot_duration_s / copy_ex.speed
        if original_end is not None and est_end >= original_end:
            return None  # the copy cannot win; Spark would not launch it

        copy = copy_ex.reserve(launch_end, task.slot_duration_s)
        timeline.record(Phase.SPECULATION, watch, launch_end,
                        resource="driver", label=f"speculate-{task.task_id}")
        stats.speculated_tasks += 1
        bus = get_bus()
        bus.emit(TaskSpeculated(time=watch, resource="driver",
                                task_id=task.task_id,
                                worker=original.worker_id,
                                copy_worker=copy_ex.worker_id,
                                waited_s=watch - original_start,
                                median_s=median_s))

        # The copy is as mortal as any task: the fault plan applies.
        copy_death = fault_plan.death_time(copy_ex.worker_id)
        if copy_death is not None and copy_death < copy.end:
            copy_ex.mark_dead(now=max(copy_death, 0.0),
                              reason="speculative copy lost")
            return None
        # Functional work runs on the copy only when the original never
        # finished; a straggling original already produced `value`, and
        # accumulators must commit exactly once per task.
        if functional and task.closure is not None and original_end is None:
            if fault_plan.should_raise(copy_ex.worker_id,
                                       copy_ex.tasks_executed + 1):
                copy_ex.tasks_executed += 1
                copy_ex.mark_dead(now=copy.start,
                                  reason="speculative copy crashed")
                return None
            try:
                value = copy_ex.run_closure(task.closure)
            except ExecutorLostError:
                return None

        # First result wins.  `saved` is what the tail would have cost
        # without the copy: the original's own finish, or (for a dead
        # original) detection + a full re-run — a lower bound, ignoring
        # re-queueing delays.
        counterfactual = (original_end if original_end is not None
                          else detect_at + task.slot_duration_s)
        saved = max(0.0, counterfactual - copy.end)
        stats.speculation_wins += 1
        stats.speculation_saved_s += saved
        self._record_task_spans(task, copy.start, copy_ex, timeline,
                                label_suffix="-spec")
        bus.emit(TaskStart(time=copy.start, resource=copy_ex.worker_id,
                           task_id=task.task_id, worker=copy_ex.worker_id))
        bus.emit(TaskEnd(time=copy.end, resource=copy_ex.worker_id,
                         task_id=task.task_id, worker=copy_ex.worker_id,
                         duration_s=task.slot_duration_s / copy_ex.speed,
                         attempts=attempts))
        bus.emit(SpeculationWon(time=copy.end, resource=copy_ex.worker_id,
                                task_id=task.task_id,
                                winner=copy_ex.worker_id,
                                loser=original.worker_id, saved_s=saved))
        return TaskResult(task=task, worker_id=copy_ex.worker_id,
                          start=copy.start, end=copy.end, value=value,
                          attempts=attempts, speculative=True)

    @staticmethod
    def _collect_one(
        pending: list[TaskResult],
        cursor: float,
        network: NetworkModel,
        timeline: Timeline,
    ) -> float:
        """Stream the earliest-finished pending result back over the NIC."""
        res = min(pending, key=lambda r: (r.end, r.task.task_id))
        pending.remove(res)
        c0 = max(res.end, cursor)
        dt = network.lan_transfer_time(res.task.output_bytes)
        cursor = c0 + dt
        timeline.record(Phase.COLLECT, c0, cursor, resource="driver-nic",
                        label=f"collect-{res.task.task_id}")
        res.collected_at = cursor
        return cursor

    @staticmethod
    def _pick_executor(executors: Sequence[Executor], ready: float) -> Executor:
        best: Executor | None = None
        best_start = float("inf")
        for ex in executors:
            if ex.is_dead:
                continue
            est = max(ex.pool.earliest_free(), ready)
            if est < best_start:
                best, best_start = ex, est
        if best is None:
            raise JobFailedError("all executors are dead")
        return best

    @staticmethod
    def _pick_executor_excluding(
        executors: Sequence[Executor], ready: float, exclude: Executor,
    ) -> Executor | None:
        """Best executor for a speculative copy — never the original's."""
        best: Executor | None = None
        best_start = float("inf")
        for ex in executors:
            if ex.is_dead or ex is exclude:
                continue
            est = max(ex.pool.earliest_free(), ready)
            if est < best_start:
                best, best_start = ex, est
        return best

    @staticmethod
    def _record_task_spans(task: Task, start: float, ex: Executor,
                           timeline: Timeline, label_suffix: str = "") -> None:
        cursor = start
        prefix = f"{task.stage}/" if task.stage else ""
        for phase, dur in (
            (Phase.WORKER_DECOMPRESS, task.decompress_s),
            (Phase.JNI_CALL, task.jni_s),
            (Phase.COMPUTE, task.compute_s),
            (Phase.WORKER_COMPRESS, task.compress_s),
        ):
            if dur > 0.0:
                scaled = dur / ex.speed
                timeline.record(phase, cursor, cursor + scaled,
                                resource=ex.worker_id,
                                label=f"{prefix}task-{task.task_id}"
                                      f"{label_suffix}")
                cursor += scaled
