"""Task scheduling.

The driver "is in charge of ... resource allocation and task scheduling".
This scheduler reproduces the cost structure of Spark's TaskSchedulerImpl for
the one-stage DOALL jobs OmpCloud generates:

* task launches are **serialized through the driver** (closure serialization +
  RPC), so per-task overhead scales with the task count — the reason the
  paper tiles loops down to one task per core (Algorithm 1);
* partition payloads scatter to executors through the **driver NIC**, modelled
  as a serial resource;
* broadcasts are charged once per job via the BitTorrent model;
* results stream back through the same NIC (``collect``);
* executor failures (from a :class:`~repro.spark.faults.FaultPlan`) trigger
  re-execution on surviving executors, up to ``spark.task.maxFailures``
  attempts — lineage recomputation in RDD terms.

Everything is accounted on a :class:`~repro.simtime.timeline.Timeline` with
the phases Figure 5 of the paper stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cloud.network import NetworkModel
from repro.obs.events import TaskEnd, TaskStart, get_bus
from repro.simtime.clock import SimClock
from repro.simtime.timeline import Phase, Timeline
from repro.spark.broadcast import Broadcast
from repro.spark.executor import Executor, ExecutorLostError
from repro.spark.faults import NO_FAULTS, FaultPlan

#: Spark's default spark.task.maxFailures.
MAX_TASK_FAILURES = 4


class JobFailedError(Exception):
    """A task exhausted its attempts or no executor survives."""


@dataclass
class SchedulerCosts:
    """Driver-side constants (calibrated in :mod:`repro.perfmodel.calibration`)."""

    #: Closure serialization + launch RPC per task, on the driver.
    task_launch_s: float = 0.004
    #: Heartbeat-based failure detection latency.
    failure_detect_s: float = 2.0


@dataclass
class Task:
    """One schedulable unit: a tile of loop iterations (after Algorithm 1).

    Durations are split by phase so the timeline can reproduce Figure 5's
    decomposition; ``closure`` is executed for real in functional mode.
    """

    task_id: int
    split: int
    compute_s: float = 0.0
    jni_s: float = 0.0
    decompress_s: float = 0.0
    compress_s: float = 0.0
    input_bytes: int = 0
    output_bytes: int = 0
    closure: Callable[[], Any] | None = None

    @property
    def slot_duration_s(self) -> float:
        return self.compute_s + self.jni_s + self.decompress_s + self.compress_s


@dataclass
class TaskResult:
    """Where and when one task ran, and what it produced."""

    task: Task
    worker_id: str
    start: float
    end: float
    value: Any = None
    attempts: int = 1
    collected_at: float = 0.0


@dataclass
class JobStats:
    """Aggregates the benches report."""

    tasks: int = 0
    recomputed_tasks: int = 0
    broadcast_s: float = 0.0
    makespan_s: float = 0.0
    results: list[TaskResult] = field(default_factory=list)


class TaskScheduler:
    """Schedules one job's task set onto a fixed executor group."""

    def __init__(self, costs: SchedulerCosts | None = None) -> None:
        self.costs = costs if costs is not None else SchedulerCosts()

    def run_job(
        self,
        tasks: Sequence[Task],
        executors: Sequence[Executor],
        network: NetworkModel,
        clock: SimClock,
        timeline: Timeline,
        broadcasts: Sequence[Broadcast] = (),
        fault_plan: FaultPlan = NO_FAULTS,
        functional: bool = True,
    ) -> JobStats:
        """Run all tasks; advances ``clock`` to job completion.

        Returns per-task results ordered by ``split``.
        """
        alive = [ex for ex in executors if not ex.is_dead]
        if not alive:
            raise JobFailedError("no alive executors")
        t0 = clock.now
        stats = JobStats(tasks=len(tasks))

        # ------------------------------------------------------- broadcasts
        ready0 = t0
        worker_ids = {ex.worker_id for ex in alive}
        for bc in broadcasts:
            missing = worker_ids - bc.nodes_seeded
            if not missing or bc.nbytes == 0:
                continue
            dt = network.broadcast_time(bc.nbytes, len(missing), bittorrent=True)
            timeline.record(Phase.BROADCAST, ready0, ready0 + dt, resource="cluster",
                            label=f"broadcast-{bc.id}")
            bc.nodes_seeded |= missing
            stats.broadcast_s += dt
            ready0 += dt

        # -------------------------------------------- launch + scatter + run
        driver_cursor = ready0
        nic_cursor = ready0
        results: list[TaskResult] = []
        for task in tasks:
            launch_start = driver_cursor
            driver_cursor += self.costs.task_launch_s
            timeline.record(Phase.SCHEDULING, launch_start, driver_cursor,
                            resource="driver", label=f"launch-{task.task_id}")
            ready = driver_cursor
            if task.input_bytes > 0:
                x0 = max(ready, nic_cursor)
                dt = network.lan_transfer_time(task.input_bytes)
                nic_cursor = x0 + dt
                timeline.record(Phase.INTRA_TRANSFER, x0, nic_cursor,
                                resource="driver-nic", label=f"scatter-{task.task_id}")
                ready = nic_cursor
            result = self._run_one(task, executors, ready, timeline,
                                   fault_plan, functional, stats)
            results.append(result)

        # ---------------------------------------------------------- collect
        collect_cursor = nic_cursor
        for res in sorted(results, key=lambda r: (r.end, r.task.task_id)):
            if res.task.output_bytes > 0:
                c0 = max(res.end, collect_cursor)
                dt = network.lan_transfer_time(res.task.output_bytes)
                collect_cursor = c0 + dt
                timeline.record(Phase.COLLECT, c0, collect_cursor,
                                resource="driver-nic", label=f"collect-{res.task.task_id}")
                res.collected_at = collect_cursor
            else:
                res.collected_at = res.end

        job_end = max([r.collected_at for r in results], default=ready0)
        clock.advance_to(max(job_end, clock.now))
        stats.makespan_s = job_end - t0
        stats.results = sorted(results, key=lambda r: r.task.split)
        return stats

    # ------------------------------------------------------------ internals
    def _run_one(
        self,
        task: Task,
        executors: Sequence[Executor],
        ready: float,
        timeline: Timeline,
        fault_plan: FaultPlan,
        functional: bool,
        stats: JobStats,
    ) -> TaskResult:
        attempts = 0
        while attempts < MAX_TASK_FAILURES:
            attempts += 1
            ex = self._pick_executor(executors, ready)
            res = ex.reserve(ready, task.slot_duration_s)

            # Worker already gone (death or spot preemption) before the task
            # could start: it never receives the reservation.  Blacklist and
            # reschedule; no work was lost, so nothing is recomputed.
            death = fault_plan.death_time(ex.worker_id)
            if death is not None and death < res.start:
                ex.mark_dead(now=death, reason="dead before task start")
                ready = max(ready, death + self.costs.failure_detect_s)
                attempts -= 1  # not a task failure, only a placement miss
                continue

            # Simulated-time death of the worker mid-task.
            if fault_plan.kills_reservation(ex.worker_id, res.start, res.end):
                ex.mark_dead(now=death if death is not None else res.start,
                             reason="died mid-task")
                stats.recomputed_tasks += 1
                ready = max(ready, death + self.costs.failure_detect_s)
                continue

            # Functional failure injection: the Nth closure on this worker raises.
            value = None
            if functional and task.closure is not None:
                if fault_plan.should_raise(ex.worker_id, ex.tasks_executed + 1):
                    ex.tasks_executed += 1
                    ex.mark_dead(now=res.start, reason="task crashed")
                    stats.recomputed_tasks += 1
                    midpoint = res.start + task.slot_duration_s / 2.0
                    ready = max(ready, midpoint + self.costs.failure_detect_s)
                    continue
                try:
                    value = ex.run_closure(task.closure)
                except ExecutorLostError:
                    stats.recomputed_tasks += 1
                    ready = max(ready, res.end + self.costs.failure_detect_s)
                    continue

            self._record_task_spans(task, res.start, ex.worker_id, timeline)
            bus = get_bus()
            bus.emit(TaskStart(time=res.start, resource=ex.worker_id,
                               task_id=task.task_id, worker=ex.worker_id))
            bus.emit(TaskEnd(time=res.end, resource=ex.worker_id,
                             task_id=task.task_id, worker=ex.worker_id,
                             duration_s=task.slot_duration_s,
                             attempts=attempts))
            return TaskResult(task=task, worker_id=ex.worker_id,
                              start=res.start, end=res.end, value=value,
                              attempts=attempts)
        raise JobFailedError(
            f"task {task.task_id} failed {MAX_TASK_FAILURES} times; aborting job"
        )

    @staticmethod
    def _pick_executor(executors: Sequence[Executor], ready: float) -> Executor:
        best: Executor | None = None
        best_start = float("inf")
        for ex in executors:
            if ex.is_dead:
                continue
            est = max(ex.pool.earliest_free(), ready)
            if est < best_start:
                best, best_start = ex, est
        if best is None:
            raise JobFailedError("all executors are dead")
        return best

    @staticmethod
    def _record_task_spans(task: Task, start: float, worker_id: str, timeline: Timeline) -> None:
        cursor = start
        for phase, dur in (
            (Phase.WORKER_DECOMPRESS, task.decompress_s),
            (Phase.JNI_CALL, task.jni_s),
            (Phase.COMPUTE, task.compute_s),
            (Phase.WORKER_COMPRESS, task.compress_s),
        ):
            if dur > 0.0:
                timeline.record(phase, cursor, cursor + dur, resource=worker_id,
                                label=f"task-{task.task_id}")
                cursor += dur
