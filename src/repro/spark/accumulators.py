"""Spark accumulators.

Write-only-from-tasks counters with driver-side reads.  The semantics Spark
guarantees (and that matter under fault injection) are reproduced: a task's
contributions are buffered while the task runs and **committed only if the
task succeeds** — a task that dies with its worker contributes nothing, and
its successful re-execution contributes exactly once.
"""

from __future__ import annotations

import itertools
import operator
import threading
from typing import Any, Callable

_local = threading.local()


def _buffer_stack() -> list[list[tuple["Accumulator", Any]]]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


class Accumulator:
    """A commutative-associative accumulator.

    ``add`` inside a running task buffers the contribution; outside any task
    (driver code) it applies immediately.
    """

    _ids = itertools.count()

    def __init__(self, initial: Any, op: Callable[[Any, Any], Any] = operator.add,
                 name: str = "") -> None:
        self.id = next(Accumulator._ids)
        self.name = name or f"accumulator-{self.id}"
        self._op = op
        self._value = initial
        self._lock = threading.Lock()

    def add(self, amount: Any) -> None:
        stack = _buffer_stack()
        if stack:
            stack[-1].append((self, amount))
        else:
            self._commit(amount)

    def _commit(self, amount: Any) -> None:
        with self._lock:
            self._value = self._op(self._value, amount)

    @property
    def value(self) -> Any:
        """Driver-side read of the committed value."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Accumulator({self.name!r}, value={self._value!r})"


class TaskAccumulatorScope:
    """Context manager the executor wraps around each task closure."""

    def __init__(self) -> None:
        self.pending: list[tuple[Accumulator, Any]] = []

    def __enter__(self) -> "TaskAccumulatorScope":
        _buffer_stack().append(self.pending)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = _buffer_stack().pop()
        assert popped is self.pending

    def commit(self) -> None:
        """Apply the buffered contributions (task succeeded)."""
        for acc, amount in self.pending:
            acc._commit(amount)
        self.pending.clear()

    def discard(self) -> None:
        """Drop the buffered contributions (task failed)."""
        self.pending.clear()
