"""Spark log streaming.

"Additionally, the user can choose to print the log messages of Spark to the
standard output of the host computer to check the current state of the
computation."  Components append structured records to a :class:`SparkLog`;
the cloud plugin relays them to stdout when the configuration sets
``verbose = true``.  Log lines carry the *simulated* timestamp, so the stream
reads like a real driver log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass(frozen=True)
class LogRecord:
    time: float
    level: str
    component: str
    message: str

    def format(self) -> str:
        return f"{self.time:10.3f} {self.level:<5} {self.component:<12} {self.message}"


@dataclass
class SparkLog:
    """Append-only log with optional live sinks."""

    records: list[LogRecord] = field(default_factory=list)
    sinks: list[Callable[[str], None]] = field(default_factory=list)

    def log(self, time: float, component: str, message: str, level: str = "INFO") -> None:
        rec = LogRecord(time=time, level=level, component=component, message=message)
        self.records.append(rec)
        for sink in self.sinks:
            sink(rec.format())

    def info(self, time: float, component: str, message: str) -> None:
        self.log(time, component, message, "INFO")

    def warn(self, time: float, component: str, message: str) -> None:
        self.log(time, component, message, "WARN")

    def attach_stdout(self) -> None:
        """Stream future records to stdout (the verbose=true behaviour)."""
        self.sinks.append(print)

    def lines(self, component: str | None = None) -> Iterable[str]:
        for rec in self.records:
            if component is None or rec.component == component:
                yield rec.format()

    def __len__(self) -> int:
        return len(self.records)
