"""Spark log streaming.

"Additionally, the user can choose to print the log messages of Spark to the
standard output of the host computer to check the current state of the
computation."  Components append structured records to a :class:`SparkLog`;
the cloud plugin relays them to stdout when the configuration sets
``verbose = true``.  Log lines carry the *simulated* timestamp, so the stream
reads like a real driver log.

Every record is also mirrored onto the process event bus as a
:class:`~repro.obs.events.LogEvent`, so traces and ``verbose=true`` output
stay consistent; conversely a :class:`~repro.obs.subscribers.SparkLogSink`
can rebuild a SparkLog purely from the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.obs.events import LogEvent, get_bus

#: Minimum-severity ordering used by :meth:`SparkLog.lines`.
LEVELS = ("DEBUG", "INFO", "WARN", "ERROR")
_SEVERITY = {name: i for i, name in enumerate(LEVELS)}


@dataclass(frozen=True)
class LogRecord:
    time: float
    level: str
    component: str
    message: str

    def format(self) -> str:
        return f"{self.time:10.3f} {self.level:<5} {self.component:<12} {self.message}"


@dataclass
class SparkLog:
    """Append-only log with optional live sinks."""

    records: list[LogRecord] = field(default_factory=list)
    sinks: list[Callable[[str], None]] = field(default_factory=list)

    def log(self, time: float, component: str, message: str, level: str = "INFO") -> None:
        self.append_record(time, component, message, level)
        # Mirror onto the bus; resource names this log so a SparkLogSink
        # subscribed to the same bus does not echo our own records back.
        get_bus().emit(LogEvent(time=time, resource=f"sparklog-{id(self)}",
                                level=level, component=component,
                                message=message))

    def append_record(self, time: float, component: str, message: str,
                      level: str = "INFO") -> None:
        """Append without re-publishing (sink path; avoids bus echo loops)."""
        rec = LogRecord(time=time, level=level, component=component, message=message)
        self.records.append(rec)
        for sink in self.sinks:
            sink(rec.format())

    def debug(self, time: float, component: str, message: str) -> None:
        self.log(time, component, message, "DEBUG")

    def info(self, time: float, component: str, message: str) -> None:
        self.log(time, component, message, "INFO")

    def warn(self, time: float, component: str, message: str) -> None:
        self.log(time, component, message, "WARN")

    def error(self, time: float, component: str, message: str) -> None:
        self.log(time, component, message, "ERROR")

    def attach_stdout(self) -> None:
        """Stream future records to stdout (the verbose=true behaviour)."""
        self.sinks.append(print)

    def lines(self, component: str | None = None,
              level: str | None = None) -> Iterable[str]:
        """Formatted records, optionally filtered by component and by
        *minimum* severity (``level="WARN"`` yields WARN and ERROR)."""
        threshold = None
        if level is not None:
            if level not in _SEVERITY:
                raise ValueError(f"unknown log level {level!r}; use one of {LEVELS}")
            threshold = _SEVERITY[level]
        for rec in self.records:
            if component is not None and rec.component != component:
                continue
            if threshold is not None and _SEVERITY.get(rec.level, 0) < threshold:
                continue
            yield rec.format()

    def __len__(self) -> int:
        return len(self.records)
