"""Adaptive execution policy for the Spark substrate (the ``[Schedule]`` knob).

Algorithm 1's static tiling is optimal only when every worker is identical
and healthy — the very assumption the fault plans (spot preemption, executor
loss) and heterogeneous cluster configs violate.  A :class:`ScheduleConfig`
selects how far the scheduler may adapt:

* ``mode`` — ``static`` keeps the paper's ``floor(N/C)`` tiles;
  ``weighted`` sizes tiles proportionally to per-slot capacity
  (:func:`repro.core.tiling.tile_weighted`) so a slow or shrunken worker
  does not own the critical path.
* ``speculation`` / ``speculation_multiplier`` — Spark's
  ``spark.speculation`` semantics: a task running at least
  ``multiplier x median task duration`` is a straggler, and the driver
  races a speculative copy on another executor, first result wins.
* ``pipeline_depth`` — when > 0, the driver streams collects through NIC
  idle gaps between scatters instead of the strict
  scatter-all / compute / collect-all barrier, holding at most
  ``pipeline_depth`` scattered-but-uncollected results in flight.

The default :data:`STATIC_SCHEDULE` reproduces the paper exactly; every
adaptive feature is strictly opt-in, so Figure 4/5 baselines are untouched
unless a config asks otherwise.  See ``docs/SCHEDULING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Recognised tiling modes for ``ScheduleConfig.mode``.
SCHEDULE_MODES = ("static", "weighted")


@dataclass(frozen=True)
class ScheduleConfig:
    """How adaptively one Spark job is scheduled (immutable, shareable)."""

    mode: str = "static"
    speculation: bool = False
    speculation_multiplier: float = 1.5
    pipeline_depth: int = 0

    def __post_init__(self) -> None:
        if self.mode not in SCHEDULE_MODES:
            raise ValueError(
                f"schedule mode must be one of {SCHEDULE_MODES}, got {self.mode!r}"
            )
        if self.speculation_multiplier < 1.0:
            raise ValueError(
                "speculation_multiplier must be >= 1.0 (a task is never a "
                f"straggler before the median), got {self.speculation_multiplier!r}"
            )
        if self.pipeline_depth < 0:
            raise ValueError(
                f"pipeline_depth must be >= 0, got {self.pipeline_depth!r}"
            )

    @property
    def weighted(self) -> bool:
        return self.mode == "weighted"

    @property
    def pipelined(self) -> bool:
        return self.pipeline_depth > 0


#: The paper's behaviour: static Algorithm-1 tiles, no speculation, strict
#: scatter/compute/collect barrier.  Shared immutable default.
STATIC_SCHEDULE = ScheduleConfig()
