"""An in-process Apache Spark substrate.

The paper executes offloaded loops on Spark 2.1 clusters.  This package
re-implements the parts of Spark that OmpCloud's execution model touches,
faithfully enough that the generated jobs run unmodified:

* lazy :class:`~repro.spark.rdd.RDD` s with lineage and narrow transformations
  (``map``, ``mapPartitions``, ``filter``, ``zipWithIndex``), actions
  (``collect``, ``reduce``, ``count``) and lineage-based **fault recovery**;
* :class:`~repro.spark.broadcast.Broadcast` variables with the BitTorrent
  distribution cost model;
* a :class:`~repro.spark.scheduler.TaskScheduler` that serializes task
  launches through the driver and list-schedules onto executor core slots
  (honouring ``spark.task.cpus``, ``spark.cores.max``);
* :class:`~repro.spark.executor.Executor` / :class:`~repro.spark.driver.Driver`
  / :class:`~repro.spark.cluster.SparkCluster` wiring, including the JVM's
  2 GiB array-length ceiling the paper runs into.

Everything advances simulated time (:mod:`repro.simtime`); in functional mode
the task closures really execute in-process, so results are bit-exact.
"""

from repro.spark.accumulators import Accumulator
from repro.spark.conf import SparkConf
from repro.spark.rdd import RDD, Partition
from repro.spark.broadcast import Broadcast
from repro.spark.executor import Executor, ExecutorLostError
from repro.spark.schedule import STATIC_SCHEDULE, ScheduleConfig
from repro.spark.scheduler import Task, TaskScheduler, TaskResult
from repro.spark.driver import Driver, JobResult
from repro.spark.cluster import SparkCluster
from repro.spark.context import SparkContext
from repro.spark.faults import FaultPlan
from repro.spark.serialization import (
    JVM_MAX_ARRAY_BYTES,
    JavaArrayLimitError,
    check_jvm_array_limit,
)

__all__ = [
    "Accumulator",
    "SparkConf",
    "RDD",
    "Partition",
    "Broadcast",
    "Executor",
    "ExecutorLostError",
    "ScheduleConfig",
    "STATIC_SCHEDULE",
    "Task",
    "TaskScheduler",
    "TaskResult",
    "Driver",
    "JobResult",
    "SparkCluster",
    "SparkContext",
    "FaultPlan",
    "JVM_MAX_ARRAY_BYTES",
    "JavaArrayLimitError",
    "check_jvm_array_limit",
]
