"""OmpCloud reproduction: the cloud as an OpenMP offloading device.

A Python reproduction of Yviquel & Araújo, *The Cloud as an OpenMP Offloading
Device* (ICPP 2017).  The package turns OpenMP 4.5 ``target device(CLOUD)``
regions into map-reduce jobs on an in-process Spark substrate backed by
simulated cloud infrastructure (EC2/Azure/private providers, S3/HDFS/Azure
storage, WAN/LAN network models) and a calibrated performance model that
regenerates the paper's evaluation figures.

The documented programming surface is :mod:`repro.omp`::

    import numpy as np
    from repro.omp import (TargetRegion, ParallelLoop, offload,
                           OffloadRuntime, CloudDevice, demo_config)

    region = TargetRegion(
        name="matmul",
        pragmas=["omp target device(CLOUD)",
                 "omp map(to: A[:N*N], B[:N*N]) map(from: C[:N*N])"],
        loops=[ParallelLoop(
            pragma="omp parallel for", loop_var="i", trip_count="N",
            reads=("A", "B"), writes=("C",),
            partition_pragma="omp target data map(to: A[i*N:(i+1)*N]) "
                             "map(from: C[i*N:(i+1)*N])",
            body=my_tile_body)],
    )
    runtime = OffloadRuntime()
    runtime.register(CloudDevice(demo_config()))
    offload(region, arrays={"A": a, "B": b, "C": c}, scalars={"N": n},
            runtime=runtime)

The package-root re-exports of these names completed their deprecation
cycle (warned since 1.0) and are **removed**: accessing one raises
:class:`AttributeError` with the migration target.  The removal list is
documented in ``docs/API.md``.

See DESIGN.md for the architecture and EXPERIMENTS.md for paper-vs-measured
results.
"""

from __future__ import annotations

__version__ = "1.1.0"

#: Former package-root re-exports -> the module now documented for them.
#: The deprecation cycle is complete: these names no longer resolve here;
#: the table survives so the removal error can say exactly where to import
#: from (and so docs/API.md's removal list has a single source of truth).
_REMOVED: dict[str, str] = {
    "AnalysisError": "repro.omp",
    "AnalysisReport": "repro.omp",
    "verify_region": "repro.omp",
    "Buffer": "repro.omp",
    "CloudConfig": "repro.omp",
    "CloudDevice": "repro.omp",
    "DirectiveError": "repro.omp",
    "ExecutionMode": "repro.omp",
    "HostDevice": "repro.omp",
    "OffloadReport": "repro.omp",
    "OffloadRuntime": "repro.omp",
    "ParallelLoop": "repro.omp",
    "TargetRegion": "repro.omp",
    "load_config": "repro.omp",
    "offload": "repro.omp",
    "omp_get_num_devices": "repro.omp",
    "parse_pragma": "repro.omp",
    "region_from_source": "repro.omp",
    "omp_kernel": "repro.omp",
    "demo_config": "repro.omp",
    "SparkCluster": "repro.spark",
    "SparkConf": "repro.spark",
    "SparkContext": "repro.spark",
    "WORKLOADS": "repro.workloads",
}

__all__ = ["__version__"]


def __getattr__(name: str):
    """Removal tombstones for the legacy package-root surface.

    The names in :data:`_REMOVED` spent a full release deprecated (every
    access warned); they now fail fast with the exact replacement import so
    stragglers get a one-line fix instead of a silent legacy path.
    """
    target = _REMOVED.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    raise AttributeError(
        f"'repro.{name}' was removed after its deprecation cycle; "
        f"use 'from {target} import {name}'"
    )


def __dir__() -> list[str]:
    return sorted(__all__)
