"""OmpCloud reproduction: the cloud as an OpenMP offloading device.

A Python reproduction of Yviquel & Araújo, *The Cloud as an OpenMP Offloading
Device* (ICPP 2017).  The package turns OpenMP 4.5 ``target device(CLOUD)``
regions into map-reduce jobs on an in-process Spark substrate backed by
simulated cloud infrastructure (EC2/Azure/private providers, S3/HDFS/Azure
storage, WAN/LAN network models) and a calibrated performance model that
regenerates the paper's evaluation figures.

The documented programming surface is :mod:`repro.omp`::

    import numpy as np
    from repro.omp import (TargetRegion, ParallelLoop, offload,
                           OffloadRuntime, CloudDevice, demo_config)

    region = TargetRegion(
        name="matmul",
        pragmas=["omp target device(CLOUD)",
                 "omp map(to: A[:N*N], B[:N*N]) map(from: C[:N*N])"],
        loops=[ParallelLoop(
            pragma="omp parallel for", loop_var="i", trip_count="N",
            reads=("A", "B"), writes=("C",),
            partition_pragma="omp target data map(to: A[i*N:(i+1)*N]) "
                             "map(from: C[i*N:(i+1)*N])",
            body=my_tile_body)],
    )
    runtime = OffloadRuntime()
    runtime.register(CloudDevice(demo_config()))
    offload(region, arrays={"A": a, "B": b, "C": c}, scalars={"N": n},
            runtime=runtime)

Importing those names from the package root still works but is deprecated
(a :class:`DeprecationWarning` fires on each access); import from
:mod:`repro.omp` instead.

See DESIGN.md for the architecture and EXPERIMENTS.md for paper-vs-measured
results.
"""

from __future__ import annotations

import importlib
import warnings

__version__ = "1.0.0"

#: Former package-root re-exports -> the module now documented for them.
#: All of the model-surface names live in :mod:`repro.omp`; the Spark
#: substrate and workload registry keep their defining submodules.
_FORWARDS: dict[str, str] = {
    "AnalysisError": "repro.omp",
    "AnalysisReport": "repro.omp",
    "verify_region": "repro.omp",
    "Buffer": "repro.omp",
    "CloudConfig": "repro.omp",
    "CloudDevice": "repro.omp",
    "DirectiveError": "repro.omp",
    "ExecutionMode": "repro.omp",
    "HostDevice": "repro.omp",
    "OffloadReport": "repro.omp",
    "OffloadRuntime": "repro.omp",
    "ParallelLoop": "repro.omp",
    "TargetRegion": "repro.omp",
    "load_config": "repro.omp",
    "offload": "repro.omp",
    "omp_get_num_devices": "repro.omp",
    "parse_pragma": "repro.omp",
    "region_from_source": "repro.omp",
    "omp_kernel": "repro.omp",
    "demo_config": "repro.omp",
    "SparkCluster": "repro.spark",
    "SparkConf": "repro.spark",
    "SparkContext": "repro.spark",
    "WORKLOADS": "repro.workloads",
}

__all__ = [*_FORWARDS, "__version__"]


def __getattr__(name: str):
    """Lazy, deprecating forwarder for the legacy package-root surface.

    The warning fires on every access (nothing is cached back into the
    package namespace) so migrations cannot silently regress; ``import
    repro`` itself stays silent and cheap.
    """
    target = _FORWARDS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from 'repro' is deprecated; "
        f"use 'from {target} import {name}'",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(target), name)


def __dir__() -> list[str]:
    return sorted(__all__)
