"""OmpCloud reproduction: the cloud as an OpenMP offloading device.

A Python reproduction of Yviquel & Araújo, *The Cloud as an OpenMP Offloading
Device* (ICPP 2017).  The package turns OpenMP 4.5 ``target device(CLOUD)``
regions into map-reduce jobs on an in-process Spark substrate backed by
simulated cloud infrastructure (EC2/Azure/private providers, S3/HDFS/Azure
storage, WAN/LAN network models) and a calibrated performance model that
regenerates the paper's evaluation figures.

Quickstart::

    import numpy as np
    from repro import (TargetRegion, ParallelLoop, offload,
                       OffloadRuntime, CloudDevice, demo_config)

    region = TargetRegion(
        name="matmul",
        pragmas=["omp target device(CLOUD)",
                 "omp map(to: A[:N*N], B[:N*N]) map(from: C[:N*N])"],
        loops=[ParallelLoop(
            pragma="omp parallel for", loop_var="i", trip_count="N",
            reads=("A", "B"), writes=("C",),
            partition_pragma="omp target data map(to: A[i*N:(i+1)*N]) "
                             "map(from: C[i*N:(i+1)*N])",
            body=my_tile_body)],
    )
    runtime = OffloadRuntime()
    runtime.register(CloudDevice(demo_config()))
    offload(region, arrays={"A": a, "B": b, "C": c}, scalars={"N": n},
            runtime=runtime)

See DESIGN.md for the architecture and EXPERIMENTS.md for paper-vs-measured
results.
"""

from repro.analysis import AnalysisError, AnalysisReport, verify_region
from repro.core import (
    Buffer,
    omp_kernel,
    region_from_source,
    CloudConfig,
    CloudDevice,
    DirectiveError,
    ExecutionMode,
    HostDevice,
    OffloadReport,
    OffloadRuntime,
    ParallelLoop,
    TargetRegion,
    load_config,
    offload,
    omp_get_num_devices,
    parse_pragma,
)
from repro.metrics.figures import demo_config
from repro.spark import SparkCluster, SparkConf, SparkContext
from repro.workloads import WORKLOADS

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "verify_region",
    "Buffer",
    "CloudConfig",
    "CloudDevice",
    "DirectiveError",
    "ExecutionMode",
    "HostDevice",
    "OffloadReport",
    "OffloadRuntime",
    "ParallelLoop",
    "TargetRegion",
    "load_config",
    "offload",
    "omp_get_num_devices",
    "parse_pragma",
    "region_from_source",
    "omp_kernel",
    "demo_config",
    "SparkCluster",
    "SparkConf",
    "SparkContext",
    "WORKLOADS",
    "__version__",
]
