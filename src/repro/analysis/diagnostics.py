"""Structured diagnostics for the offload verifier.

The verifier reports findings the way a compiler front end does: every
problem is a :class:`Diagnostic` with a stable code (``OMP121``), a severity,
a :class:`Span` locating it inside the region, a human message and an
optional fix-it hint, rendered clang-style::

    matmul:loop(i): error: OMP121 partition-overlap: output partitions of
    'C' overlap: iteration 0 writes [0, 96) but iteration 1 starts at 48
        hint: make per-iteration output slices disjoint, e.g. C[i*N:(i+1)*N]

Codes are grouped by pass: ``OMP10x`` map-clause lint, ``OMP11x`` kernel
dataflow cross-checks, ``OMP12x`` symbolic partition checks, ``OMP13x``
race/DOALL checks, ``OMP19x`` analysis limits.  The full catalogue with
failing and passing examples lives in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, Optional, Union


class Severity(enum.IntEnum):
    """Diagnostic severity; the integer value doubles as the lint exit code."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    @property
    def word(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: Union[str, "Severity"]) -> "Severity":
        if isinstance(name, Severity):
            return name
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.word for s in cls]}"
            ) from None


#: code -> (default severity, kebab-case slug).  Stable across releases:
#: codes are append-only, never renumbered.
CODES: dict[str, tuple[Severity, str]] = {
    "OMP100": (Severity.ERROR, "malformed-region"),
    "OMP101": (Severity.ERROR, "unmapped-array"),
    "OMP102": (Severity.ERROR, "write-lost"),
    "OMP103": (Severity.WARNING, "dead-map"),
    "OMP104": (Severity.WARNING, "wide-map"),
    "OMP105": (Severity.ERROR, "read-before-write"),
    "OMP111": (Severity.ERROR, "undeclared-read"),
    "OMP112": (Severity.ERROR, "undeclared-write"),
    "OMP113": (Severity.WARNING, "phantom-access"),
    "OMP121": (Severity.ERROR, "partition-overlap"),
    "OMP122": (Severity.WARNING, "partition-gap"),
    "OMP123": (Severity.ERROR, "partition-nonmonotone"),
    "OMP124": (Severity.ERROR, "partition-out-of-bounds"),
    "OMP125": (Severity.ERROR, "partition-direction-mismatch"),
    "OMP131": (Severity.ERROR, "unpartitioned-output-race"),
    "OMP132": (Severity.ERROR, "loop-carried-dependence"),
    "OMP190": (Severity.NOTE, "analysis-limit"),
    "OMP201": (Severity.NOTE, "map-overbroad"),
    "OMP202": (Severity.NOTE, "partition-inferable"),
    "OMP203": (Severity.NOTE, "fusable-chain-serialized"),
}


@dataclass(frozen=True)
class Span:
    """Where a diagnostic points: a region, optionally one of its loops and
    the clause text it is about (the closest thing to file:line this
    in-memory directive AST has)."""

    region: str
    loop: Optional[str] = None
    clause: Optional[str] = None

    def __str__(self) -> str:
        out = self.region
        if self.loop is not None:
            out += f":loop({self.loop})"
        return out


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding."""

    code: str
    severity: Severity
    span: Span
    message: str
    hint: Optional[str] = None

    @classmethod
    def make(
        cls,
        code: str,
        span: Span,
        message: str,
        hint: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> "Diagnostic":
        if code not in CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        default, _slug = CODES[code]
        return cls(
            code=code,
            severity=severity if severity is not None else default,
            span=span,
            message=message,
            hint=hint,
        )

    @property
    def slug(self) -> str:
        return CODES[self.code][1]

    def render(self) -> str:
        lines = [f"{self.span}: {self.severity.word}: {self.code} {self.slug}: {self.message}"]
        if self.span.clause:
            lines.append(f"    {self.span.clause}")
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity.word,
            "region": self.span.region,
            "loop": self.span.loop,
            "clause": self.span.clause,
            "message": self.message,
            "hint": self.hint,
        }


class AnalysisReport:
    """Accumulated diagnostics of one verification run."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    @property
    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    @property
    def max_severity(self) -> Severity:
        """Worst severity present; NOTE when the report is clean."""
        if not self.diagnostics:
            return Severity.NOTE
        return max(d.severity for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """Lint exit code: 0 clean/notes, 1 warnings, 2 errors."""
        return int(self.max_severity)

    @property
    def ok(self) -> bool:
        """No warnings or errors (notes are informational)."""
        return self.max_severity == Severity.NOTE

    def at_least(self, threshold: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= threshold]

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        parts = [d.render() for d in
                 sorted(self.diagnostics, key=lambda d: (-int(d.severity), d.code, str(d.span)))]
        errors = sum(1 for d in self.diagnostics if d.severity == Severity.ERROR)
        warnings = sum(1 for d in self.diagnostics if d.severity == Severity.WARNING)
        notes = sum(1 for d in self.diagnostics if d.severity == Severity.NOTE)
        parts.append(f"{errors} error(s), {warnings} warning(s), {notes} note(s)")
        return "\n".join(parts)

    def to_json(self) -> str:
        return json.dumps(
            json_report("lint", self.ok, [d.to_dict() for d in self.diagnostics]),
            indent=2,
        )

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AnalysisReport({len(self.diagnostics)} diagnostics, max={self.max_severity.word})"


class AnalysisError(Exception):
    """Strict mode rejected a region before offloading it."""

    def __init__(self, report: AnalysisReport, region_name: str) -> None:
        self.report = report
        self.region_name = region_name
        blocking = report.at_least(Severity.WARNING)
        super().__init__(
            f"region {region_name!r} failed static verification "
            f"({len(blocking)} finding(s)):\n{report.render()}"
        )


def json_report(tool: str, ok: bool, items: list[dict[str, object]]) -> dict[str, object]:
    """The machine-readable report shape shared by ``repro lint --json`` and
    ``repro validate --json`` so CI consumes one format."""
    return {"tool": tool, "ok": ok, "items": items}
