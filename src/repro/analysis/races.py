"""Pass 4 — DOALL/race detection.

The paper's execution model turns each ``parallel for`` into an RDD of
independent iteration tiles: workers never see each other's stores, and the
driver merges only the slices each iteration *declared* it owns (Eq. 8-10).
A loop is therefore only offloadable when every written variable is either

* partitioned by the loop variable (each iteration owns a disjoint slice),
* a declared ``reduction`` scalar (the driver combines per-tile partials), or
* region-local scratch that no later loop consumes.

Anything else is a race by construction: with no partition, every tile
writes the *whole* buffer and the indexed merge keeps an arbitrary winner
(OMP131); if the loop also *reads* the same buffer, iterations consume
values produced by other iterations, i.e. a loop-carried dependence the
DOALL model cannot honor at all (OMP132).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Span
from repro.core.api import TargetRegion


def check_races(region: TargetRegion) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for loop in region.loops:
        red = set(loop.reduction_vars)
        span = Span(region.name, loop=loop.loop_var)
        for name in loop.writes:
            if name in red:
                continue
            spec = loop.partitions.get(name)
            if spec is not None and spec.is_partitioned:
                continue  # disjointness itself is pass 3's job
            map_type = region.map_type_of(name)
            merged = (name in region.locals_
                      or (map_type is not None and map_type.is_output))
            if not merged:
                continue  # result never merged back: OMP102 already fires
            if name in loop.reads:
                out.append(Diagnostic.make(
                    "OMP132", span,
                    f"loop reads and writes {name!r} with no partition over "
                    f"{loop.loop_var!r}: iterations depend on each other's "
                    f"stores, which the independent-tile model cannot honor",
                    hint=f"partition {name!r} by {loop.loop_var!r}, or use a "
                         f"reduction({name}) clause if it is a combiner",
                ))
            else:
                out.append(Diagnostic.make(
                    "OMP131", span,
                    f"{name!r} is written by every iteration but not "
                    f"partitioned over {loop.loop_var!r}: the merge keeps an "
                    f"arbitrary tile's copy",
                    hint=f"add target data map(from: {name}[lo(i):hi(i)]) "
                         f"with {loop.loop_var!r}-dependent bounds, or a "
                         f"reduction clause",
                ))
    return out
