"""Kernel dataflow: what a tile body actually reads and writes.

Tile bodies are plain Python functions ``body(lo, hi, arrays, scalars)``.
This pass recovers their array accesses statically: it parses the body
source (``inspect.getsource`` + :mod:`ast`) and tracks

* direct accesses — ``arrays["C"][lo*n:hi*n] = ...`` is a write of ``C``,
  ``arrays["A"][k]`` in an expression is a read of ``A``;
* aliases — ``c = arrays["C"]; row = np.asarray(c[lo:hi]); row[:] = ...``
  still writes ``C``, because NumPy pass-through constructors (``asarray``,
  ``reshape``, ``astype``, ...) keep views onto the mapped buffer;
* closure-resolved keys — factory-made tiles (``arrays[out_name]`` with
  ``out_name`` captured from an enclosing scope) resolve through
  ``inspect.getclosurevars``.

The result is *evidence*, not proof: an access the pass observes definitely
happens, but opaque calls receiving a mapped array make the summary
incomplete (``complete=False``), and the verifier then skips the checks that
reason from absence (phantom-access).  Bodies whose source is unavailable
(builtins, C extensions, interactively defined functions) yield
``source_available=False`` and the dataflow checks are skipped entirely.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Optional, Union

#: NumPy constructors that return views (or value-preserving copies) of their
#: first argument: aliasing flows through them.
_PASSTHROUGH_FUNCS = frozenset({"asarray", "ascontiguousarray", "transpose"})
#: ndarray methods that alias (or value-preserve) the receiver.
_PASSTHROUGH_METHODS = frozenset({"reshape", "astype", "view", "ravel",
                                  "transpose"})
#: ndarray methods that only read the receiver.
_READONLY_METHODS = frozenset({
    "mean", "sum", "min", "max", "std", "var", "item", "tolist", "copy",
    "dot", "all", "any", "nonzero", "argmax", "argmin", "trace", "round",
    "clip", "take",
})
#: numpy-namespace functions that only read their array arguments (writes
#: through an ``out=`` keyword are tracked separately in ``visit_Call``).
_READONLY_NP_FUNCS = frozenset({
    "asarray", "ascontiguousarray", "abs", "outer", "triu", "tril", "dot",
    "matmul", "allclose", "sqrt", "exp", "log", "minimum", "maximum",
    "where", "sum", "mean", "sign", "count_nonzero", "float32", "float64",
    "int32", "int64", "zeros_like", "ones_like", "cross", "clip", "take",
})
#: builtins that cannot mutate an ndarray argument.
_READONLY_BUILTINS = frozenset({
    "int", "float", "bool", "len", "range", "abs", "min", "max", "sum",
    "round", "enumerate", "zip", "print", "sorted", "reversed",
})


@dataclass(frozen=True)
class BodyAccess:
    """Observed accesses of one tile body."""

    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    scalar_reads: frozenset[str] = frozenset()
    #: Human-readable reasons the summary may be incomplete.
    limits: tuple[str, ...] = ()
    source_available: bool = True

    @property
    def complete(self) -> bool:
        return self.source_available and not self.limits


class _Unresolved:
    """Sentinel: an access whose array name could not be determined."""

    def __init__(self, reason: str) -> None:
        self.reason = reason


class _Flow(ast.NodeVisitor):
    def __init__(
        self,
        arrays_param: str,
        scalars_param: str,
        consts: dict[str, object],
    ) -> None:
        self.arrays_param = arrays_param
        self.scalars_param = scalars_param
        self.consts = consts  # closure/global constants for dynamic keys
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.scalar_reads: set[str] = set()
        self.limits: list[str] = []
        self.aliases: dict[str, str] = {}
        self._suppress_reads = 0

    # ----------------------------------------------------------- resolution
    def _limit(self, reason: str) -> None:
        if reason not in self.limits:
            self.limits.append(reason)

    def _key_of(self, node: ast.expr) -> Union[str, _Unresolved, None]:
        """The string key of an ``arrays[...]`` subscript."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return node.value
            return _Unresolved(f"non-string array key {node.value!r}")
        if isinstance(node, ast.Name):
            value = self.consts.get(node.id)
            if isinstance(value, str):
                return value
            return _Unresolved(f"array key {node.id!r} is not a resolvable constant")
        return _Unresolved("computed array key")

    def _root(self, node: ast.expr) -> Union[str, _Unresolved, None]:
        """The mapped-array name an expression aliases, if any."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Subscript):
            if isinstance(node.value, ast.Name) and node.value.id == self.arrays_param:
                return self._key_of(node.slice)
            return self._root(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _PASSTHROUGH_METHODS:
                    root = self._root(func.value)
                    # ``np.transpose(a)``: the receiver is the numpy module,
                    # not an alias — the view is of the first argument.
                    if root is None and func.attr in _PASSTHROUGH_FUNCS and node.args:
                        return self._root(node.args[0])
                    return root
                if func.attr in _PASSTHROUGH_FUNCS and node.args:
                    return self._root(node.args[0])
            elif isinstance(func, ast.Name) and func.id in _PASSTHROUGH_FUNCS and node.args:
                return self._root(node.args[0])
            return None
        return None

    # ------------------------------------------------------------ statements
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            target = node.targets[0]
            root = self._root(node.value)
            if isinstance(root, str):
                # Pure aliasing: no element is read until the alias is used.
                self.aliases[target.id] = root
                self._suppress_reads += 1
                self.visit(node.value)
                self._suppress_reads -= 1
                return
            if isinstance(root, _Unresolved):
                self._limit(root.reason)
            self.aliases.pop(target.id, None)
            self.visit(node.value)
            return
        self.visit(node.value)
        for target in node.targets:
            self._store(target)

    def _store(self, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript):
            root = self._root(target.value)
            if isinstance(root, str):
                self.writes.add(root)
            elif isinstance(root, _Unresolved):
                self._limit(root.reason)
            elif (isinstance(target.value, ast.Name)
                  and target.value.id == self.arrays_param):
                self._limit("store through a computed arrays[...] key")
            self.visit(target.slice)
        elif isinstance(target, ast.Name):
            self.aliases.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt)
        elif isinstance(target, ast.Starred):
            self._store(target.value)
        elif isinstance(target, ast.Attribute):
            root = self._root(target.value)
            if isinstance(root, str):
                self._limit(f"attribute store on mapped array {root!r}")
            self.visit(target.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        target = node.target
        if isinstance(target, ast.Subscript):
            root = self._root(target.value)
            if isinstance(root, str):
                self.reads.add(root)
                self.writes.add(root)
            elif isinstance(root, _Unresolved):
                self._limit(root.reason)
            self.visit(target.slice)
        elif isinstance(target, ast.Name):
            root = self.aliases.get(target.id)
            if root is not None:
                # In-place update through a view writes the mapped buffer.
                self.reads.add(root)
                self.writes.add(root)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._store(node.target)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    # ----------------------------------------------------------- expressions
    def visit_Name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        if node.id in self.aliases:
            if not self._suppress_reads:
                self.reads.add(self.aliases[node.id])
        elif node.id == self.arrays_param:
            # The whole dict escaping (e.g. helper(arrays)) defeats analysis.
            self._limit("the arrays mapping is used opaquely")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == self.arrays_param:
            if isinstance(node.ctx, ast.Load) and not self._suppress_reads:
                key = self._key_of(node.slice)
                if isinstance(key, str):
                    self.reads.add(key)
                elif isinstance(key, _Unresolved):
                    self._limit(key.reason)
            self.visit(node.slice)
            return
        if isinstance(node.value, ast.Name) and node.value.id == self.scalars_param:
            key = self._key_of(node.slice)
            if isinstance(key, str):
                self.scalar_reads.add(key)
            self.visit(node.slice)
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # ufunc-style ``out=``: the result lands in the mapped buffer even
        # when the function itself is in a read-only table.
        for kw in node.keywords:
            if kw.arg == "out":
                root = self._root(kw.value)
                if isinstance(root, str):
                    self.writes.add(root)
        func = node.func
        opaque: Optional[str] = None
        if isinstance(func, ast.Attribute):
            if func.attr not in (_PASSTHROUGH_METHODS | _READONLY_METHODS
                                 | _READONLY_NP_FUNCS | _PASSTHROUGH_FUNCS):
                opaque = func.attr
        elif isinstance(func, ast.Name):
            if func.id not in (_READONLY_BUILTINS | _PASSTHROUGH_FUNCS):
                opaque = func.id
        else:
            opaque = "<computed function>"
        if opaque is not None:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                root = self._root(arg)
                if isinstance(root, str):
                    # The callee sees the buffer: definitely a read, possibly
                    # a write we cannot see.
                    self.reads.add(root)
                    self._limit(
                        f"mapped array {root!r} passed to opaque call {opaque}()"
                    )
        self.generic_visit(node)


def _param_names(fn: Callable[..., object]) -> tuple[str, str]:
    try:
        params = list(inspect.signature(fn).parameters)
    except (TypeError, ValueError):
        return "arrays", "scalars"
    arrays = params[2] if len(params) > 2 else "arrays"
    scalars = params[3] if len(params) > 3 else "scalars"
    return arrays, scalars


def _constants_of(fn: Callable[..., object]) -> dict[str, object]:
    try:
        cv = inspect.getclosurevars(fn)
    except TypeError:
        return {}
    consts: dict[str, object] = dict(cv.globals)
    consts.update(cv.nonlocals)
    return consts


def _body_statements(tree: ast.Module) -> Optional[list[ast.stmt]]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node.body
    return None


def analyze_body(fn: Callable[..., object]) -> BodyAccess:
    """Statically summarize the array accesses of one tile body."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return BodyAccess(
            source_available=False,
            limits=("kernel body source is unavailable",),
        )
    statements = _body_statements(tree)
    if statements is None:
        return BodyAccess(
            source_available=False,
            limits=("kernel body is not a plain function definition",),
        )
    arrays_param, scalars_param = _param_names(fn)
    flow = _Flow(arrays_param, scalars_param, _constants_of(fn))
    for stmt in statements:
        flow.visit(stmt)
    return BodyAccess(
        reads=frozenset(flow.reads),
        writes=frozenset(flow.writes),
        scalar_reads=frozenset(flow.scalar_reads),
        limits=tuple(flow.limits),
    )
