"""Pass 3 — symbolic partition checking (Eq. 1-3 against Eq. 8-10).

The indexed/``bitor`` output merge of Eq. 8-10 is only sound when the
per-iteration output slices declared by the partitioning extension are
*disjoint*; the contiguous-block scatter of Algorithm 1 additionally needs
the bounds *monotone* in the loop variable, and staging needs them *in
bounds* of the mapped extent.  Full coverage is not required for
correctness, but a gap means part of a ``from`` variable is never produced.

Bounds are :class:`~repro.core.exprs.Expr` trees over the loop variable and
problem-size scalars.  The checker evaluates them over the concrete probe
environments chosen by the verifier (the provided ``scalars`` when they bind
every free variable, small synthetic sizes otherwise) and over a boundary
sample of iterations — adjacent pairs at both ends of the iteration space —
which decides disjointness/monotonicity exactly for the affine bounds the
paper's dialect uses.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.analysis.diagnostics import Diagnostic, Span
from repro.core.api import ParallelLoop, RegionError, TargetRegion
from repro.core.exprs import ExprError
from repro.core.partition import PartitionError, PartitionSpec

#: Deduplicating sink: (diagnostic, loop_var, variable name).
_Emit = Callable[["Diagnostic", str, str], None]


def _sample_iterations(n: int, edge: int = 17) -> list[int]:
    """Iterations to evaluate: everything when small, both ends when large."""
    if n <= 2 * edge:
        return list(range(n))
    return list(range(edge)) + list(range(n - edge, n))


def _adjacent_pairs(iters: list[int]) -> list[tuple[int, int]]:
    return [(a, b) for a, b in zip(iters, iters[1:]) if b == a + 1]


def check_partitions(
    region: TargetRegion,
    envs: list[Mapping[str, int]],
) -> list[Diagnostic]:
    """Run the symbolic partition checks under each probe environment,
    deduplicating findings by (code, loop, variable)."""
    out: list[Diagnostic] = []
    seen: set[tuple[str, str, str]] = set()

    def emit(diag: Diagnostic, loop_var: str, name: str) -> None:
        key = (diag.code, loop_var, name)
        if key not in seen:
            seen.add(key)
            out.append(diag)

    for loop in region.loops:
        for name, spec in loop.partitions.items():
            _check_direction(region, loop, name, spec, emit)
        for env in envs:
            _check_loop_under_env(region, loop, env, emit)
    return out


def _check_direction(
    region: TargetRegion,
    loop: ParallelLoop,
    name: str,
    spec: PartitionSpec,
    emit: "_Emit",
) -> None:
    """OMP125: the partition's map type must agree with the region's."""
    if name in region.locals_:
        return  # locals live on the cluster; any direction is meaningful
    region_mt = region.map_type_of(name)
    if region_mt is None:
        return  # unmapped: OMP101 territory
    span = Span(region.name, loop=loop.loop_var,
                clause=f"target data map({spec.map_type.value}: {name}[...])")
    if spec.map_type.is_output and not region_mt.is_output:
        emit(Diagnostic.make(
            "OMP125", span,
            f"partition maps {name!r} as an output ({spec.map_type.value}) "
            f"but the region maps it {region_mt.value}-only: the merged "
            f"result is discarded",
            hint=f"map(from:/tofrom: {name}) on the region",
        ), loop.loop_var, name)
    elif spec.map_type.is_input and not region_mt.is_input:
        emit(Diagnostic.make(
            "OMP125", span,
            f"partition stages {name!r} as an input ({spec.map_type.value}) "
            f"but the region maps it {region_mt.value}-only: workers receive "
            f"uninitialized data",
            hint=f"map(to:/tofrom: {name}) on the region",
        ), loop.loop_var, name)


def _check_loop_under_env(
    region: TargetRegion,
    loop: ParallelLoop,
    env: Mapping[str, int],
    emit: "_Emit",
) -> None:
    try:
        n = loop.trip_count_value(env)
    except (ExprError, RegionError):
        return  # probe env does not bind the trip count; verifier noted it
    if n <= 0:
        return
    iters = _sample_iterations(n)
    for name, spec in loop.partitions.items():
        if not spec.is_partitioned:
            continue  # constant slices are the race pass's concern (OMP131)
        _check_spec(region, loop, name, spec, env, n, iters, emit)


def _check_spec(
    region: TargetRegion,
    loop: ParallelLoop,
    name: str,
    spec: PartitionSpec,
    env: Mapping[str, int],
    n: int,
    iters: list[int],
    emit: "_Emit",
) -> None:
    span = Span(region.name, loop=loop.loop_var,
                clause=f"target data map({spec.map_type.value}: "
                       f"{name}[{spec.lower}:{spec.upper}])")
    env_note = ", ".join(f"{k}={env[k]}" for k in sorted(env))
    bounds: dict[int, tuple[int, int]] = {}
    for i in iters:
        try:
            bounds[i] = spec.element_range(i, env)
        except PartitionError as exc:
            emit(Diagnostic.make(
                "OMP124", span,
                f"partition bounds of {name!r} are invalid: {exc} "
                f"[{env_note}]",
                hint="bounds must satisfy 0 <= lower <= upper",
            ), loop.loop_var, name)
            return
        except ExprError:
            return  # unbound scalar under this probe env

    for a, b in _adjacent_pairs(iters):
        lo_a, hi_a = bounds[a]
        lo_b, hi_b = bounds[b]
        if lo_b < lo_a or hi_b < hi_a:
            emit(Diagnostic.make(
                "OMP123", span,
                f"partition bounds of {name!r} are not monotone in "
                f"{loop.loop_var!r}: iteration {a} owns [{lo_a}, {hi_a}) but "
                f"iteration {b} owns [{lo_b}, {hi_b}) [{env_note}]",
                hint="Algorithm 1's contiguous-block scatter needs "
                     "nondecreasing bounds",
            ), loop.loop_var, name)
            return
        if spec.map_type.is_output:
            if lo_b < hi_a:
                emit(Diagnostic.make(
                    "OMP121", span,
                    f"output partitions of {name!r} overlap: iteration {a} "
                    f"writes [{lo_a}, {hi_a}) but iteration {b} starts at "
                    f"{lo_b} [{env_note}]",
                    hint="overlapping 'from' slices race in the indexed "
                         "merge of Eq. 8-10; make them disjoint",
                ), loop.loop_var, name)
                return
            if lo_b > hi_a:
                emit(Diagnostic.make(
                    "OMP122", span,
                    f"output partitions of {name!r} leave a gap: iteration "
                    f"{a} ends at {hi_a} but iteration {b} starts at {lo_b}; "
                    f"elements in between are never produced [{env_note}]",
                    hint="cover the output contiguously or shrink the map",
                ), loop.loop_var, name)

    try:
        extent = region.declared_length(name, env)
    except (RegionError, ExprError):
        return  # no statically-declared extent to check against
    first_lo = bounds[iters[0]][0]
    last_hi = bounds[iters[-1]][1]
    if first_lo < 0 or last_hi > extent:
        emit(Diagnostic.make(
            "OMP124", span,
            f"partitions of {name!r} reach [{first_lo}, {last_hi}) but the "
            f"mapped extent is [0, {extent}) [{env_note}]",
            hint="widen the map or fix the partition bounds",
        ), loop.loop_var, name)
        return
    if spec.map_type.is_output and (first_lo != 0 or last_hi != extent):
        emit(Diagnostic.make(
            "OMP122", span,
            f"output partitions of {name!r} cover [{first_lo}, {last_hi}) "
            f"of the mapped extent [0, {extent}); the rest is never "
            f"produced [{env_note}]",
            hint="cover the full output or narrow the map section",
        ), loop.loop_var, name)
