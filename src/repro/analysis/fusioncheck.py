"""OMP203: advise when a program's offload chain could fuse but runs
synchronously.

``repro lint`` sees a module's regions in declaration order — the order a
synchronous program would execute them.  When the task-graph planner
(:mod:`repro.core.taskgraph`) would fuse two or more of those regions into a
single Spark job given ``nowait`` offloads under a ``target data``
environment, each synchronous execution pays an avoidable storage round-trip
for every producer→consumer intermediate.  :func:`check_fusable_chains`
replans the chain under the most favourable legal residency (every
intermediate ``alloc``-mapped) and emits one ``OMP203`` note per fusable
group, naming the members and the intermediates fusion would keep in driver
memory.  Purely advisory: notes never gate ``repro lint``'s exit code.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from repro.analysis.diagnostics import Diagnostic, Span
from repro.analysis.verifier import _free_variables
from repro.core.api import TargetRegion

#: First synthesized size for unbound scalars; per-variable offsets keep the
#: values distinct while staying identical across regions (shared names must
#: evaluate to shared trip counts, or no chain would ever plan as fusable).
_PROBE_BASE = 6


def check_fusable_chains(
    regions: Sequence[TargetRegion],
    scalars: Optional[Mapping[str, Union[int, float]]] = None,
) -> list[Diagnostic]:
    """OMP203 notes for ``regions`` executed in order as one program."""
    if len(regions) < 2:
        return []
    # Imported lazily: repro.core.taskgraph is initialized as part of
    # repro.core, which this package imports at module-import time.
    from repro.core.taskgraph import GraphNode, build_plan

    free: set[str] = set()
    for region in regions:
        free |= _free_variables(region)
    env: dict[str, Union[int, float]] = {
        name: _PROBE_BASE + 2 * j for j, name in enumerate(sorted(free))
    }
    env.update(scalars or {})

    nodes = [
        GraphNode(index=i, region=region, device="CLOUD", host=False,
                  mode="modeled", strict=False, depend=None, scalars=env)
        for i, region in enumerate(regions)
    ]
    # Optimistic residency: every array alloc-mapped, the one arrangement
    # under which all legality rules that depend on the data environment
    # pass.  What still refuses to fuse here can never fuse.
    plan = build_plan(nodes, resident=lambda _device, _name: "alloc")

    notes: list[Diagnostic] = []
    for group in plan.groups:
        if not group.fused or len(group.members) < 2:
            continue
        names = [plan.nodes[i].region.name for i in group.members]
        inner = ", ".join(group.elided) or "none"
        notes.append(Diagnostic.make(
            "OMP203", Span(names[0]),
            f"regions {' -> '.join(names)} form a fusable chain but each "
            f"synchronous offload round-trips its intermediates "
            f"({inner}) through cluster storage",
            hint="offload with nowait=True under a target data environment "
                 "and flush with omp.taskwait() to fuse them into one job "
                 "(see docs/TASKGRAPH.md)",
        ))
    return notes
