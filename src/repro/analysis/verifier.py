"""Verifier driver: run all passes over a region, a source file, or a module.

This is the engine behind ``repro lint`` and the runtime's strict mode.  It
stitches the four passes together:

1. map-clause lint (:func:`repro.analysis.mapcheck.check_maps`),
2. kernel dataflow cross-checks (:func:`repro.analysis.mapcheck.check_dataflow`),
3. symbolic partition checks (:func:`repro.analysis.partition_check.check_partitions`),
4. DOALL/race detection (:func:`repro.analysis.races.check_races`),

and owns the *probe environments*: the partition pass needs concrete values
for the problem-size scalars appearing in the bounds.  When the caller
supplies ``scalars`` that bind every free variable (the strict-mode path —
the real sizes of the offload about to run), those are used; otherwise the
verifier synthesizes several small, mutually distinct sizes so that
accidental equalities at one size do not mask an overlap at another.
"""

from __future__ import annotations

import sys
import types
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.analysis.diagnostics import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
)
from repro.analysis.mapcheck import check_dataflow, check_inferred_maps, check_maps
from repro.analysis.partition_check import check_partitions
from repro.analysis.races import check_races
from repro.core.api import ParallelLoop, RegionError, TargetRegion
from repro.core.decorators import OmpKernel
from repro.core.exprs import ExprError, parse_expr
from repro.core.source_scan import SourceScanError, _infer_access, scan_source

#: Synthetic problem sizes used when the caller's scalars do not bind every
#: free variable of the partition bounds.  Several distinct, coprime-ish
#: values so a coincidence at one size cannot hide an overlap.
_PROBE_SIZES = (6, 7, 16)


def _free_variables(region: TargetRegion) -> set[str]:
    """Scalar names the region's bounds/extents/trip counts depend on."""
    loop_vars = {loop.loop_var for loop in region.loops}
    names: set[str] = set()
    for loop in region.loops:
        if isinstance(loop.trip_count, str):
            try:
                names |= parse_expr(loop.trip_count).variables()
            except ExprError:
                pass
        for spec in loop.partitions.values():
            for bound in (spec.lower, spec.upper):
                if bound is not None:
                    names |= bound.variables()
    for clause in region.maps:
        for item in clause.items:
            for bound in (item.lower, item.upper):
                if bound is not None:
                    names |= bound.variables()
    for decl in region.locals_.values():
        if isinstance(decl, str):
            try:
                names |= parse_expr(decl).variables()
            except ExprError:
                pass
    return names - loop_vars


def probe_envs(
    region: TargetRegion,
    scalars: Optional[Mapping[str, Union[int, float]]] = None,
) -> list[dict[str, int]]:
    """Concrete environments for the partition pass."""
    provided: dict[str, int] = {}
    for key, value in (scalars or {}).items():
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            continue
        if as_int == value:
            provided[key] = as_int
    free = _free_variables(region)
    if free <= provided.keys():
        return [provided]
    envs: list[dict[str, int]] = []
    for base in _PROBE_SIZES:
        # Distinct per-variable values so N == M coincidences do not occur.
        env = {name: base + 2 * j for j, name in enumerate(sorted(free))}
        env.update(provided)
        envs.append(env)
    return envs


def verify_region(
    region: TargetRegion,
    scalars: Optional[Mapping[str, Union[int, float]]] = None,
    *,
    usage_reliable: bool = True,
    advisories: bool = True,
) -> AnalysisReport:
    """Run every pass over one region.

    ``usage_reliable=False`` marks regions whose declared access sets were
    *inferred* (source-scanned C with no explicit ``reads=``/``writes=``):
    the checks that reason from a declaration's absence are skipped.
    """
    report = AnalysisReport()
    report.extend(check_maps(region, usage_reliable=usage_reliable))
    for loop in region.loops:
        report.extend(check_dataflow(region, loop))
    report.extend(check_partitions(region, probe_envs(region, scalars)))
    report.extend(check_races(region))
    if advisories:
        # OMP2xx notes from the clause-inference pass (which itself
        # re-verifies with advisories=False — no recursion).
        report.extend(check_inferred_maps(region, scalars))
    return report


def enforce_strict(
    region: TargetRegion,
    scalars: Optional[Mapping[str, Union[int, float]]] = None,
    fail_on: Union[str, Severity] = "error",
) -> AnalysisReport:
    """Strict-mode gate: verify and raise :class:`AnalysisError` when the
    report contains findings at or above ``fail_on``.

    Called by the runtime *before* any data leaves the host, so a broken
    region costs zero upload dollars.
    """
    threshold = Severity.from_name(fail_on)
    if threshold == Severity.NOTE:
        threshold = Severity.WARNING  # notes are informational, never fatal
    report = verify_region(region, scalars)
    if report.at_least(threshold):
        raise AnalysisError(report, region.name)
    return report


# --------------------------------------------------------------- file fronts
def source_regions(
    text: str, name: str = "<source>",
) -> tuple[list[TargetRegion], AnalysisReport]:
    """Build :class:`TargetRegion` objects from annotated C source text.

    Returns the well-formed regions plus a report of the scan/build
    problems; the shared front end of :func:`verify_source` and the
    ``repro infer`` command."""
    regions: list[TargetRegion] = []
    report = AnalysisReport()
    try:
        scanned = scan_source(text)
    except SourceScanError as exc:
        report.add(Diagnostic.make("OMP100", Span(name), str(exc)))
        return regions, report
    if not scanned:
        report.add(Diagnostic.make(
            "OMP190", Span(name),
            "no offloadable target regions found in the source",
        ))
        return regions, report
    for index, sr in enumerate(scanned):
        region_name = f"{name}#{index}" if len(scanned) > 1 else name
        loops: list[ParallelLoop] = []
        broken = False
        for sl in sr.loops:
            reads, writes = _infer_access(sl)
            if sl.partition_pragma is None and not reads and not writes:
                report.add(Diagnostic.make(
                    "OMP100", Span(region_name, loop=sl.loop_var),
                    f"loop over {sl.loop_var!r} has neither a partition "
                    f"pragma nor inferable reads/writes; the runtime cannot "
                    f"tell which variables each iteration owns",
                    hint="add a 'target data map(...)' partition pragma "
                         "inside the loop, or pass explicit reads=/writes=",
                ))
            try:
                loops.append(ParallelLoop(
                    pragma=sl.pragma,
                    loop_var=sl.loop_var,
                    trip_count=sl.trip_count,
                    reads=reads,
                    writes=writes,
                    partition_pragma=sl.partition_pragma,
                ))
            except RegionError as exc:
                report.add(Diagnostic.make(
                    "OMP100", Span(region_name, loop=sl.loop_var), str(exc)))
                broken = True
        if broken:
            continue
        try:
            region = TargetRegion(
                name=region_name, pragmas=sr.pragmas, loops=loops)
        except RegionError as exc:
            report.add(Diagnostic.make("OMP100", Span(region_name), str(exc)))
            continue
        regions.append(region)
    return regions, report


def verify_source(text: str, name: str = "<source>") -> AnalysisReport:
    """Lint annotated C source text (the ``source_scan`` dialect).

    Bodies are not available at scan time, so the dataflow pass degrades to
    notes; access sets come from the partition pragmas
    (``usage_reliable=False``)."""
    regions, report = source_regions(text, name)
    for region in regions:
        report.extend(
            verify_region(region, usage_reliable=False).diagnostics)
    return report


def _collect_regions(namespace: Mapping[str, object]) -> list[TargetRegion]:
    regions: list[TargetRegion] = []
    seen: set[int] = set()
    for value in namespace.values():
        region: Optional[TargetRegion] = None
        if isinstance(value, OmpKernel):
            region = value.region
        elif isinstance(value, TargetRegion):
            region = value
        if region is not None and id(region) not in seen:
            seen.add(id(region))
            regions.append(region)
    return regions


def python_file_regions(
    path: Union[str, Path],
) -> tuple[list[TargetRegion], AnalysisReport]:
    """Execute a Python module (with ``__name__`` set to
    ``"__repro_lint__"`` so ``if __name__ == "__main__"`` blocks stay inert)
    and collect every module-level :class:`TargetRegion` / ``@omp_kernel``
    region; the shared front end of :func:`verify_python_file` and the
    ``repro infer`` command."""
    path = Path(path)
    report = AnalysisReport()
    try:
        source = path.read_text()
    except OSError as exc:
        report.add(Diagnostic.make("OMP100", Span(path.name), str(exc)))
        return [], report
    # Execute inside a real, registered module object: decorators like
    # @dataclass resolve globals through sys.modules[cls.__module__].
    module = types.ModuleType("__repro_lint__")
    module.__file__ = str(path)
    sys.modules["__repro_lint__"] = module
    try:
        exec(compile(source, str(path), "exec"), module.__dict__)
    except Exception as exc:  # noqa: BLE001 - arbitrary user module
        report.add(Diagnostic.make(
            "OMP100", Span(path.name),
            f"module failed to execute: {type(exc).__name__}: {exc}",
        ))
        return [], report
    finally:
        sys.modules.pop("__repro_lint__", None)
    regions = _collect_regions(module.__dict__)
    if not regions:
        report.add(Diagnostic.make(
            "OMP190", Span(path.name),
            "no module-level TargetRegion or @omp_kernel objects to lint",
        ))
    return regions, report


def verify_python_file(
    path: Union[str, Path],
    scalars: Optional[Mapping[str, Union[int, float]]] = None,
) -> AnalysisReport:
    """Lint a Python module: every collected region runs through
    :func:`verify_region`."""
    regions, report = python_file_regions(path)
    for region in regions:
        report.extend(verify_region(region, scalars).diagnostics)
    return report
