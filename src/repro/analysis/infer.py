"""Clause synthesis: the offload verifier run in reverse.

The PR 2 verifier *checks* user-written ``map``/partition clauses against
what a tile body provably does.  This pass runs the same machinery the other
way: from the kernel body and loop structure it derives, per array,

* the **direction** data must flow (``to``/``from``/``tofrom``), from the
  dataflow pass's read/write sets taken in loop order;
* the **per-iteration element range** each iteration touches, recovered
  symbolically as :mod:`repro.core.exprs` trees over the loop variable
  (``arrays["C"][lo*n:hi*n]`` under the tile contract ``[lo, hi)`` becomes
  the per-iteration window ``[i*N, (i+1)*N)``);

and then synthesizes the *minimal* region map clauses plus a partition spec
for every array whose per-iteration windows are provably monotone, disjoint
and exactly covering — validated numerically over the verifier's probe
environments, exactly like ``partition_check`` validates user pragmas.

Safety is asymmetric by design: a suggestion may be *missed* but never
*wrong*.  Whenever the dataflow summary is incomplete
(``BodyAccess.complete`` is ``False``), a window cannot be recovered, or the
synthesized region fails re-verification, the pass **degrades** to the
original clauses and says why (:class:`InferenceReport.reasons`).  The
inferred region is always re-verified before being returned as runnable.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Mapping, Optional, Union

from repro.analysis.dataflow import (
    _PASSTHROUGH_FUNCS,
    _PASSTHROUGH_METHODS,
    _body_statements,
    _constants_of,
    _param_names,
    analyze_body,
)
from repro.analysis.diagnostics import Severity
from repro.analysis.partition_check import _adjacent_pairs, _sample_iterations
from repro.core.api import ParallelLoop, RegionError, TargetRegion
from repro.core.exprs import BinOp, Expr, ExprError, Neg, Num, Var
from repro.core.omp_ast import MapItem, MapType

Scalars = Mapping[str, Union[int, float]]
#: A per-iteration element range [lower, upper) as symbolic bounds.
Window = tuple[Expr, Expr]


# --------------------------------------------------------------- expr algebra
def _add(a: Expr, b: Expr) -> Expr:
    """Constant-folding addition so windows print as ``i*N`` not ``(i*N+0)``."""
    if isinstance(a, Num) and isinstance(b, Num):
        return Num(a.value + b.value)
    if isinstance(a, Num) and a.value == 0:
        return b
    if isinstance(b, Num) and b.value == 0:
        return a
    return BinOp("+", a, b)


@dataclass(frozen=True)
class _Alias:
    """What a Python name (or subexpression) denotes in mapped-buffer terms.

    ``window is None`` means the whole array.  ``exact`` says the alias's
    element set *equals* the window (vs. merely contained in it); only exact
    windows may back an output partition.  ``indexable`` says 1-D offset
    arithmetic on subscripts is still valid (``reshape`` keeps the element
    set but changes the indexing geometry, so composition must stop).
    """

    root: str
    window: Optional[Window]
    exact: bool
    indexable: bool


class _RangeFlow(ast.NodeVisitor):
    """Symbolic range tracking over one tile body.

    Mirrors the alias discipline of :class:`repro.analysis.dataflow._Flow`
    but carries *windows*: substituting ``lo -> i`` and ``hi -> i+1`` (the
    per-iteration view of the tile contract) turns every recovered slice
    into the per-iteration element range the partitioning extension wants.
    """

    def __init__(
        self,
        arrays_param: str,
        scalars_param: str,
        consts: dict[str, object],
        loop_var: str,
        env: dict[str, Expr],
    ) -> None:
        self.arrays_param = arrays_param
        self.scalars_param = scalars_param
        self.consts = consts
        self.loop_var = loop_var
        self.env = env  # python local name -> symbolic bound expression
        self.aliases: dict[str, _Alias] = {}
        self.reads: dict[str, set[Window]] = {}
        self.read_whole: set[str] = set()
        self.writes: dict[str, set[Window]] = {}
        self.write_unknown: set[str] = set()
        self.cond_depth = 0
        self._suppress = 0

    # ------------------------------------------------------------ conversion
    def _expr_of(self, node: ast.expr) -> Optional[Expr]:
        """Convert a Python index expression to a bound :class:`Expr`.

        Only ``+ - *`` (and unary minus / ``int()``) are accepted: Python
        floor division disagrees with the C truncating division of the
        bound language on negatives, so ``// %`` stay unconvertible.
        """
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, int):
                return None
            return Num(node.value)
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            const = self.consts.get(node.id)
            if isinstance(const, int) and not isinstance(const, bool):
                return Num(const)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            left = self._expr_of(node.left)
            right = self._expr_of(node.right)
            if left is None or right is None:
                return None
            op = {"Add": "+", "Sub": "-", "Mult": "*"}[type(node.op).__name__]
            return BinOp(op, left, right)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._expr_of(node.operand)
            return None if inner is None else Neg(inner)
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "int" and len(node.args) == 1 and not node.keywords):
            return self._expr_of(node.args[0])
        if (isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name)
                and node.value.id == self.scalars_param):
            key = self._key_str(node.slice)
            return None if key is None else Var(key)
        return None

    def _key_str(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            const = self.consts.get(node.id)
            if isinstance(const, str):
                return const
        return None

    # ------------------------------------------------------------ resolution
    def _alias_of(self, node: ast.expr) -> Optional[_Alias]:
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Subscript):
            if isinstance(node.value, ast.Name) and node.value.id == self.arrays_param:
                key = self._key_str(node.slice)
                if key is None:
                    return None
                return _Alias(key, None, exact=True, indexable=True)
            base = self._alias_of(node.value)
            if base is None:
                return None
            return self._narrow(base, node.slice)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _PASSTHROUGH_METHODS:
                inner = self._alias_of(func.value)
                if inner is None and func.attr in _PASSTHROUGH_FUNCS and node.args:
                    # ``np.transpose(a)``: the receiver is the numpy module,
                    # the view is of the first argument.
                    inner = self._alias_of(node.args[0])
                if inner is None:
                    return None
                # reshape/astype/view/ravel/transpose preserve the element set
                # but not the 1-D indexing geometry: stop window composition.
                return _Alias(inner.root, inner.window, inner.exact, indexable=False)
            if isinstance(func, ast.Attribute) and func.attr in _PASSTHROUGH_FUNCS and node.args:
                return self._alias_of(node.args[0])
            if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_FUNCS and node.args:
                return self._alias_of(node.args[0])
        return None

    def _narrow(self, base: _Alias, slc: ast.expr) -> _Alias:
        contained = _Alias(base.root, base.window, exact=False, indexable=False)
        if not base.indexable or not base.exact:
            return contained
        lo_base = base.window[0] if base.window is not None else Num(0)
        if isinstance(slc, ast.Slice):
            if slc.step is not None:
                return contained
            if slc.lower is None:
                lo: Optional[Expr] = lo_base
            else:
                off = self._expr_of(slc.lower)
                lo = None if off is None else _add(lo_base, off)
            if slc.upper is None:
                if base.window is None:
                    # open upper bound on the whole array: still the whole
                    # array when the lower bound is 0, unknown otherwise.
                    if lo is not None and lo == Num(0):
                        return _Alias(base.root, None, exact=True, indexable=True)
                    return contained
                hi: Optional[Expr] = base.window[1]
            else:
                up = self._expr_of(slc.upper)
                hi = None if up is None else _add(lo_base, up)
            if lo is None or hi is None:
                return contained
            return _Alias(base.root, (lo, hi), exact=True, indexable=True)
        if isinstance(slc, ast.Tuple):
            return contained
        idx = self._expr_of(slc)
        if idx is None:
            return contained
        lo2 = _add(lo_base, idx)
        return _Alias(base.root, (lo2, _add(lo2, Num(1))), exact=True, indexable=True)

    # --------------------------------------------------------------- records
    def _record_read(self, alias: _Alias) -> None:
        if alias.window is None:
            self.read_whole.add(alias.root)
        else:
            # Inexact aliases are still *contained* in their window, so the
            # window is a sound over-approximation for staging.
            self.reads.setdefault(alias.root, set()).add(alias.window)

    def _record_write(self, alias: _Alias) -> None:
        if self.cond_depth > 0 or alias.window is None or not alias.exact:
            # Conditional stores, whole-array stores and stores through
            # reshaped views have no provable per-iteration coverage.
            self.write_unknown.add(alias.root)
        else:
            self.writes.setdefault(alias.root, set()).add(alias.window)

    # ------------------------------------------------------------ statements
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            tname = node.targets[0].id
            alias = self._alias_of(node.value)
            if alias is not None:
                self.aliases[tname] = alias
                self.env.pop(tname, None)
                self._suppress += 1
                self.visit(node.value)
                self._suppress -= 1
                return
            self.aliases.pop(tname, None)
            expr = self._expr_of(node.value)
            if expr is not None:
                self.env[tname] = expr
            else:
                self.env.pop(tname, None)
            self.visit(node.value)
            return
        if (len(node.targets) == 1 and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(node.targets[0].elts) == len(node.value.elts)):
            for tgt, val in zip(node.targets[0].elts, node.value.elts):
                if isinstance(tgt, ast.Name):
                    self.aliases.pop(tgt.id, None)
                    expr = self._expr_of(val)
                    if expr is not None:
                        self.env[tgt.id] = expr
                    else:
                        self.env.pop(tgt.id, None)
                else:
                    self._store(tgt)
            self.visit(node.value)
            return
        self.visit(node.value)
        for target in node.targets:
            self._store(target)

    def _store(self, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript):
            alias = self._alias_of(target)
            if alias is not None:
                self._record_write(alias)
            self.visit(target.slice)
        elif isinstance(target, ast.Name):
            self.aliases.pop(target.id, None)
            self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt)
        elif isinstance(target, ast.Starred):
            self._store(target.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        target = node.target
        if isinstance(target, ast.Subscript):
            alias = self._alias_of(target)
            if alias is not None:
                self._record_read(alias)
                self._record_write(alias)
            self.visit(target.slice)
        elif isinstance(target, ast.Name):
            if target.id in self.aliases:
                alias = self.aliases[target.id]
                self._record_read(alias)
                self._record_write(alias)
            else:
                self.env.pop(target.id, None)

    def _singleton_range(self, iter_node: ast.expr) -> bool:
        """``range(lo, hi)`` over the tile bounds: exactly one value per
        region iteration, namely the loop variable itself."""
        if not (isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id == "range" and len(iter_node.args) == 2
                and not iter_node.keywords):
            return False
        lo = self._expr_of(iter_node.args[0])
        hi = self._expr_of(iter_node.args[1])
        return lo == Var(self.loop_var) and hi == _add(Var(self.loop_var), Num(1))

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        if self._singleton_range(node.iter) and isinstance(node.target, ast.Name):
            self.aliases.pop(node.target.id, None)
            self.env[node.target.id] = Var(self.loop_var)
            for stmt in node.body + node.orelse:
                self.visit(stmt)
            return
        self._store(node.target)
        self.cond_depth += 1
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self.cond_depth -= 1

    def _static_branch(self, test: ast.expr) -> Optional[bool]:
        """Decide ``if <closure-const> is (not) None`` guards statically, so
        factory-made kernels keep exact coverage."""
        if (isinstance(test, ast.Compare) and isinstance(test.left, ast.Name)
                and len(test.ops) == 1 and len(test.comparators) == 1
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
                and test.left.id in self.consts):
            value = self.consts[test.left.id]
            if isinstance(test.ops[0], ast.Is):
                return value is None
            if isinstance(test.ops[0], ast.IsNot):
                return value is not None
        return None

    def visit_If(self, node: ast.If) -> None:
        branch = self._static_branch(node.test)
        if branch is not None:
            for stmt in (node.body if branch else node.orelse):
                self.visit(stmt)
            return
        self.visit(node.test)
        self.cond_depth += 1
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self.cond_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self.cond_depth += 1
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self.cond_depth -= 1

    def visit_Try(self, node: ast.Try) -> None:
        self.cond_depth += 1
        for stmt in node.body + node.orelse + node.finalbody:
            self.visit(stmt)
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        self.cond_depth -= 1

    # ----------------------------------------------------------- expressions
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self.aliases and not self._suppress:
            self._record_read(self.aliases[node.id])

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        if isinstance(node.value, ast.Name) and node.value.id == self.scalars_param:
            self.visit(node.slice)
            return
        alias = self._alias_of(node)
        if alias is not None:
            if not self._suppress:
                self._record_read(alias)
            self.visit(node.slice)
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # ufunc-style ``out=`` lands the result in the target buffer; the
        # window is the alias's own (``np.clip(a, 0, 1, out=c[lo:hi])``).
        for kw in node.keywords:
            if kw.arg == "out":
                alias = self._alias_of(kw.value)
                if alias is not None:
                    self._record_write(alias)
        self.generic_visit(node)


# ----------------------------------------------------------- per-loop summary
@dataclass(frozen=True)
class LoopRanges:
    """Per-iteration access windows of one loop (``None`` window: the whole
    array for reads, an unprovable coverage for writes)."""

    reads: Mapping[str, Optional[Window]]
    writes: Mapping[str, Optional[Window]]
    complete: bool
    limits: tuple[str, ...] = ()


def _tile_params(fn: Callable[..., object]) -> tuple[str, str]:
    try:
        params = list(inspect.signature(fn).parameters)
    except (TypeError, ValueError):
        return "lo", "hi"
    lo = params[0] if params else "lo"
    hi = params[1] if len(params) > 1 else "hi"
    return lo, hi


@lru_cache(maxsize=256)
def _ranges_for(body: Callable[..., object], loop_var: str) -> LoopRanges:
    access = analyze_body(body)
    if not access.complete:
        limits = access.limits or ("dataflow summary is incomplete",)
        return LoopRanges(
            reads={name: None for name in sorted(access.reads)},
            writes={name: None for name in sorted(access.writes)},
            complete=False,
            limits=limits,
        )
    try:
        source = textwrap.dedent(inspect.getsource(body))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):  # pragma: no cover
        return LoopRanges({}, {}, False, ("kernel body source is unavailable",))
    statements = _body_statements(tree)
    if statements is None:  # pragma: no cover - analyze_body caught this
        return LoopRanges({}, {}, False, ("kernel body is not a plain function definition",))
    arrays_param, scalars_param = _param_names(body)
    lo_param, hi_param = _tile_params(body)
    env: dict[str, Expr] = {
        lo_param: Var(loop_var),
        hi_param: _add(Var(loop_var), Num(1)),
    }
    flow = _RangeFlow(arrays_param, scalars_param, _constants_of(body), loop_var, env)
    for stmt in statements:
        flow.visit(stmt)

    reads: dict[str, Optional[Window]] = {}
    for name in sorted(access.reads):
        windows = flow.reads.get(name, set())
        if name in flow.read_whole or len(windows) != 1:
            reads[name] = None
        else:
            reads[name] = next(iter(windows))
    writes: dict[str, Optional[Window]] = {}
    for name in sorted(access.writes):
        windows = flow.writes.get(name, set())
        if name in flow.write_unknown or len(windows) != 1:
            writes[name] = None
        else:
            writes[name] = next(iter(windows))
    return LoopRanges(reads=reads, writes=writes, complete=True)


def analyze_ranges(loop: ParallelLoop) -> LoopRanges:
    """Recover the per-iteration access windows of one loop's tile body."""
    if loop.body is None:
        return LoopRanges({}, {}, False, ("loop has no kernel body bound",))
    return _ranges_for(loop.body, loop.loop_var)


# --------------------------------------------------------- numeric validation
@dataclass(frozen=True)
class _WindowFitness:
    """Whether a window may back a to-partition (monotone + in bounds) or a
    from/tofrom-partition (also disjoint + exactly covering the extent)."""

    in_ok: bool = False
    out_ok: bool = False


def _eval_window(window: Window, env: dict[str, int], loop_var: str,
                 iteration: int) -> Optional[tuple[int, int]]:
    scope = dict(env)
    scope[loop_var] = iteration
    try:
        lo = window[0].eval(scope)
        hi = window[1].eval(scope)
    except ExprError:
        return None
    return lo, hi


def _window_fitness(
    region: TargetRegion,
    loop: ParallelLoop,
    name: str,
    window: Window,
    envs: list[dict[str, int]],
) -> _WindowFitness:
    """Validate a synthesized window numerically, exactly the way
    ``partition_check`` validates user-written bounds."""
    in_ok = True
    out_ok = True
    checked = False
    for env in envs:
        try:
            n = loop.trip_count_value(env)
        except (ExprError, RegionError):
            continue
        if n <= 0:
            continue
        try:
            extent = region.declared_length(name, env)
        except (RegionError, ExprError):
            return _WindowFitness()
        iters = _sample_iterations(n)
        bounds: dict[int, tuple[int, int]] = {}
        for i in iters:
            b = _eval_window(window, env, loop.loop_var, i)
            if b is None or b[0] < 0 or b[1] < b[0] or b[1] > extent:
                return _WindowFitness()
            bounds[i] = b
        checked = True
        for a, b2 in _adjacent_pairs(iters):
            lo_a, hi_a = bounds[a]
            lo_b, hi_b = bounds[b2]
            if lo_b < lo_a or hi_b < hi_a:
                return _WindowFitness()  # not monotone: unusable either way
            if lo_b != hi_a:
                out_ok = False  # overlap or gap: no output partition
        if bounds[iters[0]][0] != 0 or bounds[iters[-1]][1] != extent:
            out_ok = False  # does not cover the extent exactly
    if not checked:
        return _WindowFitness()
    return _WindowFitness(in_ok=in_ok, out_ok=out_ok)


# ------------------------------------------------------------------ reporting
@dataclass(frozen=True)
class ArrayEvidence:
    """Why inference believes what it believes about one array in one loop."""

    name: str
    loop_var: str
    direction: str  # "read" | "write" | "readwrite" | "reduction"
    range_text: Optional[str]  # per-iteration window, None => whole array
    confidence: str  # "proven" | "whole" | "unknown"

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "loop": self.loop_var,
            "direction": self.direction,
            "range": self.range_text,
            "confidence": self.confidence,
        }


@dataclass
class InferenceReport:
    """Outcome of one synthesis run.

    ``region`` is always safe to execute: the synthesized region when
    inference succeeded and changed something, the *original* region when it
    degraded or found nothing to improve.
    """

    region: TargetRegion
    original: TargetRegion
    degraded: bool
    reasons: tuple[str, ...]
    narrowed: int
    partitions_added: int
    dropped: tuple[str, ...]
    evidence: tuple[ArrayEvidence, ...]
    map_pragma: Optional[str]
    #: keyed ``"<loop-index>:<loop-var>"`` (loop vars may repeat across loops)
    partition_pragmas: dict[str, Optional[str]]
    _suggestions: list[dict[str, object]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return not self.degraded and bool(self.narrowed or self.partitions_added or self.dropped)

    def suggestions(self) -> list[dict[str, object]]:
        """Fix-it payloads (``kind`` is ``"map"`` or ``"partition"``)."""
        return list(self._suggestions)

    def to_item(self) -> dict[str, object]:
        """One entry of the ``repro infer --json`` report."""
        return {
            "region": self.original.name,
            "degraded": self.degraded,
            "changed": self.changed,
            "reasons": list(self.reasons),
            "narrowed": self.narrowed,
            "partitions_added": self.partitions_added,
            "dropped": list(self.dropped),
            "map_pragma": self.map_pragma,
            "partition_pragmas": dict(self.partition_pragmas),
            "evidence": [ev.to_dict() for ev in self.evidence],
            "suggestions": self.suggestions(),
        }

    def render(self) -> str:
        lines = [f"region {self.original.name!r}:"]
        if self.degraded:
            lines.append("  degraded to the user-written clauses:")
            lines.extend(f"    - {reason}" for reason in self.reasons)
        for ev in self.evidence:
            rng = ev.range_text if ev.range_text is not None else "<whole>"
            lines.append(
                f"  loop({ev.loop_var}) {ev.name}: {ev.direction} {rng} [{ev.confidence}]"
            )
        if self.map_pragma is not None:
            lines.append(f"  inferred: #pragma {self.map_pragma}")
        for key, text in self.partition_pragmas.items():
            if text is not None:
                loop_var = key.split(":", 1)[1]
                lines.append(f"  inferred: loop({loop_var}) #pragma {text}")
        if not self.changed and not self.degraded:
            lines.append("  user clauses already minimal; nothing to change")
        return "\n".join(lines)


# ------------------------------------------------------------------ synthesis
def _subset_type(inner: MapType, outer: MapType) -> bool:
    """True when ``inner`` moves no data in a direction ``outer`` does not."""
    return ((not inner.is_input or outer.is_input)
            and (not inner.is_output or outer.is_output))


def _item_for(region: TargetRegion, name: str) -> MapItem:
    sectioned: Optional[MapItem] = None
    bare: Optional[MapItem] = None
    for clause in region.maps:
        for item in clause.items:
            if item.name != name:
                continue
            if item.upper is not None and sectioned is None:
                sectioned = item
            elif bare is None:
                bare = item
    chosen = sectioned or bare
    assert chosen is not None
    return chosen


def _window_text(name: str, window: Window) -> str:
    return f"{name}[{window[0]}:{window[1]}]"


def _spec_text(name: str, spec_lower: Optional[Expr], spec_upper: Optional[Expr]) -> str:
    if spec_upper is None:
        return name
    lower = str(spec_lower) if spec_lower is not None else ""
    return f"{name}[{lower}:{spec_upper}]"


_MAP_ORDER = (MapType.TO, MapType.FROM, MapType.TOFROM, MapType.ALLOC)


def _map_pragma_text(clauses: Mapping[MapType, list[str]]) -> Optional[str]:
    parts = [
        f"map({mt.value}: {', '.join(items)})"
        for mt in _MAP_ORDER
        for items in [clauses.get(mt, [])]
        if items
    ]
    return "omp " + " ".join(parts) if parts else None


def naive_tofrom_region(region: TargetRegion) -> TargetRegion:
    """The region as a clause-less user would get it: every mapped variable
    becomes an implicit whole-extent ``tofrom`` and all partition pragmas are
    dropped — OpenMP's default mapping, and the wire-cost worst case the
    inference bench measures against."""
    items: dict[str, MapItem] = {}
    for clause in region.maps:
        for item in clause.items:
            if item.name not in items or (item.upper is not None
                                          and items[item.name].upper is None):
                items[item.name] = item
    pragmas = [f"omp target device({region.device})" if region.device else "omp target"]
    if items:
        pragmas.append("omp map(tofrom: " + ", ".join(str(i) for i in items.values()) + ")")
    loops = [
        ParallelLoop(
            pragma=loop.pragma,
            loop_var=loop.loop_var,
            trip_count=loop.trip_count,
            reads=loop.reads,
            writes=loop.writes,
            body=loop.body,
            partition_pragma=None,
            flops_per_iter=loop.flops_per_iter,
        )
        for loop in region.loops
    ]
    return TargetRegion(
        name=region.name,
        pragmas=pragmas,
        loops=loops,
        locals_=region.locals_,
        memory_intensity=region.memory_intensity,
    )


def _degraded(region: TargetRegion, reasons: list[str],
              evidence: list[ArrayEvidence]) -> InferenceReport:
    return InferenceReport(
        region=region,
        original=region,
        degraded=True,
        reasons=tuple(reasons),
        narrowed=0,
        partitions_added=0,
        dropped=(),
        evidence=tuple(evidence),
        map_pragma=None,
        partition_pragmas={},
    )


def infer_region(
    region: TargetRegion,
    scalars: Optional[Scalars] = None,
) -> InferenceReport:
    """Synthesize minimal map/partition clauses for ``region``.

    Never narrows on incomplete evidence: any analysis limit, unresolvable
    window, or re-verification finding above NOTE degrades the result to the
    original region (``degraded=True`` with the reasons).
    """
    from repro.analysis.verifier import probe_envs, verify_region

    ranges = [analyze_ranges(loop) for loop in region.loops]
    evidence: list[ArrayEvidence] = []
    reasons: list[str] = []
    reduction_names: set[str] = set()
    for loop, lr in zip(region.loops, ranges):
        red = set(loop.reduction_vars)
        reduction_names |= red
        for name in sorted(set(lr.reads) | set(lr.writes) | red):
            if name in red:
                direction = "reduction"
            elif name in lr.reads and name in lr.writes:
                direction = "readwrite"
            elif name in lr.writes:
                direction = "write"
            else:
                direction = "read"
            window = lr.writes.get(name) or lr.reads.get(name)
            if not lr.complete:
                confidence = "unknown"
            elif window is not None:
                confidence = "proven"
            else:
                confidence = "whole"
            evidence.append(ArrayEvidence(
                name=name,
                loop_var=loop.loop_var,
                direction=direction,
                range_text=(f"{window[0]}:{window[1]}" if window is not None else None),
                confidence=confidence,
            ))
        if not lr.complete:
            reasons.append(f"loop({loop.loop_var}): " + "; ".join(lr.limits))

    if reasons:
        return _degraded(region, reasons, evidence)

    envs = probe_envs(region, scalars)
    free_scalars: set[str] = set()
    for env in envs:
        free_scalars |= env.keys()

    # ------------------------------------------------- window fitness per loop
    fitness: dict[tuple[int, str, str], _WindowFitness] = {}
    for idx, (loop, lr) in enumerate(zip(region.loops, ranges)):
        for kind, windows in (("read", lr.reads), ("write", lr.writes)):
            for name, window in windows.items():
                if window is None:
                    fitness[(idx, name, kind)] = _WindowFitness()
                else:
                    fitness[(idx, name, kind)] = _window_fitness(
                        region, loop, name, window, envs)

    # --------------------------------------------- region-level map directions
    declared_reads: set[str] = set()
    declared_writes: set[str] = set()
    for loop in region.loops:
        red = set(loop.reduction_vars)
        declared_reads |= set(loop.reads) | red
        declared_writes |= set(loop.writes) | red

    produced: set[str] = set()
    needs_in: set[str] = set()
    needs_out: set[str] = set()
    accessed: set[str] = set()
    for idx, (loop, lr) in enumerate(zip(region.loops, ranges)):
        red = set(loop.reduction_vars)
        for name in set(lr.reads) | red:
            accessed.add(name)
            if name not in produced:
                needs_in.add(name)
        for name in set(lr.writes) | red:
            accessed.add(name)
            needs_out.add(name)
        for name, window in lr.writes.items():
            if name not in red and window is not None \
                    and fitness[(idx, name, "write")].out_ok:
                produced.add(name)

    mapped_order: list[str] = []
    for clause in region.maps:
        for item in clause.items:
            if item.name not in mapped_order:
                mapped_order.append(item.name)

    suggestions: list[dict[str, object]] = []
    new_clauses: dict[MapType, list[str]] = {}
    narrowed = 0
    dropped: list[str] = []
    for name in mapped_order:
        orig_type = region.map_type_of(name)
        assert orig_type is not None
        item = _item_for(region, name)
        if name in reduction_names or orig_type == MapType.ALLOC:
            new_clauses.setdefault(orig_type, []).append(str(item))
            continue
        if name not in accessed and name not in declared_reads | declared_writes:
            dropped.append(name)
            suggestions.append({
                "region": region.name, "kind": "map", "loop": None, "name": name,
                "current": f"map({orig_type.value}: {item})",
                "suggested": f"drop the map: no loop touches {name!r}",
            })
            continue
        want_in = name in needs_in or name in declared_reads
        want_out = name in needs_out or name in declared_writes
        if want_in and want_out:
            new_type = MapType.TOFROM
        elif want_out:
            new_type = MapType.FROM
        else:
            new_type = MapType.TO
        if not _subset_type(new_type, orig_type):
            new_type = orig_type  # never widen: the verifier owns that story
        if new_type != orig_type:
            narrowed += 1
            suggestions.append({
                "region": region.name, "kind": "map", "loop": None, "name": name,
                "current": f"map({orig_type.value}: {item})",
                "suggested": f"map({new_type.value}: {item})",
            })
        new_clauses.setdefault(new_type, []).append(str(item))

    # ------------------------------------------------- partition specs per loop
    partitions_added = 0
    new_partition_pragmas: list[Optional[str]] = []
    partition_texts: dict[str, Optional[str]] = {}
    region_type_of: dict[str, MapType] = {}
    for name in mapped_order:
        if name in dropped:
            continue
        mt = region.map_type_of(name)
        assert mt is not None
        # recompute the narrowed type the same way as above
        if name in reduction_names or mt == MapType.ALLOC:
            region_type_of[name] = mt
            continue
        want_in = name in needs_in or name in declared_reads
        want_out = name in needs_out or name in declared_writes
        if want_in and want_out:
            cand = MapType.TOFROM
        elif want_out:
            cand = MapType.FROM
        else:
            cand = MapType.TO
        region_type_of[name] = cand if _subset_type(cand, mt) else mt

    for idx, (loop, lr) in enumerate(zip(region.loops, ranges)):
        red = set(loop.reduction_vars)
        loop_changed = False
        if loop.loop_var in free_scalars:
            # The loop variable shadows a problem-size scalar: synthesized
            # bounds would be ambiguous.  Keep the user's pragma untouched.
            new_partition_pragmas.append(loop.partition_pragma)
            partition_texts[f"{idx}:{loop.loop_var}"] = None
            continue
        items_by_type: dict[str, list[str]] = {}
        for name, spec in loop.partitions.items():
            # Existing user partitions are kept verbatim: they already passed
            # the partition checker on the original region.
            items_by_type.setdefault(spec.map_type.value, []).append(
                _spec_text(name, spec.lower, spec.upper))
        for name in sorted(set(lr.reads) | set(lr.writes)):
            if name in red or name in loop.partitions or name in dropped:
                continue
            read_w = lr.reads.get(name)
            write_w = lr.writes.get(name)
            window: Optional[Window] = None
            ptype: Optional[str] = None
            if name in lr.writes:
                if write_w is None:
                    continue
                if name in lr.reads:
                    if read_w != write_w:
                        continue
                    if fitness[(idx, name, "write")].out_ok:
                        window, ptype = write_w, "tofrom"
                elif fitness[(idx, name, "write")].out_ok:
                    window, ptype = write_w, "from"
            elif read_w is not None and fitness[(idx, name, "read")].in_ok:
                window, ptype = read_w, "to"
            if window is None or ptype is None:
                continue
            deps = window[0].variables() | window[1].variables()
            if loop.loop_var not in deps:
                continue  # constant window: broadcast is already minimal
            if name not in region.locals_:
                part_mt = MapType(ptype)
                reg_mt = region_type_of.get(name)
                if reg_mt is None or not _subset_type(part_mt, reg_mt):
                    continue  # direction would contradict the region map
            items_by_type.setdefault(ptype, []).append(_window_text(name, window))
            partitions_added += 1
            loop_changed = True
            suggestion: dict[str, object] = {
                "region": region.name, "kind": "partition", "loop": loop.loop_var,
                "name": name, "current": loop.partition_pragma,
                "suggested": f"omp target data map({ptype}: {_window_text(name, window)})",
            }
            extent_note = _partition_note(region, loop, name, window, envs)
            if extent_note is not None:
                suggestion["note"] = extent_note
            suggestions.append(suggestion)
        if not loop_changed:
            new_partition_pragmas.append(loop.partition_pragma)
            partition_texts[f"{idx}:{loop.loop_var}"] = None
            continue
        parts = [
            f"map({mt.value}: {', '.join(items_by_type[mt.value])})"
            for mt in _MAP_ORDER
            if items_by_type.get(mt.value)
        ]
        text = "omp target data " + " ".join(parts)
        new_partition_pragmas.append(text)
        partition_texts[f"{idx}:{loop.loop_var}"] = text

    map_pragma = _map_pragma_text(new_clauses)
    report = InferenceReport(
        region=region,
        original=region,
        degraded=False,
        reasons=(),
        narrowed=narrowed,
        partitions_added=partitions_added,
        dropped=tuple(dropped),
        evidence=tuple(evidence),
        map_pragma=map_pragma,
        partition_pragmas=partition_texts,
        _suggestions=suggestions,
    )
    if not report.changed:
        return report

    # ------------------------------------------------ rebuild and re-verify
    pragmas = [f"omp target device({region.device})" if region.device else "omp target"]
    if map_pragma is not None:
        pragmas.append(map_pragma)
    try:
        loops = [
            ParallelLoop(
                pragma=loop.pragma,
                loop_var=loop.loop_var,
                trip_count=loop.trip_count,
                reads=loop.reads,
                writes=loop.writes,
                body=loop.body,
                partition_pragma=new_partition_pragmas[idx],
                flops_per_iter=loop.flops_per_iter,
            )
            for idx, loop in enumerate(region.loops)
        ]
        inferred = TargetRegion(
            name=region.name,
            pragmas=pragmas,
            loops=loops,
            locals_=region.locals_,
            memory_intensity=region.memory_intensity,
        )
    except RegionError as exc:
        return _degraded(region, [f"synthesized region is ill-formed: {exc}"], evidence)
    gate = verify_region(inferred, scalars, advisories=False)
    if gate.max_severity > Severity.NOTE:
        codes = ", ".join(sorted(gate.codes))
        return _degraded(
            region,
            [f"synthesized clauses failed re-verification ({codes})"],
            evidence,
        )
    report.region = inferred
    return report


def _partition_note(
    region: TargetRegion,
    loop: ParallelLoop,
    name: str,
    window: Window,
    envs: list[dict[str, int]],
) -> Optional[str]:
    """The over-broadness evidence: whole-extent vs per-iteration elements."""
    for env in envs:
        try:
            extent = region.declared_length(name, env)
            n = loop.trip_count_value(env)
        except (RegionError, ExprError):
            continue
        if n <= 0:
            continue
        bounds = _eval_window(window, env, loop.loop_var, 0)
        if bounds is None:
            continue
        return (f"broadcast ships {extent} elements per task; each iteration "
                f"provably touches {bounds[1] - bounds[0]}")
    return None
