"""Static offload verifier: map-clause, dataflow, partition and race checks.

Public surface::

    from repro.analysis import verify_region, AnalysisReport, Severity

    report = verify_region(region, scalars={"N": 1024})
    if not report.ok:
        print(report.render())

``repro lint`` (CLI) and the runtime's strict mode (``[Analysis]`` config
section / ``offload(..., strict=True)``) are thin wrappers over this module.
The diagnostic catalogue lives in ``docs/ANALYSIS.md``.
"""

from repro.analysis.dataflow import BodyAccess, analyze_body
from repro.analysis.diagnostics import (
    CODES,
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
    json_report,
)
from repro.analysis.fusioncheck import check_fusable_chains
from repro.analysis.infer import (
    ArrayEvidence,
    InferenceReport,
    infer_region,
    naive_tofrom_region,
)
from repro.analysis.mapcheck import check_dataflow, check_inferred_maps, check_maps
from repro.analysis.partition_check import check_partitions
from repro.analysis.races import check_races
from repro.analysis.verifier import (
    enforce_strict,
    probe_envs,
    python_file_regions,
    source_regions,
    verify_python_file,
    verify_region,
    verify_source,
)

__all__ = [
    "CODES",
    "AnalysisError",
    "AnalysisReport",
    "ArrayEvidence",
    "BodyAccess",
    "Diagnostic",
    "InferenceReport",
    "Severity",
    "Span",
    "analyze_body",
    "check_dataflow",
    "check_fusable_chains",
    "check_inferred_maps",
    "check_maps",
    "check_partitions",
    "check_races",
    "enforce_strict",
    "infer_region",
    "json_report",
    "naive_tofrom_region",
    "probe_envs",
    "python_file_regions",
    "source_regions",
    "verify_python_file",
    "verify_region",
    "verify_source",
]
