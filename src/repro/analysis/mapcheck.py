"""Pass 1 — map-clause lint — and pass 2 — kernel dataflow cross-checks.

The map-clause linter reasons from the *declared* access sets (``reads=`` /
``writes=`` plus reduction clauses): every read must be satisfiable from an
input map or an earlier loop's output, every write must reach the host
through an output map (or stay in a region-local buffer), and maps nobody
uses — or ``tofrom`` maps used in one direction only — cost real upload
dollars in the paper's model, so they are flagged.

The dataflow cross-check then compares those declarations against what the
tile body *actually does* (see :mod:`repro.analysis.dataflow`): undeclared
accesses corrupt the Spark merge (the runtime scatters/gathers only declared
variables), phantom declarations broadcast data nobody touches.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.analysis.dataflow import analyze_body
from repro.analysis.diagnostics import Diagnostic, Span
from repro.core.api import ParallelLoop, TargetRegion


def _reduction_names(loop: ParallelLoop) -> set[str]:
    return set(loop.reduction_vars)


def check_maps(region: TargetRegion, usage_reliable: bool = True) -> list[Diagnostic]:
    """Map-clause lint over the whole region.

    ``usage_reliable=False`` (source-scanned regions whose access sets were
    inferred from partition pragmas alone) skips the checks that reason from
    the *absence* of a declared access.
    """
    out: list[Diagnostic] = []
    reads_all: set[str] = set()
    writes_all: set[str] = set()
    for loop in region.loops:
        red = _reduction_names(loop)
        reads_all |= set(loop.reads) | red
        writes_all |= set(loop.writes) | red

    mapped = {item.name for clause in region.maps for item in clause.items}
    for name in sorted(mapped):
        map_type = region.map_type_of(name)
        assert map_type is not None
        span = Span(region.name, clause=f"map({map_type.value}: {name})")
        used_read = name in reads_all
        used_write = name in writes_all
        if usage_reliable and not used_read and not used_write:
            out.append(Diagnostic.make(
                "OMP103", span,
                f"{name!r} is mapped but no loop reads or writes it; the "
                f"transfer is paid for nothing",
                hint=f"drop {name!r} from the map clauses",
            ))
            continue
        if usage_reliable and map_type.value == "tofrom":
            if not used_write:
                out.append(Diagnostic.make(
                    "OMP104", span,
                    f"{name!r} is mapped tofrom but never written; the "
                    f"download back to the host is wasted",
                    hint=f"map(to: {name}) suffices",
                ))
            elif not used_read:
                out.append(Diagnostic.make(
                    "OMP104", span,
                    f"{name!r} is mapped tofrom but never read; the upload "
                    f"to the device is wasted",
                    hint=f"map(from: {name}) suffices",
                ))
        if used_write and not map_type.is_output:
            out.append(Diagnostic.make(
                "OMP102", span,
                f"{name!r} is written but mapped {map_type.value}-only: the "
                f"result never reaches the host",
                hint=f"map(from: {name}) or map(tofrom: {name})",
            ))

    # Read-before-write, in loop order: 'from'/'alloc' maps and region-local
    # buffers hold no host data, so a read needs an earlier producing loop.
    written: set[str] = set()
    for loop in region.loops:
        red = _reduction_names(loop)
        span = Span(region.name, loop=loop.loop_var)
        for name in loop.reads:
            if name in red or name in written:
                continue
            map_type = region.map_type_of(name)
            uninitialized = (
                name in region.locals_
                or (map_type is not None and not map_type.is_input)
            )
            if uninitialized:
                kind = ("region-local buffer" if name in region.locals_
                        else f"map({map_type.value}) variable")  # type: ignore[union-attr]
                out.append(Diagnostic.make(
                    "OMP105", span,
                    f"loop reads {name!r} but no earlier loop writes it; the "
                    f"{kind} is uninitialized on the device",
                    hint=f"map(to:/tofrom: {name}) or reorder the loops",
                ))
        written |= set(loop.writes) | red
    return out


def check_dataflow(region: TargetRegion, loop: ParallelLoop) -> list[Diagnostic]:
    """Cross-check one loop's declared access sets against its body."""
    out: list[Diagnostic] = []
    span = Span(region.name, loop=loop.loop_var)
    if loop.body is None:
        out.append(Diagnostic.make(
            "OMP190", span,
            "loop has no kernel body bound; dataflow checks skipped",
        ))
        return out
    access = analyze_body(loop.body)
    if not access.source_available:
        out.append(Diagnostic.make(
            "OMP190", span,
            f"dataflow checks skipped: {access.limits[0]}",
        ))
        return out

    red = _reduction_names(loop)
    declared_reads = set(loop.reads) | red
    declared_writes = set(loop.writes) | red
    known = ({item.name for clause in region.maps for item in clause.items}
             | set(region.locals_))

    for name in sorted((access.reads | access.writes) - known):
        out.append(Diagnostic.make(
            "OMP101", span,
            f"kernel body accesses {name!r}, which is neither mapped on "
            f"region {region.name!r} nor a region-local buffer",
            hint=f"add {name!r} to a map clause or to locals_",
        ))

    for name in sorted((access.reads & known) - declared_reads):
        out.append(Diagnostic.make(
            "OMP111", span,
            f"kernel body reads {name!r} but the loop does not declare it in "
            f"reads=; the runtime will not ship it to the workers",
            hint=f"add {name!r} to reads=",
        ))
    for name in sorted((access.writes & known) - declared_writes):
        out.append(Diagnostic.make(
            "OMP112", span,
            f"kernel body writes {name!r} but the loop does not declare it "
            f"in writes=; the Spark merge will drop the result",
            hint=f"add {name!r} to writes=",
        ))

    if access.complete:
        for name in sorted(declared_reads - access.reads - red):
            out.append(Diagnostic.make(
                "OMP113", span,
                f"declared read of {name!r} is never performed by the kernel "
                f"body; the broadcast is wasted",
                hint=f"remove {name!r} from reads=",
            ))
        for name in sorted(declared_writes - access.writes - red):
            out.append(Diagnostic.make(
                "OMP113", span,
                f"declared write of {name!r} is never performed by the "
                f"kernel body",
                hint=f"remove {name!r} from writes=",
            ))
    else:
        reasons = "; ".join(access.limits)
        out.append(Diagnostic.make(
            "OMP190", span,
            f"dataflow summary is incomplete ({reasons}); phantom-access "
            f"checks skipped",
        ))
    return out


def check_inferred_maps(
    region: TargetRegion,
    scalars: Optional[Mapping[str, Union[int, float]]] = None,
) -> list[Diagnostic]:
    """Advisory pass: OMP2xx notes wherever clause inference can prove the
    user's maps are wider than the kernel needs.

    Purely informational (NOTE severity, never fatal even in strict mode);
    the inferred clause rides along as the fix-it ``hint``.  Silent whenever
    inference degrades — an incomplete dataflow summary is already reported
    as OMP190 by :func:`check_dataflow`.
    """
    # Imported lazily: infer builds on the verifier driver, which calls this
    # pass — a module-level import would be a cycle.
    from repro.analysis.infer import infer_region

    rep = infer_region(region, scalars)
    if rep.degraded or not rep.changed:
        return []
    out: list[Diagnostic] = []
    for sug in rep.suggestions():
        kind = sug.get("kind")
        name = sug.get("name")
        loop = sug.get("loop")
        suggested = str(sug.get("suggested"))
        current = sug.get("current")
        if kind == "map":
            out.append(Diagnostic.make(
                "OMP201",
                Span(region.name, clause=str(current)),
                f"{name!r} is mapped more broadly than the kernel provably "
                f"needs ({current})",
                hint=suggested,
            ))
        else:
            note = sug.get("note")
            detail = f"; {note}" if note else ""
            out.append(Diagnostic.make(
                "OMP202",
                Span(region.name, loop=str(loop) if loop is not None else None),
                f"per-iteration accesses of {name!r} are provably disjoint "
                f"across iterations{detail}",
                hint=suggested,
            ))
    return out
