"""Target-device plugin interface.

"Target-specific offloading plug-ins ... perform the direct interaction with
the devices ... and provide services such as the initialization and
transmission of input and output data, and the execution of offloaded
computation."  Every device implements this interface; the runtime's wrapper
(:mod:`repro.core.runtime`) is the only caller.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence, Union

from repro.core.api import TargetRegion
from repro.core.buffers import Buffer, ExecutionMode
from repro.core.data_env import DataEnvironment, DataEnvReport
from repro.core.omp_ast import MapType


class DeviceError(Exception):
    """Device initialization or execution failure."""


class Device(abc.ABC):
    """One offloading target."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.device_id = -1  # assigned by the runtime at registration
        self.env = DataEnvironment(device_name=name)
        self._initialized = False

    # ------------------------------------------------------------- lifecycle
    def initialize(self) -> None:
        """Idempotent device bring-up (RTL load, cluster connection...)."""
        if not self._initialized:
            self._do_initialize()
            self._initialized = True

    @abc.abstractmethod
    def _do_initialize(self) -> None:
        ...

    @abc.abstractmethod
    def is_available(self) -> bool:
        """Can this device accept offloads right now?  The runtime falls back
        to the host when the answer is no ("if the cloud is not available the
        computation is performed locally")."""

    # ----------------------------------------------------------- data moves
    @abc.abstractmethod
    def data_begin(self, buffers: Mapping[str, Buffer], region: TargetRegion,
                   mode: ExecutionMode) -> None:
        """Create the region's data environment and ship inputs to the device."""

    @abc.abstractmethod
    def data_end(self, buffers: Mapping[str, Buffer], region: TargetRegion,
                 mode: ExecutionMode) -> None:
        """Copy outputs back to the host and tear down the environment."""

    def abort(self, region: TargetRegion):
        """Tear down after a failed offload attempt (called by the runtime
        before it degrades to host execution).  Returns the partial report
        of the failed attempt when the device kept one, else None."""
        return None

    # ------------------------------------------- persistent data environments
    def enter_data(self, buffers: Mapping[str, Buffer],
                   map_types: Mapping[str, MapType], mode: ExecutionMode,
                   report: DataEnvReport) -> None:
        """``__tgt_target_data_begin``: create persistent map entries and ship
        ``to``/``tofrom`` inputs to the device.  The base implementation is
        transport-free (suits the host, whose "device copy" is the host
        array); plugins with real transport override it."""
        for name, buf in buffers.items():
            existing = self.env.entry_or_none(name)
            if existing is not None:
                self.env.begin(buf, map_types[name])
                report.resident_hits += 1
                continue
            self.env.begin(buf, map_types[name], persistent=True)

    def exit_data(self, names: Sequence[str], mode: ExecutionMode,
                  report: DataEnvReport) -> None:
        """``__tgt_target_data_end``: drop one reference per name; entries
        that reach zero are released (plugins download dirty outputs)."""
        for name in names:
            self.env.end(name)

    def update_data(self, to_names: Sequence[str], from_names: Sequence[str],
                    mode: ExecutionMode, report: DataEnvReport) -> None:
        """``__tgt_target_data_update``: refresh present device copies from
        the host (``to``) or host copies from the device (``from``).  Names
        that are not present are ignored, as OpenMP 5.x specifies for motion
        clauses on absent list items."""
        report.updates_to += sum(1 for n in to_names if self.env.is_mapped(n))
        report.updates_from += sum(1 for n in from_names if self.env.is_mapped(n))

    def invalidate_data_env(self) -> None:
        """Called by the runtime when this device failed mid-offload: the
        device copies can no longer be trusted.  Plugins sync dirty outputs
        back best-effort and drop their handles so residents re-stage on the
        next use; reference counts stay intact, so a later ``exit data``
        remains balanced."""

    # ------------------------------------------------------------- execution
    @abc.abstractmethod
    def execute(
        self,
        region: TargetRegion,
        buffers: Mapping[str, Buffer],
        scalars: Mapping[str, Union[int, float]],
        mode: ExecutionMode,
    ):
        """Run the region's loops on the device.  Returns a report object."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r}, id={self.device_id})"
