"""Bound expressions of the partitioning extension.

The paper's ``map(to: A[i*N:(i+1)*N])`` puts arithmetic over the loop
variable inside map clauses.  This module is the expression language: a
lexer-independent recursive-descent parser over ``+ - * / % ( )``, integer
literals and identifiers, producing an AST that evaluates against an
environment (``i``, ``N``, ...) and prints back to C-ish source.

Division is C integer division (truncation toward zero) because the bounds
are C ``int`` expressions in the original.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

EvalEnv = Mapping[str, Union[int, float]]
#: Environment for vectorized evaluation: scalars plus int64 arrays.
VecEnv = Mapping[str, Union[int, float, np.ndarray]]


class ExprError(Exception):
    """Malformed bound expression."""


class Expr:
    """Base expression node."""

    def eval(self, env: EvalEnv) -> int:
        raise NotImplementedError

    def eval_vec(self, env: VecEnv) -> Union[int, np.ndarray]:
        """Evaluate against an environment whose values may be int64 arrays.

        Semantics match :meth:`eval` element-wise (C truncating division and
        remainder included), so ``expr.eval_vec({..., i: np.arange(n)})[j] ==
        expr.eval({..., i: j})`` exactly — the vectorized partitioner in
        :mod:`repro.core.partition` relies on this bit-identity.
        """
        raise NotImplementedError

    def variables(self) -> set[str]:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    value: int

    def eval(self, env: EvalEnv) -> int:
        return self.value

    def eval_vec(self, env: VecEnv) -> int:
        return self.value

    def variables(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def eval(self, env: EvalEnv) -> int:
        try:
            return int(env[self.name])
        except KeyError:
            raise ExprError(f"unbound variable {self.name!r} in bound expression") from None

    def eval_vec(self, env: VecEnv) -> Union[int, np.ndarray]:
        try:
            v = env[self.name]
        except KeyError:
            raise ExprError(f"unbound variable {self.name!r} in bound expression") from None
        return v if isinstance(v, np.ndarray) else int(v)

    def variables(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


def _c_div(a: int, b: int) -> int:
    """C99 integer division: truncation toward zero."""
    if b == 0:
        raise ExprError("division by zero in bound expression")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    """C99 %: sign follows the dividend (a == (a/b)*b + a%b)."""
    return a - _c_div(a, b) * b


def _c_div_vec(a, b):
    """Element-wise C99 truncating division over ints/int64 arrays."""
    if np.any(np.equal(b, 0)):
        raise ExprError("division by zero in bound expression")
    q = np.abs(a) // np.abs(b)
    return np.where(np.equal(a >= 0, b >= 0), q, -q)


def _c_mod_vec(a, b):
    return a - _c_div_vec(a, b) * b


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    _OPS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": _c_div,
        "%": _c_mod,
    }

    _OPS_VEC = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": _c_div_vec,
        "%": _c_mod_vec,
    }

    def eval(self, env: EvalEnv) -> int:
        if self.op not in self._OPS:
            raise ExprError(f"unknown operator {self.op!r}")
        return self._OPS[self.op](int(self.left.eval(env)), int(self.right.eval(env)))

    def eval_vec(self, env: VecEnv) -> Union[int, np.ndarray]:
        if self.op not in self._OPS_VEC:
            raise ExprError(f"unknown operator {self.op!r}")
        return self._OPS_VEC[self.op](self.left.eval_vec(env), self.right.eval_vec(env))

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left}{self.op}{self.right})"


@dataclass(frozen=True)
class Neg(Expr):
    operand: Expr

    def eval(self, env: EvalEnv) -> int:
        return -int(self.operand.eval(env))

    def eval_vec(self, env: VecEnv) -> Union[int, np.ndarray]:
        return -self.operand.eval_vec(env)

    def variables(self) -> set[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"(-{self.operand})"


_TOKEN_RE = re.compile(r"\s*(?:(\d+)|([A-Za-z_]\w*)|([-+*/%()]))")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            rest = text[pos:].strip()
            if not rest:
                break
            raise ExprError(f"unexpected character {rest[0]!r} in expression {text!r}")
        tokens.append(m.group(m.lastindex))  # type: ignore[arg-type]
        pos = m.end()
    return tokens


class _Parser:
    """expr := term (('+'|'-') term)* ; term := unary (('*'|'/'|'%') unary)* ;
    unary := '-' unary | atom ; atom := NUM | IDENT | '(' expr ')'"""

    def __init__(self, tokens: list[str], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ExprError(f"unexpected end of expression {self.source!r}")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ExprError(f"expected {tok!r}, got {got!r} in {self.source!r}")

    def parse(self) -> Expr:
        e = self.expr()
        if self.peek() is not None:
            raise ExprError(f"trailing tokens after expression in {self.source!r}")
        return e

    def expr(self) -> Expr:
        node = self.term()
        while self.peek() in ("+", "-"):
            op = self.next()
            node = BinOp(op, node, self.term())
        return node

    def term(self) -> Expr:
        node = self.unary()
        while self.peek() in ("*", "/", "%"):
            op = self.next()
            node = BinOp(op, node, self.unary())
        return node

    def unary(self) -> Expr:
        if self.peek() == "-":
            self.next()
            return Neg(self.unary())
        return self.atom()

    def atom(self) -> Expr:
        tok = self.next()
        if tok == "(":
            node = self.expr()
            self.expect(")")
            return node
        if tok.isdigit():
            return Num(int(tok))
        if re.fullmatch(r"[A-Za-z_]\w*", tok):
            return Var(tok)
        raise ExprError(f"unexpected token {tok!r} in {self.source!r}")


def parse_expr(text: str) -> Expr:
    """Parse a C-ish integer expression into an :class:`Expr`.

    >>> parse_expr("i*N + 1").eval({"i": 2, "N": 10})
    21
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ExprError("empty expression")
    return _Parser(tokens, text).parse()
