"""Host device: the fallback target.

When a region names no device, or the cloud is unreachable, the loops run on
the initial device.  Execution semantics are kept deliberately identical to
the worker-side semantics of the cloud path (zero-initialized ``from``
outputs, identity-initialized reduction partials merged with the original
value) so that functional tests can assert host ≡ cloud bit-for-bit.
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from repro.core.api import TargetRegion
from repro.core.buffers import Buffer, ExecutionMode
from repro.core.device import Device, DeviceError
from repro.core.omp_ast import REDUCTION_OPS, MapType
from repro.core.report import OffloadReport
from repro.obs.events import ResidentHit, TaskEnd, TaskStart, get_bus
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.compute import ComputeModel


class HostDevice(Device):
    """The initial device: sequential native execution."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION) -> None:
        super().__init__(name="HOST")
        self.compute_model = ComputeModel(calibration)
        self._pending_resident_hits = 0

    def _do_initialize(self) -> None:
        pass

    def is_available(self) -> bool:
        return True

    def data_begin(self, buffers, region, mode) -> None:
        bus = get_bus()
        for name in {i.name for c in region.maps for i in c.items}:
            resident = self.env.is_mapped(name)
            self.env.begin(buffers[name], region.map_type_of(name) or MapType.TOFROM)
            if resident:
                # Presence semantics hold on the host too, but its "device
                # copy" IS the host array, so nothing was ever retransferred.
                self._pending_resident_hits += 1
                bus.emit(ResidentHit(resource=self.name, device=self.name,
                                     buffer=name, bytes_saved=0))

    def data_end(self, buffers, region, mode) -> None:
        for name in {i.name for c in region.maps for i in c.items}:
            self.env.end(name)

    def execute(
        self,
        region: TargetRegion,
        buffers: Mapping[str, Buffer],
        scalars: Mapping[str, Union[int, float]],
        mode: ExecutionMode,
    ) -> OffloadReport:
        report = OffloadReport(region_name=region.name, device_name=self.name,
                               mode=mode.value)
        report.resident_hits = self._pending_resident_hits
        self._pending_resident_hits = 0
        total_flops = 0.0
        local_arrays: dict[str, np.ndarray] = {}
        for loop in region.loops:
            n = loop.trip_count_value(scalars)
            total_flops += loop.tile_flops(0, n, scalars)
            if mode == ExecutionMode.FUNCTIONAL:
                self._run_loop(loop, n, region, buffers, scalars, local_arrays)
        # Sequential native time: the Figure-4 speedup baseline.
        seq = self.compute_model.sequential_time(total_flops)
        report.computation_s = seq
        report.spark_job_s = seq  # no cluster: the "job" is the computation
        # The host runs the whole region as one sequential "task".
        bus = get_bus()
        bus.emit(TaskStart(time=0.0, resource="host", task_id=0, worker="host"))
        bus.emit(TaskEnd(time=seq, resource="host", task_id=0, worker="host",
                         duration_s=seq))
        return report

    # -------------------------------------------------------------- internals
    def _run_loop(
        self,
        loop,
        n: int,
        region: TargetRegion,
        buffers: Mapping[str, Buffer],
        scalars: Mapping[str, Union[int, float]],
        local_arrays: dict[str, np.ndarray],
    ) -> None:
        if loop.body is None:
            raise DeviceError(
                f"loop over {loop.loop_var!r} in region {region.name!r} has no body; "
                f"functional execution is impossible"
            )
        arrays: dict[str, object] = {}
        staging: list[tuple[str, np.ndarray, str]] = []  # (name, scratch, kind)
        reductions = loop.reduction_vars

        for name in dict.fromkeys((*loop.reads, *loop.writes)):
            host = self._array_for(name, region, buffers, scalars, local_arrays)
            writes = name in loop.writes
            if not writes:
                arrays[name] = host
                continue
            if name in reductions:
                identity, _ = REDUCTION_OPS[reductions[name]]
                scratch = np.full_like(host, identity)
                arrays[name] = scratch
                staging.append((name, scratch, "reduction"))
            elif (region.map_type_of(name) or MapType.TOFROM) == MapType.FROM \
                    and name not in region.locals_:
                scratch = np.zeros_like(host)
                arrays[name] = scratch
                staging.append((name, scratch, "overwrite"))
            else:
                arrays[name] = host  # tofrom / locals: update in place

        loop.body(0, n, arrays, scalars)

        for name, scratch, kind in staging:
            host = self._array_for(name, region, buffers, scalars, local_arrays)
            if kind == "reduction":
                _, combine = REDUCTION_OPS[reductions[name]]
                for idx in range(host.shape[0]):
                    host[idx] = combine(host[idx], scratch[idx])
            else:
                host[:] = scratch

    @staticmethod
    def _array_for(
        name: str,
        region: TargetRegion,
        buffers: Mapping[str, Buffer],
        scalars: Mapping[str, Union[int, float]],
        local_arrays: dict[str, np.ndarray],
    ) -> np.ndarray:
        if name in buffers:
            return buffers[name].require_data()
        if name in region.locals_:
            if name not in local_arrays:
                length = region.declared_length(name, scalars)
                local_arrays[name] = np.zeros(length, dtype=np.float32)
            return local_arrays[name]
        raise DeviceError(f"unknown variable {name!r} in region {region.name!r}")
