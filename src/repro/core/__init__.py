"""OmpCloud core: the OpenMP accelerator model with a cloud device.

This package is the paper's contribution proper:

* a directive **front end** (:mod:`~repro.core.lexer`,
  :mod:`~repro.core.parser`, :mod:`~repro.core.omp_ast`,
  :mod:`~repro.core.exprs`) for the pragma dialect of Listings 1-2,
  including the partitioning extension of Section III-B;
* a **libomptarget-style runtime** (:mod:`~repro.core.runtime`,
  :mod:`~repro.core.device`, :mod:`~repro.core.data_env`) with host fallback
  (:mod:`~repro.core.plugin_host`) and the **cloud plugin**
  (:mod:`~repro.core.plugin_cloud`) driven by a configuration file
  (:mod:`~repro.core.config`);
* the **lowering** of annotated loops to Spark jobs: Algorithm 1's tiling
  (:mod:`~repro.core.tiling`), the partition analysis of Eq. 1-3
  (:mod:`~repro.core.partition`) and the map-reduce job generator of
  Eq. 4-10 (:mod:`~repro.core.codegen`);
* the public API (:mod:`~repro.core.api`): :class:`TargetRegion` et al.
"""

from repro.core.buffers import Buffer, OffsetArray, ExecutionMode
from repro.core.exprs import Expr, parse_expr, EvalEnv
from repro.core.omp_ast import (
    MapClause,
    MapItem,
    MapType,
    ParallelForConstruct,
    Pragma,
    ReductionClause,
    TargetConstruct,
    TargetDataConstruct,
)
from repro.core.parser import parse_pragma, DirectiveError
from repro.core.tiling import tile_iterations, Tile
from repro.core.partition import PartitionSpec, partition_for_tile
from repro.core.config import CloudConfig, load_config
from repro.core.api import ParallelLoop, TargetRegion, offload, omp_get_num_devices
from repro.core.runtime import OffloadRuntime, DEVICE_HOST
from repro.core.device import Device
from repro.core.plugin_host import HostDevice
from repro.core.plugin_cloud import CloudDevice
from repro.core.report import OffloadReport
from repro.core.source_scan import region_from_source, scan_source
from repro.core.staging_cache import CacheKey, StagingCache
from repro.core.decorators import OmpKernel, omp_kernel

__all__ = [
    "Buffer",
    "OffsetArray",
    "ExecutionMode",
    "Expr",
    "parse_expr",
    "EvalEnv",
    "MapClause",
    "MapItem",
    "MapType",
    "ParallelForConstruct",
    "Pragma",
    "ReductionClause",
    "TargetConstruct",
    "TargetDataConstruct",
    "parse_pragma",
    "DirectiveError",
    "tile_iterations",
    "Tile",
    "PartitionSpec",
    "partition_for_tile",
    "CloudConfig",
    "load_config",
    "ParallelLoop",
    "TargetRegion",
    "offload",
    "omp_get_num_devices",
    "OffloadRuntime",
    "DEVICE_HOST",
    "Device",
    "HostDevice",
    "CloudDevice",
    "OffloadReport",
    "region_from_source",
    "scan_source",
    "CacheKey",
    "StagingCache",
    "OmpKernel",
    "omp_kernel",
]
