"""Algorithm 1: tiling the parallel loop to the cluster size.

"Since each iteration will require one call to JNI, the closer the number of
iterations is to the number of cores, the smaller will be the overhead."  The
transformed loop runs ``ii`` over tiles of size ``floor(N/C)``:

    for ii = 0 to N-1 by floor(N/C):
        for i = ii to min(ii + floor(N/C) - 1, N-1):
            loopbody

The total core count C "is passed as an argument when Spark is calling the
map functions to avoid any recompilation when executing on different
clusters" — here, ``tile_iterations`` is evaluated at job-generation time
with the live cluster's core count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Tile:
    """One tile: iterations [lo, hi) of the original loop."""

    index: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ValueError(f"bad tile bounds [{self.lo}, {self.hi})")

    @property
    def size(self) -> int:
        return self.hi - self.lo

    def iterations(self) -> range:
        return range(self.lo, self.hi)


def tile_iterations(n: int, cores: int) -> list[Tile]:
    """Transcription of Algorithm 1.

    Tiles are ``floor(N/C)`` wide; because N rarely divides C exactly, the
    trailing remainder becomes one extra (smaller) tile — the algorithm's
    ``min(ii + floor(N/C) - 1, N-1)`` upper clamp.  When ``C >= N`` the tile
    width clamps to 1 (one iteration per task; no fewer is possible).

    >>> [(t.lo, t.hi) for t in tile_iterations(10, 4)]
    [(0, 2), (2, 4), (4, 6), (6, 8), (8, 10)]
    """
    if n < 0:
        raise ValueError(f"negative trip count {n!r}")
    if cores < 1:
        raise ValueError(f"need at least one core, got {cores!r}")
    if n == 0:
        return []
    width = max(1, n // cores)
    tiles = []
    index = 0
    for lo in range(0, n, width):
        hi = min(lo + width, n)
        tiles.append(Tile(index=index, lo=lo, hi=hi))
        index += 1
    return tiles


def untiled(n: int) -> list[Tile]:
    """The original loop: one tile per iteration (the ablation baseline —
    every iteration pays a JNI call and a task launch)."""
    if n < 0:
        raise ValueError(f"negative trip count {n!r}")
    return [Tile(index=i, lo=i, hi=i + 1) for i in range(n)]


def tiles_cover(tiles: list[Tile], n: int) -> bool:
    """True when the tiles partition ``range(n)`` exactly (test invariant)."""
    covered: list[tuple[int, int]] = sorted((t.lo, t.hi) for t in tiles)
    cursor = 0
    for lo, hi in covered:
        if lo != cursor:
            return False
        cursor = hi
    return cursor == n


def tile_by_chunk(n: int, chunk: int) -> list[Tile]:
    """Fixed-width tiles for an explicit ``schedule(static|dynamic, chunk)``.

    OpenMP's chunked schedules override Algorithm 1's cluster-size width: the
    programmer trades per-task overhead for finer-grained load balancing.
    """
    if n < 0:
        raise ValueError(f"negative trip count {n!r}")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk!r}")
    tiles = []
    for index, lo in enumerate(range(0, n, chunk)):
        tiles.append(Tile(index=index, lo=lo, hi=min(lo + chunk, n)))
    return tiles
