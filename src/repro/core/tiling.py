"""Algorithm 1: tiling the parallel loop to the cluster size.

"Since each iteration will require one call to JNI, the closer the number of
iterations is to the number of cores, the smaller will be the overhead."  The
transformed loop runs ``ii`` over tiles of size ``floor(N/C)``:

    for ii = 0 to N-1 by floor(N/C):
        for i = ii to min(ii + floor(N/C) - 1, N-1):
            loopbody

The total core count C "is passed as an argument when Spark is calling the
map functions to avoid any recompilation when executing on different
clusters" — here, ``tile_iterations`` is evaluated at job-generation time
with the live cluster's core count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Tile:
    """One tile: iterations [lo, hi) of the original loop.

    ``lo == hi`` is a legal *empty* tile: it denotes zero iterations, the
    way ``range_partition(n, parts)`` yields empty chunks when ``parts > n``.
    Empty tiles are values, not work — the job generator drops them (via
    :func:`drop_empty_tiles`) before any task is built, so no launch, JNI
    call, or transfer is ever charged for one.
    """

    index: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ValueError(f"bad tile bounds [{self.lo}, {self.hi})")

    @staticmethod
    def _unchecked(index: int, lo: int, hi: int) -> "Tile":
        """Build a tile bypassing dataclass ``__init__``.

        The frozen-dataclass constructor costs three ``object.__setattr__``
        calls plus validation per tile; bulk tilers whose bounds are valid by
        construction (``0 <= lo <= hi`` falls out of the loop structure) use
        this to stay cheap at million-tile counts.  Equality/hash/repr are
        field-based, so the result is indistinguishable from ``Tile(...)``.
        """
        t = object.__new__(Tile)
        d = t.__dict__
        d["index"] = index
        d["lo"] = lo
        d["hi"] = hi
        return t

    @property
    def size(self) -> int:
        return self.hi - self.lo

    def iterations(self) -> range:
        return range(self.lo, self.hi)


def tile_iterations(n: int, cores: int) -> list[Tile]:
    """Transcription of Algorithm 1.

    Tiles are ``floor(N/C)`` wide; because N rarely divides C exactly, the
    trailing remainder becomes one extra (smaller) tile — the algorithm's
    ``min(ii + floor(N/C) - 1, N-1)`` upper clamp.  When ``C >= N`` the tile
    width clamps to 1 (one iteration per task; no fewer is possible).

    >>> [(t.lo, t.hi) for t in tile_iterations(10, 4)]
    [(0, 2), (2, 4), (4, 6), (6, 8), (8, 10)]
    """
    if n < 0:
        raise ValueError(f"negative trip count {n!r}")
    if cores < 1:
        raise ValueError(f"need at least one core, got {cores!r}")
    if n == 0:
        return []
    width = max(1, n // cores)
    tiles = []
    index = 0
    for lo in range(0, n, width):
        hi = min(lo + width, n)
        tiles.append(Tile(index=index, lo=lo, hi=hi))
        index += 1
    return tiles


def untiled(n: int) -> list[Tile]:
    """The original loop: one tile per iteration (the ablation baseline —
    every iteration pays a JNI call and a task launch)."""
    if n < 0:
        raise ValueError(f"negative trip count {n!r}")
    mk = Tile._unchecked
    return [mk(i, i, i + 1) for i in range(n)]


def tile_weighted(n: int, capacities: Sequence[float]) -> list[Tile]:
    """Capacity-aware tiling — schedule mode ``weighted``.

    Algorithm 1 sizes every tile to ``floor(N/C)`` because it assumes C
    identical, healthy cores.  On a heterogeneous or degraded cluster the
    slowest slot then owns the critical path.  Here ``capacities`` carries
    one relative speed per task slot (cluster order:
    :meth:`~repro.spark.cluster.SparkCluster.slot_capacities`), and the
    iteration space is split at the cumulative-capacity boundaries

        bound_k = round(N * (c_1 + ... + c_k) / total)

    — Eq. 3's widened partition bounds, with capacity replacing the uniform
    tile width.  The boundaries are monotone by construction, so the tiles
    partition ``[0, N)`` exactly, with no overlap; a zero-capacity slot
    contributes no boundary movement and therefore gets no tile.  Empty
    tiles are dropped and indices renumbered contiguously.

    >>> [(t.lo, t.hi) for t in tile_weighted(10, [1.0, 1.0, 0.5])]
    [(0, 4), (4, 8), (8, 10)]
    """
    if n < 0:
        raise ValueError(f"negative trip count {n!r}")
    caps = [float(c) for c in capacities]
    if not caps:
        raise ValueError("tile_weighted needs at least one slot capacity")
    if any(not math.isfinite(c) or c < 0.0 for c in caps):
        raise ValueError(f"slot capacities must be finite and >= 0, got {caps!r}")
    total = sum(caps)
    if total <= 0.0:
        raise ValueError("total slot capacity must be > 0")
    if n == 0:
        return []
    bounds = [0]
    cum = 0.0
    for c in caps:
        cum += c
        bounds.append(min(n, round(n * cum / total)))
    bounds[-1] = n  # float round-off must never drop trailing iterations
    tiles: list[Tile] = []
    for lo, hi in zip(bounds, bounds[1:]):
        if hi > lo:
            tiles.append(Tile(index=len(tiles), lo=lo, hi=hi))
    return tiles


def drop_empty_tiles(tiles: Iterable[Tile]) -> list[Tile]:
    """Remove zero-size tiles and renumber indices contiguously.

    The scheduler-facing half of the empty-tile contract (see
    :class:`Tile`): an empty tile is representable but never schedulable.
    """
    out: list[Tile] = []
    for t in tiles:
        if t.size > 0:
            out.append(t if t.index == len(out)
                       else Tile(index=len(out), lo=t.lo, hi=t.hi))
    return out


def tiles_cover(tiles: list[Tile], n: int) -> bool:
    """True when the tiles partition ``range(n)`` exactly (test invariant).

    Empty tiles are ignored: they contribute no iterations, so they can sit
    anywhere without breaking the cover.
    """
    covered: list[tuple[int, int]] = sorted(
        (t.lo, t.hi) for t in tiles if t.size > 0)
    cursor = 0
    for lo, hi in covered:
        if lo != cursor:
            return False
        cursor = hi
    return cursor == n


def tile_by_chunk(n: int, chunk: int) -> list[Tile]:
    """Fixed-width tiles for an explicit ``schedule(static|dynamic, chunk)``.

    OpenMP's chunked schedules override Algorithm 1's cluster-size width: the
    programmer trades per-task overhead for finer-grained load balancing.
    """
    if n < 0:
        raise ValueError(f"negative trip count {n!r}")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk!r}")
    mk = Tile._unchecked
    last = n - chunk
    return [mk(index, lo, lo + chunk if lo <= last else n)
            for index, lo in enumerate(range(0, n, chunk))]
