"""Device data environments.

The target-agnostic wrapper of the accelerator model manages "the creation of
devices' data environments": for each mapped host variable, a device-side
entry with a reference count, created at ``tgt_data_begin`` and released —
copying outputs back — at ``tgt_data_end``.  The bookkeeping is shared by the
host and cloud plugins; only the transport differs.

Two kinds of entry coexist, exactly as in libomptarget's mapping table:

* *transient* entries, created by a ``target`` construct's ``data_begin`` and
  released by its ``data_end`` (lifetime = one offload);
* *persistent* entries, created by ``target data`` / ``target enter data``
  (:meth:`DataEnvironment.begin` with ``persistent=True``) and released only
  by the matching exit.  A ``target`` inside the environment merely bumps the
  reference count; the plugin skips the transfer and reuses the entry's
  ``device_handle`` (a cloud storage key, a host array...) in place.

Host identity is *data* identity, not wrapper identity: the front end builds
a fresh :class:`~repro.core.buffers.Buffer` per offload, so two wrappers
around the same ndarray (or two virtual buffers with the same description)
denote the same host variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.buffers import Buffer
from repro.core.omp_ast import MapType
from repro.simtime.timeline import Timeline


class DataEnvError(Exception):
    """Mapping protocol violation (unbalanced begin/end, unknown variable)."""


@dataclass
class MapEntry:
    """One host-variable <-> device-copy association."""

    buffer: Buffer
    map_type: MapType
    device_handle: Any = None  # plugin-specific: storage key, ndarray copy, ...
    ref_count: int = 1
    dirty: bool = False  # device copy diverged from host (needs copy-back)
    persistent: bool = False  # created by target data / enter data

    @property
    def needs_upload(self) -> bool:
        return self.map_type.is_input

    @property
    def needs_download(self) -> bool:
        return self.map_type.is_output


def _same_host_variable(a: Buffer, b: Buffer) -> bool:
    """Do two buffer wrappers denote the same host variable?

    Real buffers: the same backing ndarray.  Virtual buffers carry no
    storage, so identity is their full description (the same convention as
    :meth:`~repro.core.staging_cache.CacheKey.for_buffer`).
    """
    if a is b:
        return True
    if a.is_virtual != b.is_virtual:
        return False
    if a.is_virtual:
        return (a.name == b.name and a.length == b.length
                and a.dtype == b.dtype and a.density == b.density)
    return a.data is b.data


class DataEnvironment:
    """The set of live map entries on one device."""

    def __init__(self, device_name: str) -> None:
        self.device_name = device_name
        self._entries: dict[str, MapEntry] = {}
        self.begun = 0
        self.ended = 0

    def begin(self, buffer: Buffer, map_type: MapType,
              persistent: bool = False) -> MapEntry:
        """Enter a mapping (``tgt_data_begin``): create or re-reference."""
        self.begun += 1
        entry = self._entries.get(buffer.name)
        if entry is not None:
            if not _same_host_variable(entry.buffer, buffer):
                raise DataEnvError(
                    f"{buffer.name!r} is already mapped to a different host buffer "
                    f"on {self.device_name}"
                )
            entry.ref_count += 1
            # A persistent entry keeps the map type its construct declared:
            # the enclosing `target data` decides the exit transfers, not the
            # inner targets that reference it.
            if not entry.persistent and map_type != entry.map_type:
                entry.map_type = MapType.TOFROM
            return entry
        entry = MapEntry(buffer=buffer, map_type=map_type, persistent=persistent)
        self._entries[buffer.name] = entry
        return entry

    def end(self, name: str) -> MapEntry | None:
        """Leave a mapping (``tgt_data_end``); returns the entry when its
        reference count hits zero (i.e. copy-back time), else None."""
        self.ended += 1
        entry = self._entries.get(name)
        if entry is None:
            raise DataEnvError(f"{name!r} is not mapped on {self.device_name}")
        entry.ref_count -= 1
        if entry.ref_count > 0:
            return None
        del self._entries[name]
        return entry

    def lookup(self, name: str) -> MapEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise DataEnvError(f"{name!r} is not mapped on {self.device_name}")
        return entry

    def entry_or_none(self, name: str) -> MapEntry | None:
        return self._entries.get(name)

    def is_mapped(self, name: str) -> bool:
        return name in self._entries

    def ref_count(self, name: str) -> int:
        """Current reference count of ``name`` (0 when not mapped)."""
        entry = self._entries.get(name)
        return 0 if entry is None else entry.ref_count

    def live_entries(self) -> list[MapEntry]:
        return list(self._entries.values())

    def restore(self, name: str, device_handle: str, dirty: bool = False) -> bool:
        """Re-adopt a device copy recovered from the offload journal.

        Only fills a live mapping whose handle was lost (e.g. dropped by
        ``invalidate_data_env`` after a driver death); a mapping that still
        has a handle, or does not exist, is left untouched.  Reference
        counts are never altered — recovery restores *placement*, not
        *lifetime*.  Returns whether the handle was adopted."""
        entry = self._entries.get(name)
        if entry is None or entry.device_handle is not None:
            return False
        entry.device_handle = device_handle
        entry.dirty = dirty
        return True

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class DataEnvReport:
    """Transfer accounting of one ``target data`` environment.

    Mirrors the transfer fields of :class:`~repro.core.report.OffloadReport`
    for the enter/exit/update traffic the environment itself moves (the
    offloads inside it keep their own reports).  ``retries``/``backoff_s``/
    ``timeline`` make it duck-compatible with the cloud plugin's retry
    accounting helpers.
    """

    device_name: str
    mode: str
    timeline: Timeline = field(default_factory=Timeline)
    bytes_up_raw: int = 0
    bytes_up_wire: int = 0
    bytes_down_raw: int = 0
    bytes_down_wire: int = 0
    enter_s: float = 0.0
    exit_s: float = 0.0
    update_s: float = 0.0
    updates_to: int = 0
    updates_from: int = 0
    resident_hits: int = 0  # nested enters that found the entry present
    retries: int = 0
    backoff_s: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "device": self.device_name,
            "mode": self.mode,
            "bytes_up_raw": self.bytes_up_raw,
            "bytes_up_wire": self.bytes_up_wire,
            "bytes_down_raw": self.bytes_down_raw,
            "bytes_down_wire": self.bytes_down_wire,
            "enter_s": self.enter_s,
            "exit_s": self.exit_s,
            "update_s": self.update_s,
            "updates_to": self.updates_to,
            "updates_from": self.updates_from,
            "resident_hits": self.resident_hits,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
        }
