"""Device data environments.

The target-agnostic wrapper of the accelerator model manages "the creation of
devices' data environments": for each mapped host variable, a device-side
entry with a reference count, created at ``tgt_data_begin`` and released —
copying outputs back — at ``tgt_data_end``.  The bookkeeping is shared by the
host and cloud plugins; only the transport differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.buffers import Buffer
from repro.core.omp_ast import MapType


class DataEnvError(Exception):
    """Mapping protocol violation (unbalanced begin/end, unknown variable)."""


@dataclass
class MapEntry:
    """One host-variable <-> device-copy association."""

    buffer: Buffer
    map_type: MapType
    device_handle: Any = None  # plugin-specific: storage key, ndarray copy, ...
    ref_count: int = 1
    dirty: bool = False  # device copy diverged from host (needs copy-back)

    @property
    def needs_upload(self) -> bool:
        return self.map_type.is_input

    @property
    def needs_download(self) -> bool:
        return self.map_type.is_output


class DataEnvironment:
    """The set of live map entries on one device."""

    def __init__(self, device_name: str) -> None:
        self.device_name = device_name
        self._entries: dict[str, MapEntry] = {}
        self.begun = 0
        self.ended = 0

    def begin(self, buffer: Buffer, map_type: MapType) -> MapEntry:
        """Enter a mapping (``tgt_data_begin``): create or re-reference."""
        self.begun += 1
        entry = self._entries.get(buffer.name)
        if entry is not None:
            if entry.buffer is not buffer:
                raise DataEnvError(
                    f"{buffer.name!r} is already mapped to a different host buffer "
                    f"on {self.device_name}"
                )
            entry.ref_count += 1
            if map_type != entry.map_type:
                entry.map_type = MapType.TOFROM
            return entry
        entry = MapEntry(buffer=buffer, map_type=map_type)
        self._entries[buffer.name] = entry
        return entry

    def end(self, name: str) -> MapEntry | None:
        """Leave a mapping (``tgt_data_end``); returns the entry when its
        reference count hits zero (i.e. copy-back time), else None."""
        self.ended += 1
        entry = self._entries.get(name)
        if entry is None:
            raise DataEnvError(f"{name!r} is not mapped on {self.device_name}")
        entry.ref_count -= 1
        if entry.ref_count > 0:
            return None
        del self._entries[name]
        return entry

    def lookup(self, name: str) -> MapEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise DataEnvError(f"{name!r} is not mapped on {self.device_name}")
        return entry

    def is_mapped(self, name: str) -> bool:
        return name in self._entries

    def live_entries(self) -> list[MapEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
