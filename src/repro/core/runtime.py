"""The target-agnostic offloading wrapper (libomptarget's role).

Responsible for "the detection of the available devices, the creation of
devices' data environments, the execution of the right offloading function
according to the device type", exposing the user-level routines
(``omp_get_num_devices``) and the compiler-level entry point (``__tgt_target``
here spelled :meth:`OffloadRuntime.target`).

The cloud is special in one way the paper stresses: it "cannot be detected
automatically since [it is] not physically hosted at the local computer", so
cloud devices are *registered from configuration*, and offloading falls back
to the host when the device reports itself unavailable.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Iterable, Mapping, Sequence, Union

import numpy as np

from repro.core.api import RegionError, TargetRegion
from repro.core.buffers import Buffer, ExecutionMode
from repro.core.data_env import DataEnvError, DataEnvReport
from repro.core.device import Device, DeviceError
from repro.core.exprs import ExprError
from repro.core.omp_ast import MapType
from repro.core.report import OffloadReport
from repro.core.taskgraph import (
    Depend,
    FusionGroup,
    GraphNode,
    PendingRegion,
    TaskGraphPlan,
    TaskHandle,
    build_plan,
    merge_group,
)
from repro.obs.events import (
    DataEnvEnter,
    DataEnvExit,
    Fallback,
    MapInferred,
    RegionFused,
    TargetBegin,
    TargetEnd,
    TaskwaitBegin,
    TaskwaitEnd,
    get_bus,
)

#: Reserved device id for the initial (host) device, as in OpenMP.
DEVICE_HOST = 0

#: What a map clause of :meth:`OffloadRuntime.target_data` accepts per name:
#: a host ndarray, a length (virtual buffer, modeled mode), or a Buffer.
MapValue = Union[np.ndarray, int, Buffer]


class TargetDataScope:
    """One live ``target data`` environment.

    Returned by :meth:`OffloadRuntime.target_data_begin` (and yielded by the
    :meth:`OffloadRuntime.target_data` context manager).  Holds the device
    the environment lives on, the mapped buffers, and the running
    :class:`~repro.core.data_env.DataEnvReport` that accounts every byte the
    environment itself moved.
    """

    def __init__(self, runtime: "OffloadRuntime", device: Device,
                 buffers: dict[str, Buffer], map_types: dict[str, MapType],
                 mode: ExecutionMode, report: DataEnvReport) -> None:
        self.runtime = runtime
        self.device = device
        self.buffers = buffers
        self.map_types = map_types
        self.mode = mode
        self.report = report
        self.active = True

    @property
    def device_name(self) -> str:
        return self.device.name

    def is_present(self, name: str) -> bool:
        """``omp_target_is_present``: does the device hold a map entry?"""
        return self.device.env.is_mapped(name)

    def update(self, *, to: "str | Iterable[str] | None" = None,
               from_: "str | Iterable[str] | None" = None) -> DataEnvReport:
        """``target update`` against this environment."""
        return self.runtime.target_update(self, to=to, from_=from_)

    def close(self) -> DataEnvReport:
        """``target data`` end (idempotent)."""
        return self.runtime.target_data_end(self)

    def __repr__(self) -> str:  # pragma: no cover
        state = "active" if self.active else "closed"
        return (f"TargetDataScope({self.device_name}, "
                f"{sorted(self.buffers)}, {state})")


class OffloadRuntime:
    """Device table + offload dispatch."""

    _default: "OffloadRuntime | None" = None

    def __init__(self) -> None:
        from repro.core.plugin_host import HostDevice

        self._devices: list[Device] = []
        self.offloads = 0
        self.fallbacks = 0
        self._default_device = DEVICE_HOST
        #: Deferred (``nowait``) offloads awaiting the next ``taskwait``.
        self._pending: list[PendingRegion] = []
        self.register(HostDevice())

    # ---------------------------------------------------------- device table
    def register(self, device: Device) -> int:
        """Add a device; returns its device id."""
        device.device_id = len(self._devices)
        self._devices.append(device)
        return device.device_id

    def num_devices(self) -> int:
        """omp_get_num_devices(): devices *besides* the host."""
        return len(self._devices) - 1

    def device(self, ident: Union[int, str]) -> Device:
        """Look a device up by id or by name (e.g. ``"CLOUD"``)."""
        if isinstance(ident, int):
            if not 0 <= ident < len(self._devices):
                raise DeviceError(f"no device with id {ident}")
            return self._devices[ident]
        for d in self._devices:
            if d.name == ident:
                return d
        raise DeviceError(f"no device named {ident!r}")

    @property
    def host(self) -> Device:
        return self._devices[DEVICE_HOST]

    # ----------------------------------------------- default-device routines
    def set_default_device(self, ident: Union[int, str]) -> None:
        """omp_set_default_device(): regions without a device clause go here."""
        self._default_device = self.device(ident).device_id

    def get_default_device(self) -> int:
        """omp_get_default_device()."""
        return self._default_device

    # -------------------------------------------------------------- offload
    def target(
        self,
        region: TargetRegion,
        buffers: Mapping[str, Buffer],
        scalars: Mapping[str, Union[int, float]],
        mode: ExecutionMode = ExecutionMode.FUNCTIONAL,
        device: Union[int, str, None] = None,
        infer_maps: bool = False,
    ):
        """``__tgt_target``: run ``region`` on its requested device.

        Device selection: the ``device`` argument when given (id or name),
        else the region's ``device(...)`` clause by name, else the
        default device (``omp_set_default_device``; initially the host).
        An unavailable device (cloud unreachable, bad
        credentials...) silently falls back to host execution, matching the
        dynamic-offloading behaviour of Figure 1, step 1.  A device that
        *fails mid-offload* — retries and resubmissions exhausted, raising
        :class:`DeviceError` — degrades the same way, with a warning: the
        region reruns on the host and the merged report records the failed
        attempt's recovery counters.

        When the selected device's configuration enables strict analysis
        (``[Analysis] strict = true``), the static verifier runs here —
        after device selection, before any data movement — and a region
        with blocking findings raises
        :class:`~repro.analysis.AnalysisError` without uploading a byte.
        Verification failure is deliberately *not* a :class:`DeviceError`:
        a broken region is broken on the host too, so no fallback.

        Observability: every offload runs inside an
        :meth:`~repro.obs.events.EventBus.offload_scope`, so each event any
        layer emits below this frame carries the offload's correlation id.
        The runtime itself emits ``TargetBegin``/``TargetEnd`` (the OMPT
        target callbacks) and ``Fallback`` at both degradation sites.
        """
        bus = get_bus()
        with bus.offload_scope(region.name):
            try:
                report = self._target(region, buffers, scalars, mode, bus,
                                      device, infer_maps)
            except BaseException:
                bus.emit(TargetEnd(region=region.name, ok=False))
                raise
            bus.emit(TargetEnd(
                time=report.timeline.spans[-1].end if len(report.timeline) else 0.0,
                resource=report.device_name,
                region=region.name,
                device=report.device_name,
                ok=True,
                fell_back=report.fell_back_to_host,
                full_s=report.full_s,
            ))
            return report

    # ----------------------------------------------------- deferred offloads
    def target_nowait(
        self,
        region: TargetRegion,
        buffers: Mapping[str, Buffer],
        scalars: Mapping[str, Union[int, float]],
        mode: ExecutionMode = ExecutionMode.FUNCTIONAL,
        device: Union[int, str, None] = None,
        infer_maps: bool = False,
        depend: "Depend | None" = None,
        strict: bool = False,
    ) -> TaskHandle:
        """``__tgt_target_nowait``: defer ``region`` as a target task.

        Nothing executes here — the region joins the runtime's deferred
        queue and runs at the next synchronization point
        (:meth:`taskwait`, an explicit ``TaskHandle.wait()``, or the end of
        the enclosing ``target data`` environment).  The planner in
        :mod:`repro.core.taskgraph` orders the queue by ``depend`` clauses
        and inferred buffer dataflow, and fuses compatible chains into
        single Spark jobs.
        """
        handle = TaskHandle(region.name, self)
        self._pending.append(PendingRegion(
            region=region, buffers=dict(buffers), scalars=dict(scalars),
            mode=mode, device=device, infer_maps=infer_maps, strict=strict,
            depend=depend, handle=handle))
        return handle

    def taskwait(
        self, *, _update_names: frozenset[str] = frozenset(),
    ) -> list[OffloadReport]:
        """``#pragma omp taskwait``: flush every deferred (``nowait``) region.

        Builds the region DAG, fuses what the legality rules allow, and
        executes the resulting groups wave by wave (a wave holds mutually
        independent groups).  Returns the reports in original queue order;
        members of a fused group share their fused job's report.  A no-op
        (no events, no work) when nothing is pending, so synchronous
        programs are byte-for-byte unaffected.
        """
        pending = self._pending
        if not pending:
            return []
        self._pending = []
        bus = get_bus()
        devices = [self._select_device(p.region, p.device) for p in pending]
        for dev in devices:
            dev.initialize()
        nodes = [
            GraphNode(
                index=i, region=p.region, device=dev.name,
                host=dev is self.host or not dev.is_available(),
                mode=p.mode.value, strict=p.strict, depend=p.depend,
                scalars=dict(p.scalars),
                nbytes={name: buf.nbytes for name, buf in p.buffers.items()},
            )
            for i, (p, dev) in enumerate(zip(pending, devices))
        ]

        def resident(device_name: str, name: str) -> "str | None":
            try:
                dev = self.device(device_name)
            except DeviceError:
                return None
            env = getattr(dev, "env", None)
            if env is None:
                return None
            entry = env.entry_or_none(name)
            return entry.map_type.value if entry is not None else None

        plan = build_plan(nodes, resident=resident,
                          update_names=_update_names)
        now = max((self._device_now(d) for d in devices), default=0.0)
        bus.emit(TaskwaitBegin(time=now, resource="host",
                               pending=len(pending)))
        fused_jobs = 0
        try:
            for wave in plan.waves:
                for gi in wave:
                    group = plan.groups[gi]
                    if group.fused:
                        if self._run_fused(pending, plan, group, bus):
                            fused_jobs += 1
                    else:
                        p = pending[group.members[0]]
                        report = self.target(
                            p.region, p.buffers, p.scalars, mode=p.mode,
                            device=p.device, infer_maps=p.infer_maps)
                        report.fusion_rejected += self._rejections_for(
                            p.region.name, plan)
                        p.handle.report = report
        finally:
            now = max((self._device_now(d) for d in devices), default=0.0)
            bus.emit(TaskwaitEnd(time=now, resource="host",
                                 regions=len(pending), fused_jobs=fused_jobs,
                                 waves=len(plan.waves)))
        return [p.handle.report for p in pending
                if p.handle.report is not None]

    @staticmethod
    def _rejections_for(name: str, plan: TaskGraphPlan) -> tuple:
        return tuple(("+".join(group), reason)
                     for group, reason in plan.rejected if name in group)

    def _run_fused(self, pending: "list[PendingRegion]", plan: TaskGraphPlan,
                   group: FusionGroup, bus) -> bool:
        """Execute one fused group as a single offload; on a late legality
        failure (merge error, strict verification, conflicting buffers) the
        members degrade to unfused serialized execution with the rejection
        reason surfaced on each report.  Returns True when the group ran
        fused."""
        members = [plan.nodes[i] for i in group.members]
        pmembers = [pending[i] for i in group.members]
        scalars: dict[str, Union[int, float]] = {}
        for p in pmembers:
            scalars.update(p.scalars)
        reason: "str | None" = None
        merged = None
        seen: dict[str, Buffer] = {}
        for p in pmembers:
            for name, buf in p.buffers.items():
                prev = seen.setdefault(name, buf)
                if prev is buf:
                    continue
                same = (prev.is_virtual == buf.is_virtual
                        and prev.nbytes == buf.nbytes
                        and (prev.is_virtual or prev.data is buf.data))
                if not same:
                    reason = "buffer-conflict"
        if reason is None:
            try:
                merged = merge_group(members, group.elided, scalars)
            except (RegionError, ExprError) as exc:
                reason = f"analysis-failure: {exc}"
        if merged is not None and any(p.strict for p in pmembers):
            from repro.analysis import AnalysisError, enforce_strict

            try:
                enforce_strict(merged, scalars)
            except AnalysisError:
                reason = "strict-analysis-failure"
        if reason is not None or merged is None:
            label = "+".join(m.region.name for m in members)
            for p in pmembers:
                report = self.target(
                    p.region, p.buffers, p.scalars, mode=p.mode,
                    device=p.device, infer_maps=p.infer_maps)
                report.fusion_rejected += (
                    (label, reason or "analysis-failure"),)
                p.handle.report = report
            return False
        mapped = {i.name for c in merged.maps for i in c.items}
        buffers: dict[str, Buffer] = {}
        for p in pmembers:
            for name, buf in p.buffers.items():
                if name in mapped and name not in buffers:
                    buffers[name] = buf
        first = pmembers[0]
        dev = self._select_device(merged, first.device)
        bus.emit(RegionFused(
            time=self._device_now(dev), resource=dev.name,
            region=merged.name, members=merged.fused_members,
            device=members[0].device, wave=group.wave,
            elided=group.elided, bytes_saved=group.bytes_saved))
        report = self.target(merged, buffers, scalars, mode=first.mode,
                             device=first.device, infer_maps=False)
        report.fused_regions = len(members)
        report.fusion_wire_bytes_saved = group.bytes_saved
        for p in pmembers:
            p.handle.report = report
            p.handle.fused_into = merged.name
        return True

    # ------------------------------------------- persistent data environments
    def target_data_begin(
        self,
        device: Union[int, str, None] = None,
        *,
        map_to: Mapping[str, MapValue] | None = None,
        map_from: Mapping[str, MapValue] | None = None,
        map_tofrom: Mapping[str, MapValue] | None = None,
        map_alloc: Mapping[str, MapValue] | None = None,
        densities: Mapping[str, float] | None = None,
        mode: ExecutionMode | None = None,
    ) -> TargetDataScope:
        """``__tgt_target_data_begin``: open a persistent data environment.

        Each map clause takes ``{name: value}`` where ``value`` is a host
        ndarray (functional mode), a length in elements (virtual buffer,
        modeled mode), or a prebuilt :class:`Buffer`.  ``mode`` is inferred
        from the buffers when not given.  Targets run between begin and end
        find these buffers *present* and skip their transfers; ``from`` /
        ``tofrom`` outputs stay on the device until the matching end or an
        explicit :meth:`target_update`.

        An unavailable or failing device degrades to the host (with a
        ``Fallback`` event), mirroring :meth:`target`: the environment then
        lives on the host, where presence costs nothing.
        """
        buffers, map_types = self._data_buffers(
            map_to, map_from, map_tofrom, map_alloc, densities)
        if mode is None:
            mode = (ExecutionMode.MODELED
                    if any(b.is_virtual for b in buffers.values())
                    else ExecutionMode.FUNCTIONAL)
        bus = get_bus()
        dev = self._resolve_device(device)
        dev.initialize()
        if dev is not self.host and not dev.is_available():
            self.fallbacks += 1
            bus.emit(Fallback(time=self._device_now(dev), resource="host",
                              region="target_data", device=dev.name,
                              reason="device unavailable"))
            dev = self.host
            dev.initialize()
        report = DataEnvReport(device_name=dev.name, mode=mode.value)
        if dev is self.host:
            dev.enter_data(buffers, map_types, mode, report)
        else:
            try:
                dev.enter_data(buffers, map_types, mode, report)
            except DeviceError as exc:
                warnings.warn(
                    f"target data on {dev.name} failed ({exc}); "
                    f"falling back to a host data environment",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.fallbacks += 1
                bus.emit(Fallback(time=self._device_now(dev), resource="host",
                                  region="target_data", device=dev.name,
                                  reason=str(exc)))
                dev = self.host
                dev.initialize()
                report = DataEnvReport(device_name=dev.name, mode=mode.value)
                dev.enter_data(buffers, map_types, mode, report)
        bus.emit(DataEnvEnter(time=self._device_now(dev), resource=dev.name,
                              device=dev.name, buffers=len(buffers),
                              bytes_to=report.bytes_up_raw,
                              resident=report.resident_hits))
        return TargetDataScope(self, dev, buffers, map_types, mode, report)

    def target_data_end(self, scope: TargetDataScope) -> DataEnvReport:
        """``__tgt_target_data_end``: close the environment (idempotent),
        downloading dirty ``from``/``tofrom`` outputs into the host arrays.

        Deferred (``nowait``) offloads still pending are flushed first — the
        end of a data environment is a synchronization point, exactly like
        the implicit barrier libomptarget honours before tearing down the
        device mappings."""
        if not scope.active:
            return scope.report
        if self._pending:
            self.taskwait()
        scope.active = False
        dev = scope.device
        down_before = scope.report.bytes_down_raw
        dev.exit_data(list(scope.buffers), scope.mode, scope.report)
        get_bus().emit(DataEnvExit(
            time=self._device_now(dev), resource=dev.name, device=dev.name,
            buffers=len(scope.buffers),
            bytes_from=scope.report.bytes_down_raw - down_before))
        return scope.report

    @contextlib.contextmanager
    def target_data(
        self,
        device: Union[int, str, None] = None,
        *,
        map_to: Mapping[str, MapValue] | None = None,
        map_from: Mapping[str, MapValue] | None = None,
        map_tofrom: Mapping[str, MapValue] | None = None,
        map_alloc: Mapping[str, MapValue] | None = None,
        densities: Mapping[str, float] | None = None,
        mode: ExecutionMode | None = None,
    ):
        """``#pragma omp target data``, as a context manager::

            with rt.target_data(device="CLOUD", map_to={"A": a, "B": b},
                                map_alloc={"E": n * n}) as env:
                offload(region1, ...)   # A, B resident: no re-upload
                offload(region2, ...)   # E reused in place on the device
                env.update(from_="E")   # explicit mid-environment sync

        The environment closes (outputs download, entries release) when the
        block exits, even on error.
        """
        scope = self.target_data_begin(
            device, map_to=map_to, map_from=map_from, map_tofrom=map_tofrom,
            map_alloc=map_alloc, densities=densities, mode=mode)
        try:
            yield scope
        finally:
            self.target_data_end(scope)

    def target_update(
        self,
        scope: TargetDataScope,
        *,
        to: "str | Iterable[str] | None" = None,
        from_: "str | Iterable[str] | None" = None,
    ) -> DataEnvReport:
        """``#pragma omp target update``: refresh device copies from the host
        (``to``) or host copies from the device (``from_``).  Names absent
        from the environment are ignored (OpenMP 5.x motion semantics)."""
        if not scope.active:
            raise DataEnvError("target update on a closed data environment")
        to_names = self._update_names(to)
        from_names = self._update_names(from_)
        if self._pending:
            # `target update` is synchronous: it must observe the deferred
            # regions' effects, so they flush here.  The touched names reach
            # the planner — a fusion that would elide one of them is demoted
            # (the update needs a materialized copy) and the members run
            # serialized with a `dirty-target-update` rejection on record.
            self.taskwait(_update_names=frozenset(to_names)
                          | frozenset(from_names))
        scope.device.update_data(to_names, from_names, scope.mode,
                                 scope.report)
        return scope.report

    @staticmethod
    def _update_names(names: "str | Iterable[str] | None") -> Sequence[str]:
        if names is None:
            return ()
        if isinstance(names, str):
            return (names,)
        return tuple(names)

    @staticmethod
    def _data_buffers(
        map_to: Mapping[str, MapValue] | None,
        map_from: Mapping[str, MapValue] | None,
        map_tofrom: Mapping[str, MapValue] | None,
        map_alloc: Mapping[str, MapValue] | None,
        densities: Mapping[str, float] | None,
    ) -> tuple[dict[str, Buffer], dict[str, MapType]]:
        densities = dict(densities or {})
        buffers: dict[str, Buffer] = {}
        map_types: dict[str, MapType] = {}
        for mapping, mt in ((map_to, MapType.TO), (map_from, MapType.FROM),
                            (map_tofrom, MapType.TOFROM),
                            (map_alloc, MapType.ALLOC)):
            if not mapping:
                continue
            for name, value in mapping.items():
                if name in buffers:
                    raise DataEnvError(
                        f"{name!r} appears in more than one map clause")
                if isinstance(value, Buffer):
                    buf = value
                elif isinstance(value, (int, np.integer)):
                    buf = Buffer(name, length=int(value),
                                 density=densities.get(name, 1.0))
                else:
                    buf = Buffer(name, data=value,
                                 density=densities.get(name, 1.0))
                buffers[name] = buf
                map_types[name] = mt
        if not buffers:
            raise DataEnvError("target data requires at least one map clause")
        return buffers, map_types

    @staticmethod
    def _device_now(dev: Device) -> float:
        clock = getattr(dev, "clock", None)
        return clock.now if clock is not None else 0.0

    def _target(self, region, buffers, scalars, mode, bus, device=None,
                infer_maps=False):
        self.offloads += 1
        dev = self._select_device(region, device)
        dev.initialize()
        region = self._maybe_infer(dev, region, scalars, infer_maps, bus)
        degraded = False
        if not dev.is_available():
            self.fallbacks += 1
            degraded = dev is not self.host
            unavailable = dev
            dev = self.host
            dev.initialize()
            if degraded:
                # The unreachable device's persistent copies cannot be used
                # by the host rerun: sync what can be synced, drop handles.
                unavailable.invalidate_data_env()
                bus.emit(Fallback(time=self._device_now(dev), resource="host",
                                  region=region.name, device=unavailable.name,
                                  reason="device unavailable"))
        self._enforce_strict(dev, region, scalars)
        bus.emit(TargetBegin(time=self._device_now(dev), resource=dev.name,
                             region=region.name, device=dev.name,
                             mode=mode.value))
        if dev is self.host:
            report = self._run_on(dev, region, buffers, scalars, mode)
            if degraded:
                report.fell_back_to_host = True
            return report
        try:
            return self._run_on(dev, region, buffers, scalars, mode)
        except DeviceError as exc:
            failed = dev.abort(region)
            # Device copies held by enclosing `target data` environments are
            # no longer trustworthy; sync dirty outputs home (so the host
            # rerun computes on current data) and force a later re-stage.
            dev.invalidate_data_env()
            warnings.warn(
                f"offload of {region.name!r} to {dev.name} failed ({exc}); "
                f"falling back to host execution",
                RuntimeWarning,
                stacklevel=2,
            )
            self.fallbacks += 1
            bus.emit(Fallback(time=self._device_now(dev), resource="host",
                              region=region.name, device=dev.name,
                              reason=str(exc)))
            host = self.host
            host.initialize()
            report = self._run_on(host, region, buffers, scalars, mode)
            report.fell_back_to_host = True
            if failed is not None:
                # Preserve what the failed attempt cost and recorded.
                report.retries += failed.retries
                report.backoff_s += failed.backoff_s
                report.resubmissions += failed.resubmissions
                report.preemptions += failed.preemptions
                report.resumes += failed.resumes
                report.tiles_checkpointed += failed.tiles_checkpointed
                report.corruption_detected += failed.corruption_detected
                report.restaged_inputs += failed.restaged_inputs
                report.timeline.extend(failed.timeline)
            return report

    def _maybe_infer(self, dev: Device, region: TargetRegion, scalars,
                     infer_maps: bool, bus) -> TargetRegion:
        """Opt-in clause inference, applied before staging so the device
        only ever sees (and transfers) the synthesized minimal clauses.

        Enabled per call (``offload(infer_maps=True)``) or per device
        (``[Analysis] infer = true``).  Inference degrades to the original
        region whenever its evidence is incomplete, so this is always safe
        to apply; the ``MapInferred`` event records what happened either
        way so savings (or the degradation reason) are visible in traces.
        """
        config = getattr(dev, "config", None)
        enabled = infer_maps or getattr(config, "analysis_infer", False)
        if not enabled:
            return region
        from repro.analysis.infer import infer_region

        rep = infer_region(region, scalars)
        bus.emit(MapInferred(
            time=self._device_now(dev), resource=dev.name,
            region=region.name, device=dev.name,
            changed=rep.changed, degraded=rep.degraded,
            narrowed=rep.narrowed, partitions_added=rep.partitions_added,
            dropped=len(rep.dropped),
            reason="; ".join(rep.reasons) if rep.degraded else "",
        ))
        return rep.region

    @staticmethod
    def _enforce_strict(dev: Device, region: TargetRegion, scalars) -> None:
        config = getattr(dev, "config", None)
        if config is None or not getattr(config, "analysis_strict", False):
            return
        from repro.analysis import enforce_strict

        enforce_strict(region, scalars,
                       fail_on=getattr(config, "analysis_fail_on", "error"))

    @staticmethod
    def _run_on(dev: Device, region: TargetRegion, buffers, scalars, mode):
        dev.data_begin(buffers, region, mode)
        try:
            report = dev.execute(region, buffers, scalars, mode)
        finally:
            dev.data_end(buffers, region, mode)
        return report

    def _select_device(self, region: TargetRegion,
                       override: Union[int, str, None] = None) -> Device:
        ident = override if override is not None else region.device
        return self._resolve_device(ident)

    def _resolve_device(self, ident: Union[int, str, None]) -> Device:
        if ident is None:
            return self._devices[self._default_device]
        if isinstance(ident, int):
            return self.device(ident)
        if ident.isdigit():
            return self.device(int(ident))
        try:
            return self.device(ident)
        except DeviceError:
            # Unknown device names degrade to the host, like libomptarget
            # when a plugin is missing.
            return self.host

    # ------------------------------------------------------------- singleton
    @classmethod
    def default(cls) -> "OffloadRuntime":
        """The process-wide runtime (lazily created, host-only)."""
        if cls._default is None:
            cls._default = cls()
        return cls._default

    @classmethod
    def reset_default(cls) -> None:
        cls._default = None
