"""The target-agnostic offloading wrapper (libomptarget's role).

Responsible for "the detection of the available devices, the creation of
devices' data environments, the execution of the right offloading function
according to the device type", exposing the user-level routines
(``omp_get_num_devices``) and the compiler-level entry point (``__tgt_target``
here spelled :meth:`OffloadRuntime.target`).

The cloud is special in one way the paper stresses: it "cannot be detected
automatically since [it is] not physically hosted at the local computer", so
cloud devices are *registered from configuration*, and offloading falls back
to the host when the device reports itself unavailable.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Union

from repro.core.api import TargetRegion
from repro.core.buffers import Buffer, ExecutionMode
from repro.core.device import Device, DeviceError
from repro.obs.events import Fallback, TargetBegin, TargetEnd, get_bus

#: Reserved device id for the initial (host) device, as in OpenMP.
DEVICE_HOST = 0


class OffloadRuntime:
    """Device table + offload dispatch."""

    _default: "OffloadRuntime | None" = None

    def __init__(self) -> None:
        from repro.core.plugin_host import HostDevice

        self._devices: list[Device] = []
        self.offloads = 0
        self.fallbacks = 0
        self._default_device = DEVICE_HOST
        self.register(HostDevice())

    # ---------------------------------------------------------- device table
    def register(self, device: Device) -> int:
        """Add a device; returns its device id."""
        device.device_id = len(self._devices)
        self._devices.append(device)
        return device.device_id

    def num_devices(self) -> int:
        """omp_get_num_devices(): devices *besides* the host."""
        return len(self._devices) - 1

    def device(self, ident: Union[int, str]) -> Device:
        """Look a device up by id or by name (e.g. ``"CLOUD"``)."""
        if isinstance(ident, int):
            if not 0 <= ident < len(self._devices):
                raise DeviceError(f"no device with id {ident}")
            return self._devices[ident]
        for d in self._devices:
            if d.name == ident:
                return d
        raise DeviceError(f"no device named {ident!r}")

    @property
    def host(self) -> Device:
        return self._devices[DEVICE_HOST]

    # ----------------------------------------------- default-device routines
    def set_default_device(self, ident: Union[int, str]) -> None:
        """omp_set_default_device(): regions without a device clause go here."""
        self._default_device = self.device(ident).device_id

    def get_default_device(self) -> int:
        """omp_get_default_device()."""
        return self._default_device

    # -------------------------------------------------------------- offload
    def target(
        self,
        region: TargetRegion,
        buffers: Mapping[str, Buffer],
        scalars: Mapping[str, Union[int, float]],
        mode: ExecutionMode = ExecutionMode.FUNCTIONAL,
    ):
        """``__tgt_target``: run ``region`` on its requested device.

        Device selection: the region's ``device(...)`` clause by name, the
        default device (``omp_set_default_device``; initially the host) when
        absent.  An unavailable device (cloud unreachable, bad
        credentials...) silently falls back to host execution, matching the
        dynamic-offloading behaviour of Figure 1, step 1.  A device that
        *fails mid-offload* — retries and resubmissions exhausted, raising
        :class:`DeviceError` — degrades the same way, with a warning: the
        region reruns on the host and the merged report records the failed
        attempt's recovery counters.

        When the selected device's configuration enables strict analysis
        (``[Analysis] strict = true``), the static verifier runs here —
        after device selection, before any data movement — and a region
        with blocking findings raises
        :class:`~repro.analysis.AnalysisError` without uploading a byte.
        Verification failure is deliberately *not* a :class:`DeviceError`:
        a broken region is broken on the host too, so no fallback.

        Observability: every offload runs inside an
        :meth:`~repro.obs.events.EventBus.offload_scope`, so each event any
        layer emits below this frame carries the offload's correlation id.
        The runtime itself emits ``TargetBegin``/``TargetEnd`` (the OMPT
        target callbacks) and ``Fallback`` at both degradation sites.
        """
        bus = get_bus()
        with bus.offload_scope(region.name):
            try:
                report = self._target(region, buffers, scalars, mode, bus)
            except BaseException:
                bus.emit(TargetEnd(region=region.name, ok=False))
                raise
            bus.emit(TargetEnd(
                time=report.timeline.spans[-1].end if len(report.timeline) else 0.0,
                resource=report.device_name,
                region=region.name,
                device=report.device_name,
                ok=True,
                fell_back=report.fell_back_to_host,
                full_s=report.full_s,
            ))
            return report

    @staticmethod
    def _device_now(dev: Device) -> float:
        clock = getattr(dev, "clock", None)
        return clock.now if clock is not None else 0.0

    def _target(self, region, buffers, scalars, mode, bus):
        self.offloads += 1
        dev = self._select_device(region)
        dev.initialize()
        degraded = False
        if not dev.is_available():
            self.fallbacks += 1
            degraded = dev is not self.host
            unavailable = dev.name
            dev = self.host
            dev.initialize()
            if degraded:
                bus.emit(Fallback(time=self._device_now(dev), resource="host",
                                  region=region.name, device=unavailable,
                                  reason="device unavailable"))
        self._enforce_strict(dev, region, scalars)
        bus.emit(TargetBegin(time=self._device_now(dev), resource=dev.name,
                             region=region.name, device=dev.name,
                             mode=mode.value))
        if dev is self.host:
            report = self._run_on(dev, region, buffers, scalars, mode)
            if degraded:
                report.fell_back_to_host = True
            return report
        try:
            return self._run_on(dev, region, buffers, scalars, mode)
        except DeviceError as exc:
            failed = dev.abort(region)
            warnings.warn(
                f"offload of {region.name!r} to {dev.name} failed ({exc}); "
                f"falling back to host execution",
                RuntimeWarning,
                stacklevel=2,
            )
            self.fallbacks += 1
            bus.emit(Fallback(time=self._device_now(dev), resource="host",
                              region=region.name, device=dev.name,
                              reason=str(exc)))
            host = self.host
            host.initialize()
            report = self._run_on(host, region, buffers, scalars, mode)
            report.fell_back_to_host = True
            if failed is not None:
                # Preserve what the failed attempt cost and recorded.
                report.retries += failed.retries
                report.backoff_s += failed.backoff_s
                report.resubmissions += failed.resubmissions
                report.preemptions += failed.preemptions
                report.timeline.extend(failed.timeline)
            return report

    @staticmethod
    def _enforce_strict(dev: Device, region: TargetRegion, scalars) -> None:
        config = getattr(dev, "config", None)
        if config is None or not getattr(config, "analysis_strict", False):
            return
        from repro.analysis import enforce_strict

        enforce_strict(region, scalars,
                       fail_on=getattr(config, "analysis_fail_on", "error"))

    @staticmethod
    def _run_on(dev: Device, region: TargetRegion, buffers, scalars, mode):
        dev.data_begin(buffers, region, mode)
        try:
            report = dev.execute(region, buffers, scalars, mode)
        finally:
            dev.data_end(buffers, region, mode)
        return report

    def _select_device(self, region: TargetRegion) -> Device:
        if region.device is None:
            return self._devices[self._default_device]
        if region.device.isdigit():
            return self.device(int(region.device))
        try:
            return self.device(region.device)
        except DeviceError:
            # Unknown device names degrade to the host, like libomptarget
            # when a plugin is missing.
            return self.host

    # ------------------------------------------------------------- singleton
    @classmethod
    def default(cls) -> "OffloadRuntime":
        """The process-wide runtime (lazily created, host-only)."""
        if cls._default is None:
            cls._default = cls()
        return cls._default

    @classmethod
    def reset_default(cls) -> None:
        cls._default = None
