"""Tokenizer for pragma lines.

Splits ``#pragma omp target map(to: A[0:N*N]) ...`` into a token stream the
directive parser consumes.  Bound *expressions* are not tokenized here — the
parser collects their raw text (balanced up to ``:``/``,``/``]``) and hands it
to :func:`repro.core.exprs.parse_expr`, keeping the two grammars independent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class LexError(Exception):
    """Unexpected character in a pragma line."""


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT | NUM | PUNCT
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<IDENT>[A-Za-z_]\w*)
      | (?P<NUM>\d+)
      | (?P<PUNCT>[()\[\]:,+\-*/%\#|&^])
    )""",
    re.VERBOSE,
)


def tokenize(line: str) -> list[Token]:
    """Tokenize one pragma line.

    >>> [t.text for t in tokenize("omp target device(CLOUD)")]
    ['omp', 'target', 'device', '(', 'CLOUD', ')']
    """
    tokens: list[Token] = []
    pos = 0
    while pos < len(line):
        m = _TOKEN_RE.match(line, pos)
        if m is None:
            rest = line[pos:].strip()
            if not rest:
                break
            raise LexError(f"unexpected character {rest[0]!r} at column {pos} in {line!r}")
        kind = m.lastgroup
        assert kind is not None
        tokens.append(Token(kind=kind, text=m.group(kind), pos=m.start(kind)))
        pos = m.end()
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def peek_text(self) -> str | None:
        t = self.peek()
        return t.text if t is not None else None

    def next(self) -> Token:
        t = self.peek()
        if t is None:
            raise LexError(f"unexpected end of pragma {self.source!r}")
        self.pos += 1
        return t

    def expect(self, text: str) -> Token:
        t = self.next()
        if t.text != text:
            raise LexError(f"expected {text!r} but found {t.text!r} in {self.source!r}")
        return t

    def accept(self, text: str) -> bool:
        if self.peek_text() == text:
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def collect_until(self, stops: set[str]) -> str:
        """Concatenate raw token text until a ``stops`` punctuation at bracket
        depth zero; used to slice out bound expressions."""
        parts: list[str] = []
        depth = 0
        while not self.at_end():
            t = self.peek()
            assert t is not None
            if depth == 0 and t.text in stops:
                break
            if t.text in ("(", "["):
                depth += 1
            elif t.text in (")", "]"):
                if depth == 0:
                    break
                depth -= 1
            parts.append(t.text)
            self.pos += 1
        return "".join(parts)
