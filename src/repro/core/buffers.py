"""Mapped buffers and global-coordinate views.

OmpCloud moves *linearized* arrays ("Matrices A, B and C ... are represented
in their linearized forms").  A :class:`Buffer` is one host variable named in
a ``map`` clause — either backed by a real ndarray (functional mode) or by a
shape/density description only (modeled mode, where a 1 GB matrix must not be
allocated in tests).

Workers receive *windows* of partitioned buffers.  :class:`OffsetArray` lets
kernel bodies keep using **global** flat indices (``C[i*N+j]``) over a local
window, so the same loop body runs unchanged whether or not the programmer
partitioned the variable — exactly the property the paper's JNI kernels have.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np


class ExecutionMode(enum.Enum):
    """How an offload run treats data and kernels."""

    #: Real ndarrays, kernels actually execute, results are checked.
    FUNCTIONAL = "functional"
    #: Virtual buffers (sizes only), kernels contribute modelled time.
    MODELED = "modeled"


class Buffer:
    """One host variable appearing in a ``map`` clause."""

    def __init__(
        self,
        name: str,
        data: np.ndarray | None = None,
        *,
        length: int | None = None,
        dtype: Union[np.dtype, str] = np.float32,
        density: float = 1.0,
    ) -> None:
        if (data is None) == (length is None):
            raise ValueError("provide exactly one of data= (real) or length= (virtual)")
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density!r}")
        self.name = name
        self.density = density
        if data is not None:
            if data.ndim != 1:
                raise ValueError(
                    f"buffer {name!r} must be linearized (1-D); got shape {data.shape}"
                )
            self.data: np.ndarray | None = data
            self.length = data.shape[0]
            self.dtype = data.dtype
        else:
            assert length is not None
            if length < 0:
                raise ValueError(f"negative buffer length {length!r}")
            self.data = None
            self.length = int(length)
            self.dtype = np.dtype(dtype)

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    @property
    def nbytes(self) -> int:
        return self.length * self.itemsize

    def require_data(self) -> np.ndarray:
        if self.data is None:
            raise ValueError(
                f"buffer {self.name!r} is virtual; functional execution needs real data"
            )
        return self.data

    def payload_view(self) -> memoryview:
        """Zero-copy, read-only byte view of the host array.

        Hashing and compression consume this instead of ``tobytes()``, which
        would copy the whole payload just to throw it away.  The view is
        read-only so no consumer can scribble on the host array through it;
        a non-contiguous array (never produced by this runtime, but legal
        ndarray input) falls back to one contiguity copy.
        """
        arr = self.require_data()
        if not arr.flags["C_CONTIGUOUS"]:
            arr = np.ascontiguousarray(arr)
        return memoryview(arr).cast("B").toreadonly()

    def slice_bytes(self, lo: int, hi: int) -> int:
        """Bytes of elements [lo, hi) — cost accounting for windows."""
        self._check_range(lo, hi)
        return (hi - lo) * self.itemsize

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi <= self.length):
            raise IndexError(
                f"window [{lo}, {hi}) outside buffer {self.name!r} of length {self.length}"
            )

    def __repr__(self) -> str:  # pragma: no cover
        kind = "virtual" if self.is_virtual else "real"
        return f"Buffer({self.name!r}, len={self.length}, {kind})"


class OffsetArray:
    """A window of a global linearized array, indexed in global coordinates.

    >>> import numpy as np
    >>> w = OffsetArray(np.zeros(4), offset=10)
    >>> w[12] = 7.0
    >>> w[10:14].tolist()
    [0.0, 0.0, 7.0, 0.0]
    """

    __slots__ = ("local", "offset")

    def __init__(self, local: np.ndarray, offset: int) -> None:
        if local.ndim != 1:
            raise ValueError(f"OffsetArray wraps linearized arrays; got shape {local.shape}")
        if offset < 0:
            raise ValueError(f"negative offset {offset!r}")
        self.local = local
        self.offset = offset

    def _translate(self, idx):
        if isinstance(idx, slice):
            if idx.step not in (None, 1):
                raise IndexError("OffsetArray supports only unit-stride slices")
            start = (idx.start if idx.start is not None else self.offset) - self.offset
            stop = (idx.stop if idx.stop is not None else self.offset + len(self.local)) - self.offset
            if start < 0 or stop > len(self.local) or start > stop:
                raise IndexError(
                    f"global slice [{idx.start}:{idx.stop}] outside window "
                    f"[{self.offset}, {self.offset + len(self.local)})"
                )
            return slice(start, stop)
        i = int(idx) - self.offset
        if not 0 <= i < len(self.local):
            raise IndexError(
                f"global index {idx} outside window "
                f"[{self.offset}, {self.offset + len(self.local)})"
            )
        return i

    def __getitem__(self, idx):
        return self.local[self._translate(idx)]

    def __setitem__(self, idx, value) -> None:
        self.local[self._translate(idx)] = value

    def __len__(self) -> int:
        return len(self.local)

    @property
    def global_range(self) -> tuple[int, int]:
        return self.offset, self.offset + len(self.local)


def as_window(array: np.ndarray, lo: int, hi: int, offset_view: bool = True):
    """Window [lo, hi) of a global array as an :class:`OffsetArray` view."""
    view = array[lo:hi]
    return OffsetArray(view, lo) if offset_view else view
