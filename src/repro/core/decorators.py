"""Decorator front end: pragmas attached directly to the kernel.

The closest Python analogue of writing pragmas above the loop in C — the
directives sit on the tile body itself:

    @omp_kernel(
        "omp target device(CLOUD)",
        "omp map(to: A[:N*N], B[:N*N]) map(from: C[:N*N])",
        "omp parallel for",
        loop_var="i", trip_count="N",
        partition="omp target data map(to: A[i*N:(i+1)*N]) "
                  "map(from: C[i*N:(i+1)*N])",
        reads=("A", "B"), writes=("C",),
    )
    def matmul(lo, hi, arrays, scalars):
        ...

    matmul.offload(arrays={...}, scalars={"N": n}, runtime=rt)

The decorated function remains directly callable (it is just the tile body)
and gains ``.region`` plus an ``.offload(...)`` convenience.
"""

from __future__ import annotations

import functools
from typing import Callable, Mapping, Sequence, Union

from repro.core.api import (
    FlopsPerIter,
    OffloadOptions,
    ParallelLoop,
    RegionError,
    TargetRegion,
    offload as _offload,
)
from repro.core.omp_ast import ParallelForConstruct, TargetDataConstruct
from repro.core.parser import parse_pragma


class OmpKernel:
    """A tile body bound to its target region."""

    def __init__(self, fn: Callable, region: TargetRegion) -> None:
        functools.update_wrapper(self, fn)
        self._fn = fn
        self.region = region

    def __call__(self, lo, hi, arrays, scalars):
        return self._fn(lo, hi, arrays, scalars)

    def offload(self, arrays=None, scalars=None, *,
                options: "OffloadOptions | None" = None, **overrides):
        """Run the region through the offloading runtime; the exact keyword
        surface of :func:`repro.core.api.offload` (both accept an
        :class:`~repro.core.api.OffloadOptions` bundle and/or its fields as
        loose keywords, so ``strict``/``mode``/``device`` behave identically
        through either front end)."""
        return _offload(self.region, arrays, scalars,
                        options=options, **overrides)

    def lint(self, scalars=None):
        """Run the static verifier over the bound region; returns the
        :class:`~repro.analysis.AnalysisReport`."""
        from repro.analysis import verify_region

        return verify_region(self.region, scalars)


def omp_kernel(
    *pragmas: str,
    loop_var: str = "i",
    trip_count: Union[str, int] = "N",
    partition: str | None = None,
    reads: Sequence[str] | None = None,
    writes: Sequence[str] | None = None,
    name: str | None = None,
    flops_per_iter: Union[FlopsPerIter, float, None] = None,
    memory_intensity: float = 1.0,
    locals_: Mapping[str, Union[str, int]] | None = None,
) -> Callable[[Callable], OmpKernel]:
    """Build a single-loop :class:`TargetRegion` around the decorated body.

    The pragma list must contain exactly one ``parallel for`` (its clauses —
    reduction, schedule — apply to the loop); the remaining pragmas are the
    region's ``target``/``map`` directives.  ``reads``/``writes`` default to
    the variables of the ``partition`` pragma, like
    :func:`repro.core.source_scan.region_from_source`.
    """
    region_pragmas: list[str] = []
    loop_pragma: str | None = None
    for src in pragmas:
        parsed = parse_pragma(src)
        nodes = parsed if isinstance(parsed, tuple) else (parsed,)
        is_loop = any(isinstance(n, ParallelForConstruct) for n in nodes)
        if is_loop and not isinstance(parsed, tuple):
            if loop_pragma is not None:
                raise RegionError(
                    "omp_kernel supports exactly one 'parallel for' pragma; "
                    "use TargetRegion directly for multi-loop regions"
                )
            loop_pragma = src
        else:
            region_pragmas.append(src)
    if loop_pragma is None:
        raise RegionError("omp_kernel needs a 'parallel for' pragma")

    r, w = reads, writes
    if (r is None or w is None) and partition is not None:
        pr, pw = _infer_from_partition(partition)
        r = r if r is not None else pr
        w = w if w is not None else pw
    if r is None or w is None:
        raise RegionError(
            "omp_kernel needs reads=/writes= (or a partition pragma to infer "
            "them from)"
        )

    def decorate(fn: Callable) -> OmpKernel:
        region = TargetRegion(
            name=name or fn.__name__,
            pragmas=region_pragmas,
            loops=[ParallelLoop(
                pragma=loop_pragma,
                loop_var=loop_var,
                trip_count=trip_count,
                reads=tuple(r),
                writes=tuple(w),
                partition_pragma=partition,
                body=fn,
                flops_per_iter=flops_per_iter,
            )],
            locals_=locals_,
            memory_intensity=memory_intensity,
        )
        return OmpKernel(fn, region)

    return decorate


def _infer_from_partition(partition: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
    parsed = parse_pragma(partition)
    if not isinstance(parsed, TargetDataConstruct):
        raise RegionError(f"partition must be a 'target data map' pragma, got {partition!r}")
    reads: list[str] = []
    writes: list[str] = []
    for clause in parsed.maps:
        for item in clause.items:
            if clause.map_type.is_input and item.name not in reads:
                reads.append(item.name)
            if clause.map_type.is_output and item.name not in writes:
                writes.append(item.name)
    return tuple(reads), tuple(writes)
