"""The cloud-device configuration file.

"Our cloud plugin reads at runtime a configuration file to properly set up
the cloud device and to avoid the need to recompile the binary ... Besides
the login information, the configuration file also contains the address of
the Spark driver as well as the address of the cloud file storage."

The format is INI, matching the ompcloud project's ``cloud_rtl.ini``:

    [Spark]
    driver   = ec2-54-23-9-12.compute-1.amazonaws.com
    user     = ubuntu
    workers  = 16
    instance = c3.8xlarge

    [Storage]
    kind   = s3
    bucket = ompcloud-staging

    [AWS]
    access_key = AKIA...
    secret_key = ...
    region     = us-east-1

    [Offload]
    provider          = ec2
    compression       = gzip
    min_compress_size = 1048576
    manage_instances  = false
    verbose           = false
"""

from __future__ import annotations

import configparser
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.cloud.credentials import Credentials


class ConfigError(Exception):
    """Missing or inconsistent configuration."""


_VALID_PROVIDERS = ("ec2", "azure", "private")
_VALID_STORAGE = ("s3", "hdfs", "azure")


@dataclass(frozen=True)
class CloudConfig:
    """Parsed cloud-device configuration."""

    provider: str = "ec2"
    spark_driver: str = "spark-driver"
    spark_user: str = "ubuntu"
    n_workers: int = 16
    instance_type: str = "c3.8xlarge"
    storage_kind: str = "s3"
    storage_name: str = "ompcloud-staging"
    credentials: Credentials = field(
        default_factory=lambda: Credentials(provider="ec2", username="ubuntu")
    )
    compression: bool = True
    min_compress_size: int = 1 << 20
    manage_instances: bool = False
    verbose: bool = False
    #: Host-target data caching (the paper's future work, implemented here):
    #: inputs whose content is already staged are not re-uploaded.
    cache: bool = False
    # --- Resilience ([Resilience] section) ---
    #: Attempts per storage/SSH/provisioning operation (first try included).
    retry_attempts: int = 3
    #: First backoff delay; doubles each retry (exponential, capped).
    retry_base_delay_s: float = 0.5
    #: Cap on a single backoff delay.
    retry_max_delay_s: float = 30.0
    #: Deterministic jitter fraction in [0, 1): delay *= 1 +/- jitter.
    retry_jitter: float = 0.0
    #: Times a failed/lost Spark job is resubmitted over a fresh SSH session.
    max_resubmissions: int = 2
    #: Consecutive device failures before the circuit breaker trips open.
    breaker_threshold: int = 3
    #: Simulated seconds the breaker stays open before a half-open probe.
    breaker_reset_s: float = 300.0
    #: Driver-loss recovery policy (docs/RESILIENCE.md): "none" falls back
    #: to the host (PR-1 behavior), "restart" replays the journal and
    #: resubmits the whole job on a replacement driver, "resume" also
    #: commits per-tile checkpoints and reschedules only unfinished tiles.
    recovery: str = "none"
    # --- Static verification ([Analysis] section) ---
    #: Run the offload verifier on every region before any data is uploaded
    #: and refuse to offload regions with blocking findings.
    analysis_strict: bool = False
    #: Lowest severity that blocks a strict offload: "warning" or "error".
    analysis_fail_on: str = "error"
    #: Run clause inference before staging: provably minimal map/partition
    #: clauses replace the user's (safe — degrades on incomplete analysis).
    analysis_infer: bool = False
    # --- Adaptive execution ([Schedule] section, docs/SCHEDULING.md) ---
    #: Tiling mode: "static" (Algorithm 1) or "weighted" (capacity-aware).
    schedule_mode: str = "static"
    #: Race speculative copies of straggling tasks (spark.speculation).
    speculation: bool = False
    #: A task is a straggler after multiplier x median task duration.
    speculation_multiplier: float = 1.5
    #: Max scattered-but-uncollected results in flight; 0 = strict barrier.
    pipeline_depth: int = 0

    def __post_init__(self) -> None:
        if self.analysis_fail_on not in ("note", "warning", "error"):
            raise ConfigError(
                f"analysis_fail_on must be 'note', 'warning' or 'error', "
                f"got {self.analysis_fail_on!r}"
            )
        if self.provider not in _VALID_PROVIDERS:
            raise ConfigError(
                f"unknown provider {self.provider!r}; expected one of {_VALID_PROVIDERS}"
            )
        if self.storage_kind not in _VALID_STORAGE:
            raise ConfigError(
                f"unknown storage kind {self.storage_kind!r}; expected one of {_VALID_STORAGE}"
            )
        if self.n_workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.n_workers}")
        if self.min_compress_size < 0:
            raise ConfigError(f"min_compress_size must be >= 0, got {self.min_compress_size}")
        if self.retry_attempts < 1:
            raise ConfigError(f"retry_attempts must be >= 1, got {self.retry_attempts}")
        if self.max_resubmissions < 0:
            raise ConfigError(f"max_resubmissions must be >= 0, got {self.max_resubmissions}")
        if self.breaker_threshold < 1:
            raise ConfigError(f"breaker_threshold must be >= 1, got {self.breaker_threshold}")
        if self.recovery not in ("none", "restart", "resume"):
            raise ConfigError(
                f"recovery must be 'none', 'restart' or 'resume', got {self.recovery!r}"
            )
        if self.schedule_mode not in ("static", "weighted"):
            raise ConfigError(
                f"schedule mode must be 'static' or 'weighted', got {self.schedule_mode!r}"
            )
        if self.speculation_multiplier < 1.0:
            raise ConfigError(
                f"speculation_multiplier must be >= 1.0, got {self.speculation_multiplier}"
            )
        if self.pipeline_depth < 0:
            raise ConfigError(f"pipeline_depth must be >= 0, got {self.pipeline_depth}")

    def schedule(self) -> "ScheduleConfig":
        """The :class:`~repro.spark.schedule.ScheduleConfig` this file selects."""
        from repro.spark.schedule import ScheduleConfig

        return ScheduleConfig(
            mode=self.schedule_mode,
            speculation=self.speculation,
            speculation_multiplier=self.speculation_multiplier,
            pipeline_depth=self.pipeline_depth,
        )

    def retry_policy(self) -> "RetryPolicy":
        """The uniform :class:`~repro.resilience.RetryPolicy` for this device."""
        from repro.resilience import RetryPolicy

        return RetryPolicy(
            max_attempts=self.retry_attempts,
            base_delay_s=self.retry_base_delay_s,
            max_delay_s=self.retry_max_delay_s,
            jitter=self.retry_jitter,
        )


def load_config(path: str | os.PathLike[str]) -> CloudConfig:
    """Parse an INI configuration file into a :class:`CloudConfig`."""
    p = Path(path)
    if not p.exists():
        raise ConfigError(f"configuration file {p} does not exist")
    cp = configparser.ConfigParser()
    try:
        cp.read(p)
    except configparser.Error as e:
        raise ConfigError(f"cannot parse {p}: {e}") from e

    spark = cp["Spark"] if cp.has_section("Spark") else {}
    storage = cp["Storage"] if cp.has_section("Storage") else {}
    offload = cp["Offload"] if cp.has_section("Offload") else {}
    resil = cp["Resilience"] if cp.has_section("Resilience") else {}
    analysis = cp["Analysis"] if cp.has_section("Analysis") else {}
    sched = cp["Schedule"] if cp.has_section("Schedule") else {}

    provider = offload.get("provider", "ec2").lower()
    creds = _credentials_from(cp, provider, spark.get("user", "ubuntu"))

    try:
        n_workers = int(spark.get("workers", "16"))
        min_sz = int(offload.get("min_compress_size", str(1 << 20)))
        retry_attempts = int(resil.get("retry_attempts", "3"))
        max_resubmissions = int(resil.get("max_resubmissions", "2"))
        breaker_threshold = int(resil.get("breaker_threshold", "3"))
        retry_base = float(resil.get("retry_base_delay_s", "0.5"))
        retry_max = float(resil.get("retry_max_delay_s", "30.0"))
        retry_jitter = float(resil.get("retry_jitter", "0.0"))
        breaker_reset = float(resil.get("breaker_reset_s", "300.0"))
        speculation_multiplier = float(sched.get("speculation_multiplier", "1.5"))
        pipeline_depth = int(sched.get("pipeline_depth", "0"))
    except ValueError as e:
        raise ConfigError(f"non-numeric value in {p}: {e}") from e

    return CloudConfig(
        provider=provider,
        spark_driver=spark.get("driver", "spark-driver"),
        spark_user=spark.get("user", "ubuntu"),
        n_workers=n_workers,
        instance_type=spark.get("instance", "c3.8xlarge"),
        storage_kind=storage.get("kind", "s3").lower(),
        storage_name=storage.get("bucket", storage.get("name", "ompcloud-staging")),
        credentials=creds,
        compression=offload.get("compression", "gzip").lower() != "none",
        min_compress_size=min_sz,
        manage_instances=_parse_bool(offload.get("manage_instances", "false")),
        verbose=_parse_bool(offload.get("verbose", "false")),
        cache=_parse_bool(offload.get("cache", "false")),
        retry_attempts=retry_attempts,
        retry_base_delay_s=retry_base,
        retry_max_delay_s=retry_max,
        retry_jitter=retry_jitter,
        max_resubmissions=max_resubmissions,
        breaker_threshold=breaker_threshold,
        breaker_reset_s=breaker_reset,
        recovery=resil.get("recovery", "none").strip().lower(),
        analysis_strict=_parse_bool(analysis.get("strict", "false")),
        analysis_fail_on=analysis.get("fail_on", "error").strip().lower(),
        analysis_infer=_parse_bool(analysis.get("infer", "false")),
        schedule_mode=sched.get("mode", "static").strip().lower(),
        speculation=_parse_bool(sched.get("speculation", "false")),
        speculation_multiplier=speculation_multiplier,
        pipeline_depth=pipeline_depth,
    )


def _credentials_from(cp: configparser.ConfigParser, provider: str, user: str) -> Credentials:
    if provider == "ec2":
        aws = cp["AWS"] if cp.has_section("AWS") else {}
        return Credentials(
            provider="ec2",
            username=user,
            access_key_id=aws.get("access_key", ""),
            secret_key=aws.get("secret_key", ""),
            region=aws.get("region", "us-east-1"),
        )
    if provider == "azure":
        az = cp["Azure"] if cp.has_section("Azure") else {}
        return Credentials(
            provider="azure",
            username=az.get("account", user),
            secret_key=az.get("key", ""),
            region=az.get("region", "eastus"),
        )
    return Credentials(provider="private", username=user)


def _parse_bool(text: str) -> bool:
    t = text.strip().lower()
    if t in ("true", "yes", "1", "on"):
        return True
    if t in ("false", "no", "0", "off"):
        return False
    raise ConfigError(f"cannot parse boolean {text!r}")


def write_example_config(path: str | os.PathLike[str], provider: str = "ec2") -> Path:
    """Emit a filled-in example configuration (used by the quickstart)."""
    p = Path(path)
    sections = {
        "Spark": {
            "driver": "spark-driver.example.com",
            "user": "ubuntu",
            "workers": "16",
            "instance": "c3.8xlarge",
        },
        "Storage": {"kind": "s3", "bucket": "ompcloud-staging"},
        "AWS": {
            "access_key": "AKIA" + "EXAMPLEKEY00",
            "secret_key": "example-secret-key-material",
            "region": "us-east-1",
        },
        "Offload": {
            "provider": provider,
            "compression": "gzip",
            "min_compress_size": str(1 << 20),
            "manage_instances": "false",
            "verbose": "false",
            "cache": "false",
        },
        "Resilience": {
            "retry_attempts": "3",
            "retry_base_delay_s": "0.5",
            "retry_max_delay_s": "30.0",
            "retry_jitter": "0.0",
            "max_resubmissions": "2",
            "breaker_threshold": "3",
            "breaker_reset_s": "300.0",
            "recovery": "none",
        },
        "Analysis": {
            "strict": "false",
            "fail_on": "error",
            "infer": "false",
        },
        "Schedule": {
            "mode": "static",
            "speculation": "false",
            "speculation_multiplier": "1.5",
            "pipeline_depth": "0",
        },
    }
    cp = configparser.ConfigParser()
    for name, body in sections.items():
        cp[name] = body
    with open(p, "w") as fh:
        cp.write(fh)
    return p
