"""Public programming model: annotated target regions.

The C original of Listing 1 becomes, in this reproduction:

    region = TargetRegion(
        name="matmul",
        pragmas=[
            "omp target device(CLOUD)",
            "omp map(to: A[0:N*N], B[0:N*N]) map(from: C[0:N*N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "B"),
                writes=("C",),
                partition_pragma="omp target data map(to: A[i*N:(i+1)*N]) "
                                 "map(from: C[i*N:(i+1)*N])",
                body=matmul_tile,
            )
        ],
    )
    offload(region, arrays={"A": a, "B": b, "C": c}, scalars={"N": n})

The *tile body* is the loop body after Algorithm 1's tiling: it receives the
tile bounds ``[lo, hi)`` plus the mapped arrays — partitioned ones as
:class:`~repro.core.buffers.OffsetArray` windows addressed in **global**
coordinates, so the same body text works partitioned or not, exactly like the
paper's JNI kernels.

Multiple ``ParallelLoop`` s in one region become "successive map-reduce
transformations within the Spark job" (Section III-D); ``locals_`` declares
the intermediate buffers that live on the cluster between loops and never
cross the WAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.buffers import Buffer, ExecutionMode
from repro.core.exprs import parse_expr
from repro.core.omp_ast import (
    MapClause,
    MapItem,
    MapType,
    ParallelForConstruct,
    TargetConstruct,
    TargetDataConstruct,
    UnsupportedConstruct,
)
from repro.core.parser import parse_pragma
from repro.core.partition import PartitionSpec, spec_from_map_item

#: body(lo, hi, arrays, scalars) -> None, writing into the output arrays.
TileBody = Callable[[int, int, Mapping[str, object], Mapping[str, Union[int, float]]], None]
#: flops consumed by iteration i given the scalar environment.
FlopsPerIter = Callable[[int, Mapping[str, Union[int, float]]], float]


class RegionError(Exception):
    """Ill-formed target region."""


@dataclass
class ParallelLoop:
    """One ``parallel for`` inside a target region."""

    pragma: str
    loop_var: str
    trip_count: Union[str, int]
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    body: Optional[TileBody] = None
    partition_pragma: Optional[str] = None
    flops_per_iter: Union[FlopsPerIter, float, None] = None

    # Filled by _analyze().
    parallel_for: ParallelForConstruct = field(init=False, repr=False)
    partitions: dict[str, PartitionSpec] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._analyze()

    def _analyze(self) -> None:
        parsed = parse_pragma(self.pragma)
        if isinstance(parsed, tuple):
            raise RegionError(
                f"loop pragma must be a plain 'parallel for', got combined form: {self.pragma!r}"
            )
        if not isinstance(parsed, ParallelForConstruct):
            raise RegionError(f"loop pragma is not a parallel for: {self.pragma!r}")
        self.parallel_for = parsed
        self.partitions = {}
        if self.partition_pragma is not None:
            pdata = parse_pragma(self.partition_pragma)
            if not isinstance(pdata, TargetDataConstruct):
                raise RegionError(
                    f"partition pragma must be a 'target data map', got {self.partition_pragma!r}"
                )
            for clause in pdata.maps:
                for item in clause.items:
                    spec = spec_from_map_item(item, clause.map_type, self.loop_var)
                    if item.name in self.partitions:
                        raise RegionError(
                            f"variable {item.name!r} partitioned twice in {self.partition_pragma!r}"
                        )
                    self.partitions[item.name] = spec

    # ------------------------------------------------------------- queries
    @property
    def reduction_vars(self) -> dict[str, str]:
        """Map variable name -> reduction operator."""
        out: dict[str, str] = {}
        for red in self.parallel_for.reductions:
            for name in red.variables:
                out[name] = red.op
        return out

    def trip_count_value(self, env: Mapping[str, Union[int, float]]) -> int:
        if isinstance(self.trip_count, int):
            n = self.trip_count
        else:
            n = parse_expr(self.trip_count).eval(env)
        if n < 0:
            raise RegionError(f"negative trip count {n} for loop over {self.loop_var!r}")
        return n

    def flops_for(self, iteration: int, env: Mapping[str, Union[int, float]]) -> float:
        if self.flops_per_iter is None:
            return 0.0
        if callable(self.flops_per_iter):
            return float(self.flops_per_iter(iteration, env))
        return float(self.flops_per_iter)

    def tile_flops(self, lo: int, hi: int, env: Mapping[str, Union[int, float]]) -> float:
        if self.flops_per_iter is None:
            return 0.0
        if not callable(self.flops_per_iter):
            return float(self.flops_per_iter) * (hi - lo)
        return sum(self.flops_for(i, env) for i in range(lo, hi))


class TargetRegion:
    """A ``target device(...)`` region: maps + one or more parallel loops."""

    def __init__(
        self,
        name: str,
        pragmas: Sequence[str],
        loops: Sequence[ParallelLoop],
        locals_: Mapping[str, Union[str, int]] | None = None,
        memory_intensity: float = 1.0,
    ) -> None:
        if not loops:
            raise RegionError(f"region {name!r} has no parallel loops")
        if not 0.0 <= memory_intensity <= 1.0:
            raise RegionError(f"memory_intensity must be in [0, 1], got {memory_intensity!r}")
        self.name = name
        self.pragma_sources = tuple(pragmas)
        self.loops = list(loops)
        self.locals_ = dict(locals_ or {})
        self.memory_intensity = memory_intensity
        self.device: str | None = None
        self.maps: list[MapClause] = []
        self._parse_pragmas()
        self._validate()

    # -------------------------------------------------------------- analysis
    def _parse_pragmas(self) -> None:
        for src in self.pragma_sources:
            parsed = parse_pragma(src)
            nodes = parsed if isinstance(parsed, tuple) else (parsed,)
            for node in nodes:
                if isinstance(node, UnsupportedConstruct):
                    raise RegionError(
                        f"region {self.name!r} uses '{node.name}', which needs shared "
                        f"memory; the cloud device does not support OpenMP "
                        f"synchronization constructs (paper Section III-D)"
                    )
                if isinstance(node, TargetConstruct):
                    if node.device is not None:
                        self.device = node.device
                    self.maps.extend(node.maps)
                elif isinstance(node, TargetDataConstruct):
                    raise RegionError(
                        f"'target data' belongs on a loop's partition_pragma, "
                        f"not on region {self.name!r}"
                    )
                elif isinstance(node, ParallelForConstruct):
                    raise RegionError(
                        f"'parallel for' belongs in a ParallelLoop, not in the "
                        f"region pragmas of {self.name!r}"
                    )

    def _validate(self) -> None:
        mapped = {i.name for c in self.maps for i in c.items}
        declared = mapped | set(self.locals_)
        for loop in self.loops:
            for name in (*loop.reads, *loop.writes):
                if name not in declared:
                    raise RegionError(
                        f"loop over {loop.loop_var!r} touches {name!r}, which is neither "
                        f"mapped on region {self.name!r} nor a region-local buffer"
                    )
            for name in loop.partitions:
                if name not in declared:
                    raise RegionError(
                        f"partition pragma names {name!r}, not declared on region {self.name!r}"
                    )
            for name, op in loop.reduction_vars.items():
                if name not in declared:
                    raise RegionError(
                        f"reduction({op}: {name}) names an undeclared variable "
                        f"on region {self.name!r}"
                    )

    # --------------------------------------------------------------- queries
    def map_items(self, map_type: MapType | None = None) -> list[MapItem]:
        out: list[MapItem] = []
        for clause in self.maps:
            if map_type is None or clause.map_type == map_type:
                out.extend(clause.items)
        return out

    def map_type_of(self, name: str) -> MapType | None:
        """The (merged) map type of a variable; tofrom wins over to/from."""
        found: MapType | None = None
        for clause in self.maps:
            for item in clause.items:
                if item.name != name:
                    continue
                if found is None:
                    found = clause.map_type
                elif found != clause.map_type:
                    found = MapType.TOFROM
        return found

    @property
    def input_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for clause in self.maps:
            if clause.map_type.is_input:
                for item in clause.items:
                    seen.setdefault(item.name, None)
        return list(seen)

    @property
    def output_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for clause in self.maps:
            if clause.map_type.is_output:
                for item in clause.items:
                    seen.setdefault(item.name, None)
        return list(seen)

    def declared_length(self, name: str, env: Mapping[str, Union[int, float]]) -> int:
        """Element count of a mapped or local variable from its declaration."""
        if name in self.locals_:
            decl = self.locals_[name]
            return int(decl) if isinstance(decl, int) else parse_expr(decl).eval(env)
        for clause in self.maps:
            for item in clause.items:
                if item.name == name and item.upper is not None:
                    lo = item.lower.eval(env) if item.lower is not None else 0
                    return item.upper.eval(env) - lo
        raise RegionError(f"cannot determine the length of {name!r} on region {self.name!r}")


def omp_get_num_devices(runtime=None) -> int:
    """User-level runtime routine from the accelerator model."""
    from repro.core.runtime import OffloadRuntime

    rt = runtime if runtime is not None else OffloadRuntime.default()
    return rt.num_devices()


@dataclass(frozen=True)
class OffloadOptions:
    """How to run an offload — one options surface shared by
    :func:`offload` and :meth:`~repro.core.decorators.OmpKernel.offload`,
    so ``strict``/``mode``/``device`` keywords behave identically whichever
    front end built the region.

    ``device`` overrides the region's ``device(...)`` clause (id or name);
    ``lengths``/``densities`` describe virtual buffers in modeled mode.
    Instances are immutable; per-call keywords layer on top via
    :func:`dataclasses.replace`.
    """

    runtime: object = None
    device: Union[int, str, None] = None
    mode: ExecutionMode = ExecutionMode.FUNCTIONAL
    strict: bool = False
    lengths: Mapping[str, int] | None = None
    densities: Mapping[str, float] | None = None
    #: Opt-in clause inference: before staging, replace the region's map and
    #: partition clauses with the provably minimal set synthesized by
    #: :func:`repro.analysis.infer.infer_region` (degrades to the original
    #: clauses whenever the analysis is incomplete).
    infer_maps: bool = False
    #: ``target ... nowait``: defer the region as a target task instead of
    #: executing it inline.  The call returns a
    #: :class:`~repro.core.taskgraph.TaskHandle`; execution happens at the
    #: next :func:`repro.omp.taskwait` (or when the enclosing ``target
    #: data`` scope closes), where chained deferred regions may fuse into a
    #: single Spark job (docs/TASKGRAPH.md).
    nowait: bool = False
    #: ``depend(in:...)/depend(out:...)/depend(inout:...)`` clauses built
    #: with :func:`repro.omp.depend`.  Per OpenMP 4.5 §2.13.9 they only
    #: order this task against sibling tasks that *also* carry depend
    #: clauses; the runtime additionally infers buffer dataflow as a safety
    #: net.  Only meaningful together with ``nowait=True``.
    depend: "object | None" = None


def offload(
    region: TargetRegion,
    arrays: Mapping[str, np.ndarray] | None = None,
    scalars: Mapping[str, Union[int, float]] | None = None,
    *,
    options: OffloadOptions | None = None,
    **overrides,
):
    """Execute a target region through the offloading runtime.

    Functional mode takes real ``arrays``; modeled mode takes ``lengths`` (and
    optional ``densities``) instead.  Returns the device's
    :class:`~repro.core.plugin_cloud.OffloadReport` — or, with
    ``nowait=True``, a :class:`~repro.core.taskgraph.TaskHandle` whose
    report materializes at the next :func:`repro.omp.taskwait`.

    Keyword arguments are the fields of :class:`OffloadOptions` — pass a
    prebuilt ``options=`` bundle, loose keywords (``mode=``, ``strict=``,
    ``device=``...), or both (keywords win).

    ``strict=True`` runs the static verifier (:mod:`repro.analysis`) against
    the region and the actual ``scalars`` first, raising
    :class:`~repro.analysis.AnalysisError` before any buffer is even built;
    the per-device ``[Analysis]`` configuration enables the same gate
    runtime-wide.
    """
    from dataclasses import replace

    from repro.core.runtime import OffloadRuntime

    if options is None:
        opts = OffloadOptions(**overrides)
    elif overrides:
        opts = replace(options, **overrides)
    else:
        opts = options
    rt = opts.runtime if opts.runtime is not None else OffloadRuntime.default()
    scalars = dict(scalars or {})
    if opts.strict:
        from repro.analysis import enforce_strict

        enforce_strict(region, scalars)
    densities = dict(opts.densities or {})
    buffers: dict[str, Buffer] = {}
    names = {i.name for c in region.maps for i in c.items}
    if opts.mode == ExecutionMode.FUNCTIONAL:
        arrays = arrays or {}
        for name in names:
            if name not in arrays:
                raise RegionError(f"functional offload of {region.name!r} misses array {name!r}")
            buffers[name] = Buffer(name, data=arrays[name],
                                   density=densities.get(name, 1.0))
    else:
        lengths = dict(opts.lengths or {})
        for name in names:
            length = lengths.get(name, None)
            if length is None:
                length = region.declared_length(name, scalars)
            buffers[name] = Buffer(name, length=length,
                                   density=densities.get(name, 1.0))
    if opts.nowait:
        return rt.target_nowait(region, buffers, scalars, mode=opts.mode,
                                device=opts.device, infer_maps=opts.infer_maps,
                                depend=opts.depend, strict=opts.strict)
    if opts.depend is not None:
        raise RegionError(
            f"offload of {region.name!r} passes depend= without nowait=True; "
            f"depend clauses only order deferred target tasks"
        )
    return rt.target(region, buffers, scalars, mode=opts.mode,
                     device=opts.device, infer_maps=opts.infer_maps)
