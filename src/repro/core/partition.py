"""Partition analysis: Eq. 1-3 and the tile-widening rule.

The partitioning extension (Section III-B) attaches per-iteration element
ranges to mapped variables: ``map(to: A[i*N:(i+1)*N])`` says iteration ``i``
reads elements [i*N, (i+1)*N) of A.  After Algorithm 1 tiles the loop, "the
lower and upper bounds of the partitions will also be readjusted dynamically
according to the tiling size, hence increasing their granularity": tile
[lo, hi) owns elements [bound(lo).lower, bound(hi-1).upper).

Variables *without* a loop-dependent section (matrix B in the running
example) are not partitioned — every worker gets a full copy via broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.exprs import Expr, Num
from repro.core.omp_ast import MapItem, MapType
from repro.core.tiling import Tile


class PartitionError(Exception):
    """Inconsistent or invalid partition bounds."""


@dataclass(frozen=True)
class PartitionSpec:
    """How one mapped variable is distributed to workers."""

    name: str
    map_type: MapType
    lower: Expr | None = None  # None => not partitioned (broadcast/whole)
    upper: Expr | None = None
    loop_var: str = "i"

    @property
    def is_partitioned(self) -> bool:
        """Partitioned iff a section exists and depends on the loop variable."""
        if self.upper is None:
            return False
        deps = self.upper.variables() | (self.lower.variables() if self.lower else set())
        return self.loop_var in deps

    def element_range(self, iteration: int, env: Mapping[str, int]) -> tuple[int, int]:
        """Elements owned by one iteration (Eq. 2's V_IN(i) block)."""
        if self.upper is None:
            raise PartitionError(f"{self.name!r} has no section to evaluate")
        scope = dict(env)
        scope[self.loop_var] = iteration
        lo = self.lower.eval(scope) if self.lower is not None else 0
        hi = self.upper.eval(scope)
        if lo < 0 or hi < lo:
            raise PartitionError(
                f"{self.name!r}: bounds [{lo}, {hi}) invalid at {self.loop_var}={iteration}"
            )
        return lo, hi


def spec_from_map_item(item: MapItem, map_type: MapType, loop_var: str) -> PartitionSpec:
    return PartitionSpec(
        name=item.name,
        map_type=map_type,
        lower=item.lower if item.lower is not None else (Num(0) if item.upper is not None else None),
        upper=item.upper,
        loop_var=loop_var,
    )


def partition_for_tile(
    spec: PartitionSpec, tile: Tile, env: Mapping[str, int]
) -> tuple[int, int]:
    """Widened element range owned by ``tile`` (the dynamic readjustment).

    Bounds must be monotone in the loop variable — the contiguous-block
    contract the paper's driver relies on when it "splits A according to the
    partitioning bound defined by the user".  Violations raise
    :class:`PartitionError` instead of silently mis-splitting.
    """
    if tile.size == 0:
        raise PartitionError(f"empty tile {tile}")
    first_lo, first_hi = spec.element_range(tile.lo, env)
    last_lo, last_hi = spec.element_range(tile.hi - 1, env)
    if last_lo < first_lo or last_hi < first_hi:
        raise PartitionError(
            f"{spec.name!r}: partition bounds are not monotone in {spec.loop_var!r} "
            f"over tile [{tile.lo}, {tile.hi})"
        )
    return first_lo, last_hi


def _element_ranges_vec(
    spec: PartitionSpec, iters: np.ndarray, env: Mapping[str, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`PartitionSpec.element_range` over an iteration array.

    Raises the same :class:`PartitionError` (same message, first offending
    iteration) the scalar path would.
    """
    if spec.upper is None:
        raise PartitionError(f"{spec.name!r} has no section to evaluate")
    scope: dict = dict(env)
    scope[spec.loop_var] = iters
    lo = np.broadcast_to(
        np.asarray(spec.lower.eval_vec(scope) if spec.lower is not None else 0,
                   dtype=np.int64), iters.shape)
    hi = np.broadcast_to(np.asarray(spec.upper.eval_vec(scope), dtype=np.int64),
                         iters.shape)
    bad = (lo < 0) | (hi < lo)
    if np.any(bad):
        j = int(np.argmax(bad))
        raise PartitionError(
            f"{spec.name!r}: bounds [{int(lo[j])}, {int(hi[j])}) invalid "
            f"at {spec.loop_var}={int(iters[j])}"
        )
    return lo, hi


def partition_windows(
    spec: PartitionSpec,
    tile_lo: np.ndarray,
    tile_hi: np.ndarray,
    env: Mapping[str, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`partition_for_tile` over parallel tile-bound arrays.

    Returns int64 arrays ``(lo, hi)`` with ``(lo[j], hi[j]) ==
    partition_for_tile(spec, Tile(j, tile_lo[j], tile_hi[j]), env)`` — one
    symbolic evaluation per bound expression instead of one per tile, which
    is what keeps million-task loops out of the interpreter (see
    docs/PERFORMANCE.md).  Validation matches the scalar path: empty tiles,
    invalid bounds and non-monotone sections raise the same
    :class:`PartitionError` text for the first offending tile.
    """
    tile_lo = np.asarray(tile_lo, dtype=np.int64)
    tile_hi = np.asarray(tile_hi, dtype=np.int64)
    empty = tile_hi - tile_lo == 0
    if np.any(empty):
        j = int(np.argmax(empty))
        raise PartitionError(
            f"empty tile {Tile(index=j, lo=int(tile_lo[j]), hi=int(tile_hi[j]))}")
    first_lo, first_hi = _element_ranges_vec(spec, tile_lo, env)
    last_lo, last_hi = _element_ranges_vec(spec, tile_hi - 1, env)
    bad = (last_lo < first_lo) | (last_hi < first_hi)
    if np.any(bad):
        j = int(np.argmax(bad))
        raise PartitionError(
            f"{spec.name!r}: partition bounds are not monotone in "
            f"{spec.loop_var!r} over tile [{int(tile_lo[j])}, {int(tile_hi[j])})"
        )
    return first_lo, last_hi


def check_exact_cover(
    spec: PartitionSpec,
    tiles: list[Tile],
    env: Mapping[str, int],
    total_elements: int,
) -> None:
    """Verify tiles' widened ranges tile the variable exactly (no overlap, no
    gap, full coverage).  Used by the driver before scattering and heavily by
    the property tests."""
    cursor = 0
    for tile in sorted(tiles, key=lambda t: t.lo):
        lo, hi = partition_for_tile(spec, tile, env)
        if lo != cursor:
            raise PartitionError(
                f"{spec.name!r}: partition gap/overlap at element {cursor} "
                f"(tile [{tile.lo},{tile.hi}) starts at {lo})"
            )
        cursor = hi
    if cursor != total_elements:
        raise PartitionError(
            f"{spec.name!r}: partitions cover [0, {cursor}) but the variable "
            f"has {total_elements} elements"
        )
