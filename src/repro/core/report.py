"""Offload reports: the measured quantities behind Figures 4 and 5.

Every offload returns an :class:`OffloadReport` with the three milestones the
paper's evaluation plots:

* ``full_s``            — OmpCloud-full: everything, host-target included;
* ``spark_job_s``       — OmpCloud-spark: the Spark job only;
* ``computation_s``     — OmpCloud-computation: the parallel map tasks only;

plus the fine-grained timeline for Figure 5's stacked decomposition.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.simtime.timeline import (
    BUCKET_COMPUTE,
    BUCKET_HOST_COMM,
    BUCKET_RESILIENCE,
    BUCKET_SPARK,
    Timeline,
)


@dataclass
class OffloadReport:
    """Timing and traffic record of one target-region offload."""

    region_name: str
    device_name: str
    mode: str
    timeline: Timeline = field(default_factory=Timeline)
    # Milestones (simulated seconds).
    host_comm_up_s: float = 0.0
    host_comm_down_s: float = 0.0
    spark_job_s: float = 0.0
    computation_s: float = 0.0
    # Traffic.
    bytes_up_raw: int = 0
    bytes_up_wire: int = 0
    bytes_down_raw: int = 0
    bytes_down_wire: int = 0
    # Cluster activity.
    tasks_run: int = 0
    tasks_recomputed: int = 0
    # Adaptive execution (docs/SCHEDULING.md): straggler copies raced/won.
    tasks_speculated: int = 0
    speculation_wins: int = 0
    speculation_saved_s: float = 0.0
    fell_back_to_host: bool = False
    # Resilience: recovery work performed during the offload.
    retries: int = 0
    backoff_s: float = 0.0
    resubmissions: int = 0
    preemptions: int = 0
    # Pay-as-you-go accounting when the plugin manages instances.
    billed_usd: float = 0.0
    instance_mgmt_s: float = 0.0
    # Host-target data cache (when enabled): inputs served without upload.
    cache_hits: int = 0
    cache_bytes_saved: int = 0
    # Persistent data environments: buffers already resident on the device
    # (`target data`), so their map transfers were skipped outright.
    resident_hits: int = 0
    bytes_not_retransferred: int = 0
    # Durable recovery (docs/RESILIENCE.md): journaled checkpoints, resumes
    # after driver loss, and end-to-end integrity verification.
    tiles_checkpointed: int = 0
    tiles_skipped: int = 0
    resumes: int = 0
    corruption_detected: int = 0
    restaged_inputs: int = 0
    # Cluster-fabric bytes moved by the tasks of the final (successful)
    # submission — what a resume avoids re-moving versus a full restart.
    cluster_bytes_wire: int = 0
    # Cluster<->storage bytes the job's driver moved (input reads, output
    # and checkpoint writes, checkpoint restores).  Together with
    # ``cluster_bytes_wire`` this is the full cluster-side wire traffic —
    # the quantity task-graph fusion reduces by eliding intermediates.
    storage_bytes_wire: int = 0
    # Task-graph fusion (docs/TASKGRAPH.md): when this report belongs to a
    # fused job, how many regions it absorbed and the estimated
    # cluster<->storage bytes the elided intermediates avoided.  When a
    # planned fusion was rejected, the (group, reason) pairs land on each
    # member's own report.
    fused_regions: int = 0
    fusion_wire_bytes_saved: int = 0
    fusion_rejected: tuple[tuple[str, str], ...] = ()

    @property
    def host_comm_s(self) -> float:
        return self.host_comm_up_s + self.host_comm_down_s

    @property
    def resilience_s(self) -> float:
        """Wall time charged to fault recovery (retry/resubmission backoff)."""
        return self.backoff_s

    @property
    def full_s(self) -> float:
        """OmpCloud-full: offload wall time, instance management excluded
        (the paper's timings start from a provisioned cluster).  Backoff
        spent on retries and resubmissions is wall time the user waits
        through, so it is part of the full milestone."""
        return self.host_comm_s + self.spark_job_s + self.resilience_s

    @property
    def spark_overhead_s(self) -> float:
        """The Figure-5 'spark overhead' bucket."""
        return max(0.0, self.spark_job_s - self.computation_s)

    def figure5_stack(self) -> dict[str, float]:
        """The stacked components of Figure 5, summing to ``full_s``.

        Fault-free offloads keep the paper's three buckets; when a fault
        plan charged recovery time, a fourth ``resilience`` component
        appears so the stack still sums to the observed wall time.
        """
        stack = {
            BUCKET_HOST_COMM: self.host_comm_s,
            BUCKET_SPARK: self.spark_overhead_s,
            BUCKET_COMPUTE: self.computation_s,
        }
        if self.resilience_s > 0.0:
            stack[BUCKET_RESILIENCE] = self.resilience_s
        return stack

    def to_dict(self) -> dict:
        """Flat, JSON-serializable view (timeline summarized per bucket)."""
        return {
            "region": self.region_name,
            "device": self.device_name,
            "mode": self.mode,
            "full_s": self.full_s,
            "spark_job_s": self.spark_job_s,
            "computation_s": self.computation_s,
            "spark_overhead_s": self.spark_overhead_s,
            "host_comm_up_s": self.host_comm_up_s,
            "host_comm_down_s": self.host_comm_down_s,
            "bytes_up_raw": self.bytes_up_raw,
            "bytes_up_wire": self.bytes_up_wire,
            "bytes_down_raw": self.bytes_down_raw,
            "bytes_down_wire": self.bytes_down_wire,
            "tasks_run": self.tasks_run,
            "tasks_recomputed": self.tasks_recomputed,
            "tasks_speculated": self.tasks_speculated,
            "speculation_wins": self.speculation_wins,
            "speculation_saved_s": self.speculation_saved_s,
            "fell_back_to_host": self.fell_back_to_host,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "resubmissions": self.resubmissions,
            "preemptions": self.preemptions,
            "billed_usd": self.billed_usd,
            "cache_hits": self.cache_hits,
            "cache_bytes_saved": self.cache_bytes_saved,
            "resident_hits": self.resident_hits,
            "bytes_not_retransferred": self.bytes_not_retransferred,
            "tiles_checkpointed": self.tiles_checkpointed,
            "tiles_skipped": self.tiles_skipped,
            "resumes": self.resumes,
            "corruption_detected": self.corruption_detected,
            "restaged_inputs": self.restaged_inputs,
            "cluster_bytes_wire": self.cluster_bytes_wire,
            "storage_bytes_wire": self.storage_bytes_wire,
            "fused_regions": self.fused_regions,
            "fusion_wire_bytes_saved": self.fusion_wire_bytes_saved,
            "fusion_rejected": [list(pair) for pair in self.fusion_rejected],
            "figure5_stack": self.figure5_stack(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        stack = self.figure5_stack()
        lines = [
            f"offload {self.region_name!r} on {self.device_name} ({self.mode})",
            f"  full: {self.full_s:10.2f} s   spark job: {self.spark_job_s:10.2f} s   "
            f"computation: {self.computation_s:10.2f} s",
        ]
        for bucket, secs in stack.items():
            share = secs / self.full_s * 100.0 if self.full_s > 0 else 0.0
            lines.append(f"  {bucket:<28} {secs:10.2f} s  ({share:5.1f} %)")
        lines.append(
            f"  up: {self.bytes_up_raw / 1e6:.1f} MB raw -> {self.bytes_up_wire / 1e6:.1f} MB wire; "
            f"down: {self.bytes_down_raw / 1e6:.1f} MB raw -> {self.bytes_down_wire / 1e6:.1f} MB wire"
        )
        if self.retries or self.resubmissions or self.preemptions:
            lines.append(
                f"  recovery: {self.retries} retries ({self.backoff_s:.2f} s backoff), "
                f"{self.resubmissions} resubmissions, {self.preemptions} preemptions"
            )
        if self.tasks_speculated:
            lines.append(
                f"  speculation: {self.tasks_speculated} copies launched, "
                f"{self.speculation_wins} won, "
                f"{self.speculation_saved_s:.2f} s of tail removed"
            )
        if self.resident_hits:
            lines.append(
                f"  resident: {self.resident_hits} buffer(s) reused in place, "
                f"{self.bytes_not_retransferred / 1e6:.1f} MB not retransferred"
            )
        if self.resumes or self.tiles_skipped:
            lines.append(
                f"  checkpoint: {self.resumes} resume(s), "
                f"{self.tiles_skipped} tile(s) skipped, "
                f"{self.tiles_checkpointed} committed"
            )
        if self.corruption_detected or self.restaged_inputs:
            lines.append(
                f"  integrity: {self.corruption_detected} corrupt read(s) "
                f"detected, {self.restaged_inputs} input(s) re-staged"
            )
        if self.fused_regions:
            lines.append(
                f"  fusion: {self.fused_regions} region(s) ran as one job, "
                f"~{self.fusion_wire_bytes_saved / 1e6:.1f} MB of "
                f"intermediate traffic elided"
            )
        for group, reason in self.fusion_rejected:
            lines.append(f"  fusion rejected for {group}: {reason}")
        if self.fell_back_to_host:
            lines.append("  fell back to host execution")
        if self.billed_usd:
            lines.append(f"  billed: ${self.billed_usd:.2f}")
        return "\n".join(lines)
