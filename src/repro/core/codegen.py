"""Lowering target regions to Spark jobs (Eq. 4-10 + Algorithm 1).

In the paper this is the Scala program LLVM emits next to the fat binary:
"When submitting the job to the cluster, the driver node runs the Scala
program and distributes the loop iteration among the worker nodes", the
workers running the loop body natively through JNI.  Here the generator
builds the same job directly against the Spark substrate:

1. read the staged input files from cloud storage onto the driver;
2. per parallel loop: tile the iteration space to the core count
   (Algorithm 1), split partitioned inputs into per-tile windows (Eq. 3),
   broadcast unpartitioned inputs, ``map`` the tile body (Eq. 4-7), collect,
   and reconstruct outputs — indexed writes for partitioned variables,
   ``bitor`` reduction for unpartitioned ones, the OpenMP reduction operator
   for reduction variables (Eq. 8-10);
3. write region outputs back to cloud storage.

The generator runs in both execution modes: functional (real ndarrays, the
body really executes on the substrate) and modeled (virtual buffers, task
durations from the performance model).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence, Union

import numpy as np

from repro.core.api import ParallelLoop, TargetRegion
from repro.core.buffers import Buffer, ExecutionMode, OffsetArray
from repro.core.omp_ast import REDUCTION_OPS, MapType
from repro.core.partition import partition_for_tile, partition_windows
from repro.core.tiling import (Tile, drop_empty_tiles, tile_by_chunk,
                               tile_iterations, tile_weighted, untiled)
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.compression import CompressionModel, gzip_compress, gzip_decompress, model_for_density
from repro.perfmodel.compute import ComputeModel
from repro.obs.events import CheckpointCommit, get_bus
from repro.resilience import OffloadJournal, RetryPolicy, TileCheckpoint, retry_call
from repro.simtime.timeline import Phase
from repro.spark.context import SparkContext
from repro.spark.driver import TaskCosts, TaskCostsArrays
from repro.spark.faults import NO_FAULTS, FaultPlan
from repro.spark.schedule import STATIC_SCHEDULE, ScheduleConfig
from repro.cloud.storage import TransientStorageError
from repro.spark.serialization import check_jvm_array_limit


class CodegenError(Exception):
    """Region cannot be lowered to a Spark job."""


class ExecutorOOMError(CodegenError):
    """A loop's working set cannot fit in the executor heap.

    Mirrors the JVM OutOfMemoryError a real Spark executor throws when the
    broadcast blocks plus the concurrently-resident task payloads exceed
    ``spark.executor.memory`` (the paper runs 40 GB heaps on 60 GB nodes)."""


@dataclass
class LoopJobReport:
    """Per-loop accounting returned to the plugin."""

    loop_var: str
    n_tasks: int
    computation_s: float
    recomputed_tasks: int
    speculated_tasks: int = 0
    speculation_wins: int = 0
    speculation_saved_s: float = 0.0
    # Durable recovery: tiles committed / resumed-from this submission.
    tiles_checkpointed: int = 0
    tiles_skipped: int = 0
    bytes_restored: int = 0
    # Cluster-fabric bytes the scheduled tasks moved (inputs + outputs).
    task_bytes_wire: int = 0


@dataclass
class SparkJobReport:
    """What one spark-submit produced."""

    started_at: float
    finished_at: float
    loops: list[LoopJobReport] = field(default_factory=list)
    output_keys: dict[str, str] = field(default_factory=dict)
    output_checksums: dict[str, str] = field(default_factory=dict)
    # Cluster<->storage wire bytes the driver moved: input reads and
    # checkpoint restores on one side, output and checkpoint writes on the
    # other.  Fusion elides intermediate arrays from both sides.
    storage_bytes_read: int = 0
    storage_bytes_written: int = 0

    @property
    def job_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def storage_bytes_wire(self) -> int:
        return self.storage_bytes_read + self.storage_bytes_written

    @property
    def computation_s(self) -> float:
        return sum(lp.computation_s for lp in self.loops)

    @property
    def tasks_run(self) -> int:
        return sum(lp.n_tasks for lp in self.loops)

    @property
    def tasks_recomputed(self) -> int:
        return sum(lp.recomputed_tasks for lp in self.loops)

    @property
    def tasks_speculated(self) -> int:
        return sum(lp.speculated_tasks for lp in self.loops)

    @property
    def speculation_wins(self) -> int:
        return sum(lp.speculation_wins for lp in self.loops)

    @property
    def speculation_saved_s(self) -> float:
        return sum(lp.speculation_saved_s for lp in self.loops)

    @property
    def tiles_checkpointed(self) -> int:
        return sum(lp.tiles_checkpointed for lp in self.loops)

    @property
    def tiles_skipped(self) -> int:
        return sum(lp.tiles_skipped for lp in self.loops)

    @property
    def bytes_restored(self) -> int:
        return sum(lp.bytes_restored for lp in self.loops)

    @property
    def task_bytes_wire(self) -> int:
        return sum(lp.task_bytes_wire for lp in self.loops)


class SparkJobGenerator:
    """Builds and runs the Spark job for one target region."""

    def __init__(
        self,
        region: TargetRegion,
        scalars: Mapping[str, Union[int, float]],
        context: SparkContext,
        calibration: Calibration = DEFAULT_CALIBRATION,
        mode: ExecutionMode = ExecutionMode.FUNCTIONAL,
        tiling: bool = True,
        intra_compression: bool = True,
        fault_plan: FaultPlan = NO_FAULTS,
        host_compression: bool = True,
        min_compress_size: int | None = None,
        retry_policy: RetryPolicy | None = None,
        schedule: ScheduleConfig = STATIC_SCHEDULE,
        journal: OffloadJournal | None = None,
        checkpoint: bool = False,
        resume: Mapping[str, Mapping[int, TileCheckpoint]] | None = None,
        death_at: float | None = None,
    ) -> None:
        self.region = region
        self.scalars = dict(scalars)
        self.sc = context
        self.cal = calibration
        self.mode = mode
        self.tiling = tiling
        self.intra_compression = intra_compression
        self.fault_plan = fault_plan
        self.host_compression = host_compression
        self.min_compress_size = (
            min_compress_size if min_compress_size is not None
            else calibration.min_compress_size
        )
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.schedule = schedule
        #: Recovery wiring: when ``checkpoint`` is on, completed tile outputs
        #: are committed to storage and journaled; ``resume`` carries the
        #: checkpoints a replacement driver verified, so those tiles are
        #: restored instead of rescheduled.  ``death_at`` bounds which task
        #: completions were durable before the driver died (None = no death
        #: pending — every completion commits).
        self.journal = journal
        self.checkpoint = checkpoint
        self.resume = dict(resume) if resume else {}
        self.death_at = death_at
        self.compute_model = ComputeModel(calibration)
        self._driver_arrays: dict[str, np.ndarray | None] = {}
        self._buffer_info: dict[str, Buffer] = {}
        self._storage = None
        self._key_prefix = ""
        # Driver<->storage wire-byte accounting (one generator per
        # submission, so plain instance counters suffice).
        self._storage_bytes_read = 0
        self._storage_bytes_written = 0

    # ------------------------------------------------------------------ run
    def run(
        self,
        buffers: Mapping[str, Buffer],
        storage,
        input_keys: Mapping[str, str],
        key_prefix: str,
    ) -> SparkJobReport:
        """Execute the whole job; advances the cluster clock."""
        clock = self.sc.clock
        timeline = self.sc.timeline
        started = clock.now
        self._buffer_info = dict(buffers)
        self._storage = storage
        self._key_prefix = key_prefix

        # Stage setup: spark-submit, driver JVM, stage DAG.
        self.sc.log.info(clock.now, "SparkContext",
                         f"Running OmpCloud job for region {self.region.name!r} on "
                         f"{self.sc.cluster.total_task_slots} task slots")
        timeline.record(Phase.CLUSTER_INIT, clock.now, clock.advance(self.cal.job_setup_s),
                        resource="driver", label="job-setup")

        self._read_inputs(buffers, storage, input_keys)
        self._allocate_locals()

        report = SparkJobReport(started_at=started, finished_at=started)
        for loop in self.region.loops:
            report.loops.append(self._run_loop(loop))

        report.output_keys, report.output_checksums = \
            self._write_outputs(storage, key_prefix)
        report.finished_at = clock.now
        report.storage_bytes_read = self._storage_bytes_read
        report.storage_bytes_written = self._storage_bytes_written
        return report

    def driver_array(self, name: str) -> "np.ndarray | None":
        """Final driver-side value of a mapped or local array (functional
        mode; ``None`` in modeled mode or before the job ran)."""
        return self._driver_arrays.get(name)

    # --------------------------------------------------------------- staging
    def _storage_retry(self, op_name: str, fn, *args, **kwargs):
        """Driver-side storage access with Hadoop-client-style retries;
        backoff is charged to the simulated clock."""

        def on_retry(failure: int, delay: float, exc: BaseException) -> None:
            self.sc.log.warn(self.sc.clock.now, "HadoopRDD",
                             f"{op_name} failed transiently ({exc}); "
                             f"retrying in {delay:.1f}s")
            self.sc.clock.advance(delay)

        return retry_call(self.retry_policy, fn, *args,
                          retry_on=(TransientStorageError,),
                          op_name=op_name, on_retry=on_retry, **kwargs)

    def staged_compressed(self, buf: Buffer) -> bool:
        """Whether the plugin gzip'd this buffer when staging it (the same
        threshold rule decides both sides of the storage hop)."""
        return self.host_compression and buf.nbytes >= self.min_compress_size

    def _read_inputs(self, buffers, storage, input_keys) -> None:
        clock, timeline = self.sc.clock, self.sc.timeline
        for name in self.region.input_names:
            buf = buffers[name]
            key = input_keys[name]
            wire = self._storage_retry("HEAD", storage.size_of, key)
            self._storage_bytes_read += wire
            codec = self._codec_for(buf)
            dt = storage.cluster_read_time(wire)
            if self.staged_compressed(buf):
                dt += codec.decompress_time(buf.nbytes)
            timeline.record(Phase.STORAGE_READ, clock.now, clock.advance(dt),
                            resource="driver", label=f"read-{name}")
            if self.mode == ExecutionMode.FUNCTIONAL:
                raw = self._storage_retry("GET", storage.get_bytes, key)
                if self.staged_compressed(buf):
                    raw = gzip_decompress(raw)
                self._driver_arrays[name] = np.frombuffer(raw, dtype=buf.dtype).copy()
            else:
                self._driver_arrays[name] = None
        # Output-only variables exist on the driver but carry no uploaded
        # payload; allocate them for reconstruction.
        for name in self.region.output_names:
            if name in self._driver_arrays:
                continue
            buf = buffers[name]
            self._driver_arrays[name] = (
                np.zeros(buf.length, dtype=buf.dtype)
                if self.mode == ExecutionMode.FUNCTIONAL
                else None
            )

    def _allocate_locals(self) -> None:
        for name in self.region.locals_:
            length = self.region.declared_length(name, self.scalars)
            buf = Buffer(name, length=length, dtype=np.float32)
            self._buffer_info[name] = buf
            self._driver_arrays[name] = (
                np.zeros(length, dtype=np.float32)
                if self.mode == ExecutionMode.FUNCTIONAL
                else None
            )

    def _write_outputs(self, storage, key_prefix: str) -> tuple[dict[str, str], dict[str, str]]:
        clock, timeline = self.sc.clock, self.sc.timeline
        out_keys: dict[str, str] = {}
        out_checksums: dict[str, str] = {}
        for name in self.region.output_names:
            buf = self._buffer_info[name]
            codec = self._codec_for(buf)
            compressed = self.staged_compressed(buf)
            key = f"{key_prefix}/out/{name}.bin" + (".gz" if compressed else "")
            if self.mode == ExecutionMode.FUNCTIONAL:
                arr = self._driver_arrays[name]
                assert arr is not None
                # Zero-copy staging: compress (or PUT) straight from a view
                # of the driver array; storage materialises its own bytes.
                view = memoryview(arr).cast("B").toreadonly()
                payload = gzip_compress(view) if compressed else view
                obj = self._storage_retry("PUT", storage.put, key, data=payload)
                wire = len(payload)
            else:
                wire = codec.compressed_size(buf.nbytes) if compressed else buf.nbytes
                obj = self._storage_retry("PUT", storage.put, key, size=wire)
            self._storage_bytes_written += wire
            dt = codec.compress_time(buf.nbytes) if compressed else 0.0
            dt += storage.cluster_write_time(wire)
            timeline.record(Phase.STORAGE_WRITE, clock.now, clock.advance(dt),
                            resource="driver", label=f"write-{name}")
            out_keys[name] = key
            out_checksums[name] = obj.checksum
        return out_keys, out_checksums

    # ------------------------------------------------------------- loop jobs
    def _run_loop(self, loop: ParallelLoop) -> LoopJobReport:
        clock, timeline = self.sc.clock, self.sc.timeline
        n = loop.trip_count_value(self.scalars)
        cores = self.sc.cluster.total_task_slots
        tiles = self._tiles_for(loop, n, cores)
        if not tiles:
            return LoopJobReport(loop_var=loop.loop_var, n_tasks=0,
                                 computation_s=0.0, recomputed_tasks=0)

        partitioned_reads = [
            nm for nm in loop.reads if nm in loop.partitions and loop.partitions[nm].is_partitioned
        ]
        broadcast_reads = [nm for nm in loop.reads if nm not in partitioned_reads]
        self._check_jvm_limits(loop)
        self._check_executor_memory(loop, tiles, partitioned_reads, broadcast_reads)

        # Resume: drop tiles whose outputs were durably committed before the
        # crash.  A checkpoint only counts if the current tiling produced the
        # exact same tile (index and bounds) — anything else is stale.
        completed: dict[int, TileCheckpoint] = {}
        if self.resume:
            by_index = {t.index: t for t in tiles}
            completed = {
                i: c for i, c in self.resume.get(loop.loop_var, {}).items()
                if i in by_index
                and by_index[i].lo == c.lo and by_index[i].hi == c.hi
            }
        live = [t for t in tiles if t.index not in completed]

        self.sc.log.info(clock.now, "OmpCloudJob",
                         f"loop over {loop.loop_var!r}: {n} iterations -> "
                         f"{len(tiles)} tiles; split={partitioned_reads} "
                         f"broadcast={broadcast_reads}"
                         + (f"; resuming past {len(completed)} committed tile(s)"
                            if completed else ""))

        # Driver splits partitioned inputs into per-tile windows (Eq. 3).
        split_bytes = sum(self._buffer_info[nm].nbytes for nm in partitioned_reads)
        if split_bytes and live:
            dt = split_bytes / self.cal.driver_byte_bps
            timeline.record(Phase.RECONSTRUCT, clock.now, clock.advance(dt),
                            resource="driver", label=f"split-{loop.loop_var}")

        # Broadcast unpartitioned inputs; serialization on the driver, then
        # the scheduler charges the BitTorrent distribution.
        handles = {}
        for nm in broadcast_reads if live else []:
            buf = self._buffer_info[nm]
            dt = buf.nbytes / self.cal.broadcast_serialize_bps
            timeline.record(Phase.BROADCAST, clock.now, clock.advance(dt),
                            resource="driver", label=f"serialize-{nm}")
            wire = self._wire_bytes(buf, buf.nbytes)
            value = self._driver_arrays[nm] if self.mode == ExecutionMode.FUNCTIONAL else None
            handles[nm] = self.sc.broadcast(value, nbytes=wire)

        costs_for, costs_arrays = self._make_costs_fn(
            loop, live, partitioned_reads, broadcast_reads)
        job = None
        computation = 0.0
        if live:
            elements = self._elements_for(live, loop, partitioned_reads)
            rdd = self.sc.parallelize(elements, num_slices=len(live))
            map_fn = self._make_map_fn(loop, partitioned_reads, handles)
            mapped = rdd.map(map_fn)

            self.sc.cluster.reset_pools()
            self.sc.log.info(clock.now, "DAGScheduler",
                             f"Submitting map stage for loop {loop.loop_var!r} "
                             f"({len(live)} tasks)")
            job = self.sc.driver.run_job(
                mapped,
                costs_for=costs_for,
                costs_arrays=costs_arrays,
                broadcasts=tuple(handles.values()),
                fault_plan=self.fault_plan,
                functional=self.mode == ExecutionMode.FUNCTIONAL,
                schedule=self.schedule,
                stage=loop.loop_var,
            )
            self.sc.timeline.extend(job.timeline)
            self.sc.log.info(clock.now, "DAGScheduler",
                             f"Map stage for loop {loop.loop_var!r} finished in "
                             f"{job.stats.makespan_s:.3f} s "
                             f"({job.stats.recomputed_tasks} task(s) recomputed)")
            computation = job.timeline.filter([Phase.COMPUTE, Phase.JNI_CALL]).span()

        committed = self._commit_checkpoints(loop, live, job, costs_for)
        restored, bytes_restored = self._restore_checkpoints(loop, completed)

        partitions = (list(job.partitions) if job is not None else []) + restored
        self._reconstruct(loop, partitions, tiles)
        task_bytes = int(np.sum(costs_arrays.input_bytes)
                         + np.sum(costs_arrays.output_bytes))
        return LoopJobReport(
            loop_var=loop.loop_var,
            n_tasks=len(live),
            computation_s=computation,
            recomputed_tasks=job.stats.recomputed_tasks if job is not None else 0,
            speculated_tasks=job.stats.speculated_tasks if job is not None else 0,
            speculation_wins=job.stats.speculation_wins if job is not None else 0,
            speculation_saved_s=job.stats.speculation_saved_s if job is not None else 0.0,
            tiles_checkpointed=committed,
            tiles_skipped=len(completed),
            bytes_restored=bytes_restored,
            task_bytes_wire=task_bytes,
        )

    def _commit_checkpoints(self, loop: ParallelLoop, live: list[Tile],
                            job, costs_for) -> int:
        """Durably commit each completed tile's output (tile-granular
        checkpointing).  Only completions that landed *before* a pending
        driver death were flushed; later ones died with the driver.  Commits
        happen worker-side in parallel with the tail of the stage, so the
        charged wall time is the per-node share, not the serial sum."""
        if not self.checkpoint or job is None or self._storage is None:
            return 0
        clock, timeline = self.sc.clock, self.sc.timeline
        storage = self._storage
        committed = 0
        write_s = 0.0
        for tres in job.stats.results:
            split = tres.task.split
            tile = live[split]
            if self.death_at is not None and tres.end >= self.death_at:
                continue  # completed after the driver was already gone
            key = f"{self._key_prefix}/ckpt/{loop.loop_var}/{tile.index}.bin"
            if self.mode == ExecutionMode.FUNCTIONAL:
                payload = pickle.dumps(job.partitions[split])
                obj = self._storage_retry("PUT", storage.put, key, data=payload)
            else:
                obj = self._storage_retry("PUT", storage.put, key,
                                          size=costs_for(split).output_bytes)
            write_s += storage.cluster_write_time(obj.size)
            self._storage_bytes_written += obj.size
            if self.journal is not None:
                self.journal.record(
                    "tile_done", get_bus().current_correlation(), clock.now,
                    region=self.region.name, loop_var=loop.loop_var,
                    tile=tile.index, lo=tile.lo, hi=tile.hi, key=key,
                    checksum=obj.checksum, nbytes=obj.size, end=tres.end,
                )
            get_bus().emit(CheckpointCommit(
                time=clock.now, resource="cluster", region=self.region.name,
                loop_var=loop.loop_var, tile=tile.index, key=key,
                nbytes=obj.size, checksum=obj.checksum,
            ))
            committed += 1
        if committed:
            dt = write_s / max(1, self.sc.cluster.active_worker_nodes)
            timeline.record(Phase.STORAGE_WRITE, clock.now, clock.advance(dt),
                            resource="cluster", label=f"ckpt-{loop.loop_var}")
        return committed

    def _restore_checkpoints(self, loop: ParallelLoop,
                             completed: dict[int, TileCheckpoint]
                             ) -> tuple[list[list[Any]], int]:
        """Read committed tile outputs back onto the replacement driver.

        Returns (partitions to merge into reconstruction, bytes restored).
        Every read is checksum-verified by the store itself."""
        if not completed or self._storage is None:
            return [], 0
        clock, timeline = self.sc.clock, self.sc.timeline
        restored: list[list[Any]] = []
        total = 0
        for i in sorted(completed):
            ckpt = completed[i]
            if self.mode == ExecutionMode.FUNCTIONAL:
                payload = self._storage_retry("GET", self._storage.get_bytes,
                                              ckpt.key)
                restored.append(pickle.loads(payload))
                nbytes = len(payload)
            else:
                nbytes = self._storage_retry("HEAD", self._storage.size_of,
                                             ckpt.key)
                restored.append([])
            total += nbytes
            self._storage_bytes_read += nbytes
            dt = self._storage.cluster_read_time(nbytes)
            timeline.record(Phase.STORAGE_READ, clock.now, clock.advance(dt),
                            resource="driver",
                            label=f"restore-{loop.loop_var}-{i}")
        return restored, total

    def _tiles_for(self, loop: ParallelLoop, n: int, cores: int) -> list[Tile]:
        """Tiling policy: an explicit schedule chunk wins; otherwise
        Algorithm 1 — or its capacity-weighted variant under schedule mode
        ``weighted`` — or per-iteration tasks when tiling is disabled.
        Empty tiles are values, never tasks: they are dropped here."""
        if not self.tiling:
            return drop_empty_tiles(untiled(n))
        sched = loop.parallel_for.schedule
        if sched is not None and sched.chunk:
            return drop_empty_tiles(tile_by_chunk(n, sched.chunk))
        if sched is not None and sched.kind in ("dynamic", "guided"):
            # No chunk given: OpenMP's dynamic default is fine-grained; use
            # 4 waves per core as a Spark-friendly compromise.
            return drop_empty_tiles(tile_by_chunk(n, max(1, n // (cores * 4))))
        if self.schedule.weighted and n > 0:
            return drop_empty_tiles(
                tile_weighted(n, self.sc.cluster.slot_capacities()))
        return drop_empty_tiles(tile_iterations(n, cores))

    # ------------------------------------------------------------- elements
    def _element_for(self, tile: Tile, loop: ParallelLoop, partitioned_reads: list[str]):
        windows: dict[str, tuple[int, Any]] = {}
        for nm in partitioned_reads:
            lo, hi = partition_for_tile(loop.partitions[nm], tile, self.scalars)
            buf = self._buffer_info[nm]
            buf._check_range(lo, hi)
            if self.mode == ExecutionMode.FUNCTIONAL:
                arr = self._driver_arrays[nm]
                assert arr is not None
                windows[nm] = (lo, arr[lo:hi].copy())
            else:
                windows[nm] = (lo, None)
        return (tile.index, tile.lo, tile.hi, windows)

    def _elements_for(self, tiles: list[Tile], loop: ParallelLoop,
                      partitioned_reads: list[str]) -> Sequence[Any]:
        """RDD elements for every live tile.

        Modeled jobs never read the element payloads (no closures run, no
        sizes are measured), so the elements collapse to ``range(n)`` — only
        the window-bound *validation* survives, done in one vectorized pass
        so out-of-range partition clauses still raise the same errors as the
        scalar path.  Functional jobs keep the scalar path, which copies the
        real window data.
        """
        if self.mode == ExecutionMode.FUNCTIONAL:
            if not partitioned_reads:
                return [(t.index, t.lo, t.hi, {}) for t in tiles]
            return [self._element_for(t, loop, partitioned_reads) for t in tiles]
        if partitioned_reads:
            n = len(tiles)
            lo = np.fromiter((t.lo for t in tiles), dtype=np.int64, count=n)
            hi = np.fromiter((t.hi for t in tiles), dtype=np.int64, count=n)
            for nm in partitioned_reads:
                wlo, whi = partition_windows(loop.partitions[nm], lo, hi, self.scalars)
                self._check_windows(self._buffer_info[nm], wlo, whi)
        return range(len(tiles))

    def _make_map_fn(self, loop: ParallelLoop, partitioned_reads: list[str], handles):
        """The worker-side mapping function (Eq. 5): run the tile body over
        windows + broadcasts, return the partial outputs (Eq. 6)."""
        region = self.region
        scalars = self.scalars
        reductions = loop.reduction_vars
        buffer_info = self._buffer_info
        partitioned_set = set(partitioned_reads)

        def map_fn(elem):
            idx, lo, hi, windows = elem
            arrays: dict[str, Any] = {}
            outs: dict[str, tuple] = {}
            for nm in loop.reads:
                if nm in partitioned_set:
                    off, data = windows[nm]
                    arrays[nm] = OffsetArray(data, off)
                else:
                    arrays[nm] = handles[nm].value
            for nm in loop.writes:
                spec = loop.partitions.get(nm)
                if nm in reductions:
                    identity, _ = REDUCTION_OPS[reductions[nm]]
                    buf = np.full(buffer_info[nm].length, identity,
                                  dtype=buffer_info[nm].dtype)
                    arrays[nm] = buf
                    outs[nm] = ("red", 0, buf)
                elif spec is not None and spec.is_partitioned:
                    p_lo, p_hi = partition_for_tile(spec, Tile(idx, lo, hi), scalars)
                    if nm in arrays:  # tofrom window doubles as the output
                        view = arrays[nm]
                        outs[nm] = ("part", p_lo, view.local)
                    else:
                        local = np.zeros(p_hi - p_lo, dtype=buffer_info[nm].dtype)
                        arrays[nm] = OffsetArray(local, p_lo)
                        outs[nm] = ("part", p_lo, local)
                else:
                    if (region.map_type_of(nm) or MapType.FROM) == MapType.TOFROM \
                            and nm not in region.locals_:
                        raise CodegenError(
                            f"{nm!r} is an unpartitioned tofrom output: the bitor "
                            f"reconstruction (Eq. 8) cannot preserve its input value. "
                            f"Partition it or declare a reduction."
                        )
                    full = np.zeros(buffer_info[nm].length, dtype=buffer_info[nm].dtype)
                    arrays[nm] = full
                    outs[nm] = ("full", 0, full)
            loop.body(lo, hi, arrays, scalars)
            return (idx, lo, hi, outs)

        return map_fn

    # ----------------------------------------------------------------- costs
    def _make_costs_fn(self, loop, tiles, partitioned_reads, broadcast_reads):
        """Per-task costs for every live tile, computed in one numpy pass.

        Returns ``(costs_for, costs_arrays)``: the scalar closure (functional
        jobs, checkpoint commits) indexes into the same arrays the columnar
        :class:`TaskCostsArrays` hands to the driver, so both views are
        bit-identical to the historical per-tile evaluation — same float
        operation order, same window bounds, same wire rounding.
        """
        slots_per_node = self.sc.cluster.executors[0].task_slots
        n_nodes = self.sc.cluster.active_worker_nodes
        k = min(slots_per_node, max(1, -(-len(tiles) // n_nodes)))
        intensity = self.region.memory_intensity
        # Each node decompresses its copy of every broadcast once; the cost is
        # amortized over the tasks co-resident on the node.
        bcast_raw = sum(self._buffer_info[nm].nbytes for nm in broadcast_reads)
        bcast_share = bcast_raw / k if k else 0.0

        n = len(tiles)
        lo = np.fromiter((t.lo for t in tiles), dtype=np.int64, count=n)
        hi = np.fromiter((t.hi for t in tiles), dtype=np.int64, count=n)
        fpi = loop.flops_per_iter
        if fpi is None:
            flops = np.zeros(n, dtype=np.float64)
        elif callable(fpi):
            flops = np.fromiter(
                (loop.tile_flops(t.lo, t.hi, self.scalars) for t in tiles),
                dtype=np.float64, count=n)
        else:
            flops = float(fpi) * (hi - lo)
        compute_s, jni_s = self.compute_model.task_timing_vec(
            flops, tasks_on_node=k, slots_per_node=slots_per_node,
            intensity=intensity, task_indices=np.arange(n), jni_calls=1)

        in_raw = np.zeros(n, dtype=np.int64)
        in_wire = np.zeros(n, dtype=np.int64)
        for nm in partitioned_reads:
            buf = self._buffer_info[nm]
            wlo, whi = partition_windows(loop.partitions[nm], lo, hi, self.scalars)
            self._check_windows(buf, wlo, whi)
            raw = (whi - wlo) * buf.itemsize
            in_raw += raw
            in_wire += self._wire_bytes_vec(buf, raw)
        out_raw = np.zeros(n, dtype=np.int64)
        out_wire = np.zeros(n, dtype=np.int64)
        for nm in loop.writes:
            buf = self._buffer_info[nm]
            spec = loop.partitions.get(nm)
            if nm in loop.reduction_vars:
                raw = np.full(n, buf.nbytes, dtype=np.int64)
            elif spec is not None and spec.is_partitioned:
                wlo, whi = partition_windows(spec, lo, hi, self.scalars)
                self._check_windows(buf, wlo, whi)
                raw = (whi - wlo) * buf.itemsize
            else:
                # Full partial array per task (the paper's Eq. 6-8).
                raw = np.full(n, buf.nbytes, dtype=np.int64)
            out_raw += raw
            out_wire += self._wire_bytes_vec(buf, raw)

        arrays = TaskCostsArrays(
            compute_s=compute_s,
            jni_s=jni_s,
            decompress_s=(in_raw + bcast_share) / self.cal.worker_byte_bps,
            compress_s=out_raw / self.cal.worker_byte_bps,
            input_bytes=in_wire,
            output_bytes=out_wire,
        )

        def costs_for(split: int) -> TaskCosts:
            return TaskCosts(
                compute_s=float(arrays.compute_s[split]),
                jni_s=float(arrays.jni_s[split]),
                decompress_s=float(arrays.decompress_s[split]),
                compress_s=float(arrays.compress_s[split]),
                input_bytes=int(arrays.input_bytes[split]),
                output_bytes=int(arrays.output_bytes[split]),
            )

        return costs_for, arrays

    @staticmethod
    def _check_windows(buf: Buffer, lo: np.ndarray, hi: np.ndarray) -> None:
        """Vectorized ``Buffer._check_range`` over window arrays."""
        bad = (lo < 0) | (hi < lo) | (hi > buf.length)
        if np.any(bad):
            j = int(np.argmax(bad))
            buf._check_range(int(lo[j]), int(hi[j]))  # raises the scalar IndexError

    def _wire_bytes_vec(self, buf: Buffer, raw: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_wire_bytes`: same threshold-0 gzip rounding.

        ``int(round(x))`` and ``np.rint`` both round half to even, so each
        element matches ``CompressionModel.compressed_size(raw_j, 0)``.
        """
        if not self.intra_compression:
            return raw
        ratio = self._codec_for(buf).ratio
        return np.rint(raw * ratio).astype(np.int64)

    # ------------------------------------------------------------ reconstruct
    def _reconstruct(self, loop: ParallelLoop, partitions: list[list[Any]], tiles) -> None:
        clock, timeline = self.sc.clock, self.sc.timeline
        out_raw = 0
        for nm in loop.writes:
            buf = self._buffer_info[nm]
            spec = loop.partitions.get(nm)
            if spec is not None and spec.is_partitioned and nm not in loop.reduction_vars:
                out_raw += buf.nbytes
            else:
                out_raw += buf.nbytes * len(tiles)  # bitor/reduce over per-task fulls
        if self.mode == ExecutionMode.FUNCTIONAL:
            self._reconstruct_functional(loop, partitions)
        dt = out_raw / self.cal.driver_byte_bps
        timeline.record(Phase.RECONSTRUCT, clock.now, clock.advance(dt),
                        resource="driver", label=f"rebuild-{loop.loop_var}")

    def _reconstruct_functional(self, loop: ParallelLoop, partitions: list[list[Any]]) -> None:
        reductions = loop.reduction_vars
        originals = {
            nm: self._driver_arrays[nm].copy()  # type: ignore[union-attr]
            for nm in reductions
            if self._driver_arrays.get(nm) is not None
        }
        acc_red: dict[str, np.ndarray] = {}
        acc_full: dict[str, np.ndarray] = {}
        for part in partitions:
            for elem in part:
                _idx, _lo, _hi, outs = elem
                for nm, (kind, off, data) in outs.items():
                    target = self._driver_arrays[nm]
                    assert target is not None
                    if kind == "part":
                        target[off : off + len(data)] = data
                    elif kind == "red":
                        if nm not in acc_red:
                            acc_red[nm] = data.copy()
                        else:
                            _, combine = REDUCTION_OPS[reductions[nm]]
                            cur = acc_red[nm]
                            for j in range(cur.shape[0]):
                                cur[j] = combine(cur[j], data[j])
                    else:  # full: bitwise-or of disjointly-written partials (Eq. 8)
                        if nm not in acc_full:
                            acc_full[nm] = data.copy()
                        else:
                            a = acc_full[nm].view(np.uint8)
                            b = data.view(np.uint8)
                            np.bitwise_or(a, b, out=a)
        for nm, acc in acc_red.items():
            _, combine = REDUCTION_OPS[reductions[nm]]
            target = self._driver_arrays[nm]
            assert target is not None
            orig = originals.get(nm)
            for j in range(target.shape[0]):
                base = orig[j] if orig is not None else acc[j]
                target[j] = combine(base, acc[j]) if orig is not None else acc[j]
        for nm, acc in acc_full.items():
            target = self._driver_arrays[nm]
            assert target is not None
            target[:] = acc

    # -------------------------------------------------------------- utilities
    def _codec_for(self, buf: Buffer) -> CompressionModel:
        return model_for_density(buf.density)

    def _wire_bytes(self, buf: Buffer, raw: int) -> int:
        if not self.intra_compression:
            return raw
        return self._codec_for(buf).compressed_size(raw, 0)

    def _check_executor_memory(self, loop, tiles, partitioned_reads, broadcast_reads) -> None:
        """Worst-case resident bytes on one executor: every broadcast block
        plus one input window and one output buffer per concurrent task."""
        executor = self.sc.cluster.executors[0]
        slots = executor.task_slots
        heap = executor.heap_bytes
        bcast = sum(self._buffer_info[nm].nbytes for nm in broadcast_reads)
        n = len(tiles)
        lo = np.fromiter((t.lo for t in tiles), dtype=np.int64, count=n)
        hi = np.fromiter((t.hi for t in tiles), dtype=np.int64, count=n)
        task_bytes = np.zeros(n, dtype=np.int64)
        for nm in partitioned_reads:
            buf = self._buffer_info[nm]
            wlo, whi = partition_windows(loop.partitions[nm], lo, hi, self.scalars)
            self._check_windows(buf, wlo, whi)
            task_bytes += (whi - wlo) * buf.itemsize
        for nm in loop.writes:
            buf = self._buffer_info[nm]
            spec = loop.partitions.get(nm)
            if spec is not None and spec.is_partitioned and nm not in loop.reduction_vars:
                wlo, whi = partition_windows(spec, lo, hi, self.scalars)
                self._check_windows(buf, wlo, whi)
                task_bytes += (whi - wlo) * buf.itemsize
            else:
                task_bytes += buf.nbytes  # full partial / reduction buffer
        worst_task = int(task_bytes.max()) if n else 0
        needed = bcast + slots * worst_task
        if needed > heap:
            raise ExecutorOOMError(
                f"loop over {loop.loop_var!r} needs ~{needed} bytes resident per "
                f"executor (broadcasts {bcast} + {slots} slots x {worst_task} "
                f"task bytes) but spark.executor.memory grants only {heap}; "
                f"partition more variables or raise the executor heap"
            )

    def _check_jvm_limits(self, loop: ParallelLoop) -> None:
        for nm in dict.fromkeys((*loop.reads, *loop.writes)):
            check_jvm_array_limit(self._buffer_info[nm].nbytes, what=f"buffer {nm!r}")

    def driver_array(self, name: str) -> np.ndarray | None:
        """Driver-side value of a mapped/local variable (tests, plugin)."""
        return self._driver_arrays.get(name)
