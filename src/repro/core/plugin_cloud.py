"""The cloud-device plugin.

"The cloud-specific plugin is used to initialize the cluster, to compress and
transmit the offloaded data through the cloud file storage (HDFS or S3), and
to submit the Spark jobs through SSH connection."  This module is that
plugin against the simulated substrates:

* device setup from the configuration file (provider, storage, credentials);
* optional on-the-fly EC2 instance management (start on offload, stop after,
  billed per hour);
* one upload pipeline per mapped buffer: gzip above the minimal compression
  size, parallel WAN streams;
* job submission over SSH to the Spark driver, which runs the generated job
  (:class:`~repro.core.codegen.SparkJobGenerator`);
* result download + decompression back into the host arrays.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from typing import Mapping, Sequence, Union

import numpy as np

from repro.cloud.azure import AzureProvider
from repro.cloud.billing import BillingLedger
from repro.cloud.azure_storage import AzureBlobStore
from repro.cloud.ec2 import EC2Provider
from repro.cloud.hdfs import HDFSStore
from repro.cloud.network import NetworkModel
from repro.cloud.private import PrivateCloudProvider
from repro.cloud.provider import CloudProvider
from repro.cloud.credentials import Credentials
from repro.cloud.provision import ClusterSpec, ProvisionedCluster, provision_cluster
from repro.cloud.s3 import S3Store
from repro.cloud.ssh import SSHClient, SSHEndpoint, SSHError, CommandResult
from repro.cloud.storage import (
    CorruptObjectError,
    NoSuchObjectError,
    ObjectStore,
    StorageError,
    TransientStorageError,
)
from repro.core.api import TargetRegion
from repro.core.buffers import Buffer, ExecutionMode
from repro.core.codegen import SparkJobGenerator, SparkJobReport
from repro.core.config import CloudConfig
from repro.core.data_env import DataEnvReport, MapEntry
from repro.core.device import Device, DeviceError
from repro.core.omp_ast import MapType
from repro.core.report import OffloadReport
from repro.obs.events import (
    BreakerOpen,
    CacheHit,
    CorruptionDetected,
    MapDownload,
    MapUpload,
    Preemption,
    Recovery,
    ResidentHit,
    Resubmit,
    ResumeFromCheckpoint,
    SparkSubmit,
    TargetUpdate,
    get_bus,
)
from repro.core.staging_cache import CacheKey, StagingCache
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.comm import HostCommModel, TransferPlan
from repro.perfmodel.compression import gzip_compress, gzip_decompress, model_for_density
from repro.resilience import CircuitBreaker, OffloadJournal, RetryPolicy, retry_call
from repro.simtime.clock import SimClock
from repro.simtime.timeline import Phase
from repro.spark.cluster import SparkCluster, WorkerShape
from repro.spark.context import SparkContext
from repro.spark.faults import NO_FAULTS, FaultPlan
from repro.spark.schedule import ScheduleConfig
from repro.spark.scheduler import JobFailedError, SchedulerCosts


class CloudDevice(Device):
    """The cloud as an OpenMP target device."""

    def __init__(
        self,
        config: CloudConfig,
        *,
        physical_cores: int | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        clock: SimClock | None = None,
        storage: ObjectStore | None = None,
        provider: CloudProvider | None = None,
        reachable: bool = True,
        tiling: bool = True,
        parallel_streams: bool = True,
        intra_compression: bool = True,
        fault_plan: FaultPlan = NO_FAULTS,
        colocated: bool = False,
        schedule: ScheduleConfig | None = None,
        worker_speeds: Sequence[float] | None = None,
    ) -> None:
        """``colocated=True`` models running the application directly from the
        Spark driver node (Section III-D): staged data moves over the cluster
        fabric instead of the WAN, "removing the overhead of host-target
        communication"."""
        super().__init__(name="CLOUD")
        self.colocated = colocated
        self.config = config
        self.cal = calibration
        self.clock = clock if clock is not None else SimClock()
        self.network = NetworkModel(calibration.wan_link(), calibration.lan_link())
        self.physical_cores = (
            physical_cores
            if physical_cores is not None
            else config.n_workers * calibration.worker_vcpus // 2
        )
        #: Adaptive execution policy: an explicit argument wins, otherwise
        #: the config's [Schedule] section (static/off by default).
        self.schedule = schedule if schedule is not None else config.schedule()
        self.cluster = SparkCluster.for_physical_cores(
            self.physical_cores,
            n_workers=config.n_workers,
            shape=WorkerShape(vcpus=calibration.worker_vcpus),
            network=self.network,
            clock=self.clock,
            worker_speeds=worker_speeds,
        )
        self.sc = SparkContext(
            cluster=self.cluster,
            scheduler_costs=SchedulerCosts(task_launch_s=calibration.task_launch_s),
            fault_plan=fault_plan,
        )
        self.storage = storage if storage is not None else self._storage_from_config()
        # Storage events carry this device's simulated time.
        self.storage.clock = self.clock
        self.comm = HostCommModel(
            calibration, network=self.network,
            compress=config.compression, parallel_streams=parallel_streams,
        )
        self.tiling = tiling
        self.intra_compression = intra_compression
        self.fault_plan = fault_plan
        self._reachable = reachable
        self._offload_seq = itertools.count(1)
        self._provisioned: ProvisionedCluster | None = None
        self._provider = provider
        self.endpoint = SSHEndpoint(
            hostname=config.spark_driver,
            authorized_users={config.spark_user},
        )
        self._pending: dict[str, object] = {}
        #: Host-target data cache (paper future work; enabled via config).
        self.stage_cache = StagingCache(enabled=config.cache)
        #: One uniform policy for every retryable operation (storage PUT/GET/
        #: HEAD, SSH connects, provisioning); backoff is simulated time.
        self.retry_policy: RetryPolicy = config.retry_policy()
        #: Trips open after K consecutive offload failures; while open,
        #: :meth:`is_available` is False and the runtime degrades to the host.
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_after_s=config.breaker_reset_s,
        )
        # Offload-level fault injection armed from the (immutable) plan.
        self._ssh_faults_left = fault_plan.ssh_connect_failures
        self._submit_faults_left = fault_plan.spark_submit_failures
        # Backoff accumulated by concurrent staging threads, flushed to the
        # simulated clock once staging completes.
        self._pending_backoff_s = 0.0
        self._pending_retries = 0
        self._backoff_lock = threading.Lock()
        # --- Durable recovery (docs/RESILIENCE.md) ---
        #: Driver-loss recovery policy: "none" (host fallback), "restart"
        #: (journal-driven driver replacement, full resubmission) or
        #: "resume" (+ per-tile checkpoints, only unfinished tiles rerun).
        self.recovery = config.recovery
        #: Write-ahead offload journal; replayed after a driver loss to
        #: reconstruct completed tiles and the data-environment table.
        self.journal = OffloadJournal()
        #: A standby driver took over after a loss; the dead driver's fault
        #: no longer applies to later submissions.
        self._driver_replaced = False
        #: Final values of intermediates elided by fused jobs
        #: (docs/TASKGRAPH.md): alloc-resident arrays whose materialization
        #: never reached storage.  A later offload that maps one as input
        #: stages these values instead of the (pristine) host array.
        self._fusion_spill: dict[str, np.ndarray] = {}
        #: Checksums of host-staged inputs by storage key: the evidence that
        #: the "implicit checkpoint" a resubmission reuses is still intact.
        self._staged_checksums: dict[str, str] = {}
        self._checksum_lock = threading.Lock()
        #: Corrupt reads already attributed to a finished offload's report
        #: (the storage's detector counts globally; reports take deltas).
        self._corruptions_attributed = 0
        for substring, count in fault_plan.corrupt_keys.items():
            self.storage.arm_corruption(substring, count)

    # --------------------------------------------------- legacy retry knobs
    @property
    def storage_retries(self) -> int:
        """Attempts per storage operation (compat alias for the policy)."""
        return self.retry_policy.max_attempts

    @storage_retries.setter
    def storage_retries(self, attempts: int) -> None:
        self.retry_policy = dataclasses.replace(
            self.retry_policy, max_attempts=int(attempts))

    @property
    def retry_backoff_s(self) -> float:
        """Base backoff delay (compat alias for the policy)."""
        return self.retry_policy.base_delay_s

    @retry_backoff_s.setter
    def retry_backoff_s(self, delay: float) -> None:
        self.retry_policy = dataclasses.replace(
            self.retry_policy, base_delay_s=float(delay))

    # --------------------------------------------------------------- set-up
    def _storage_from_config(self) -> ObjectStore:
        cfg = self.config
        if cfg.storage_kind == "s3":
            return S3Store(cfg.storage_name, credentials=cfg.credentials)
        if cfg.storage_kind == "hdfs":
            return HDFSStore(f"hdfs://{cfg.spark_driver}:9000", credentials=cfg.credentials)
        return AzureBlobStore("ompcloudacct", cfg.storage_name, credentials=cfg.credentials)

    def _provider_from_config(self) -> CloudProvider:
        cfg = self.config
        if cfg.provider == "ec2":
            return EC2Provider(credentials=cfg.credentials)
        if cfg.provider == "azure":
            return AzureProvider(credentials=cfg.credentials)
        return PrivateCloudProvider(credentials=cfg.credentials,
                                    machine_count=cfg.n_workers + 1)

    def _do_initialize(self) -> None:
        # Validate credentials against the storage service up front; a failure
        # leaves the device unavailable (host fallback) rather than raising.
        try:
            self.storage.check_access(self.config.credentials)
        except StorageError:
            return
        if self.config.manage_instances and self._provisioned is None:
            if self._provider is None:
                self._provider = self._provider_from_config()
            spec = ClusterSpec(
                instance_type=self.config.instance_type,
                n_workers=self.config.n_workers,
                authorized_users=(self.config.spark_user,),
            )

            def on_retry(failure: int, delay: float, exc: BaseException) -> None:
                self.sc.log.warn(self.clock.now, "CloudPlugin",
                                 f"cluster provisioning failed ({exc}); "
                                 f"retrying in {delay:.1f}s")
                self.clock.advance(delay)

            from repro.cloud.provider import ProviderError

            self._provisioned = retry_call(
                self.retry_policy, provision_cluster,
                self._provider, spec, self.clock,
                driver_hostname=self.config.spark_driver,
                retry_on=(ProviderError,), op_name="provision",
                on_retry=on_retry, now=lambda: self.clock.now,
            )
            self.endpoint = self._provisioned.ssh_endpoint

    @property
    def billing_ledger(self) -> BillingLedger | None:
        """The provider's pay-as-you-go ledger, when this device manages
        instances (``manage_instances = true``); None otherwise.  The
        critical-path profiler joins its line items against offload phases
        for dollar attribution."""
        return self._provider.ledger if self._provider is not None else None

    def is_available(self) -> bool:
        if not self._reachable:
            return False
        if self.breaker.is_open(self.clock.now):
            return False
        try:
            self.storage.check_access(self.config.credentials)
        except StorageError:
            return False
        return True

    # ------------------------------------------------------------ data moves
    def data_begin(self, buffers: Mapping[str, Buffer], region: TargetRegion,
                   mode: ExecutionMode) -> None:
        seq = next(self._offload_seq)
        report = OffloadReport(region_name=region.name, device_name=self.name,
                               mode=mode.value)
        timeline = report.timeline
        # Registered up front so a failed data_begin can still be aborted
        # (and its retry accounting preserved) by the runtime.
        self._pending = {"report": report}

        mgmt_start = self.clock.now
        if self.config.manage_instances:
            self._start_instances()
            if self.clock.now > mgmt_start:
                # Boot time is wall time the user waits through; span it on
                # the shared Spark timeline (like the SSH handshake) so every
                # report of a chained environment covers it gap-free.
                self.sc.timeline.record(Phase.CLUSTER_INIT, mgmt_start,
                                        self.clock.now, resource="host",
                                        label="instance-boot")
        report.instance_mgmt_s += self.clock.now - mgmt_start

        key_prefix = f"{region.name}/{seq}"
        input_keys: dict[str, str] = {}
        plans: list[TransferPlan] = []
        to_stage: list[tuple[Buffer, str, CacheKey | None]] = []
        begun: list[str] = []
        self._pending["begun"] = begun
        if self.recovery != "none":
            # Crash-consistent data environments: live mappings that lost
            # their device handle re-adopt it from the journal when the
            # recorded object still checks out, instead of re-staging.
            self._restore_env_handles()
        for name in region.input_names:
            buf = buffers[name]
            entry = self.env.entry_or_none(name)
            if entry is not None and entry.device_handle is not None:
                # Resident in an enclosing `target data` environment: the
                # staged object (or a previous target's output, left in
                # storage) is reused in place — no upload, no cache probe.
                self.env.begin(buf, region.map_type_of(name) or MapType.TO)
                begun.append(name)
                input_keys[name] = entry.device_handle
                report.resident_hits += 1
                report.bytes_not_retransferred += buf.nbytes
                get_bus().emit(ResidentHit(time=self.clock.now,
                                           resource=self.name,
                                           device=self.name, buffer=name,
                                           bytes_saved=buf.nbytes))
                continue
            self.env.begin(buf, region.map_type_of(name) or MapType.TO)
            begun.append(name)
            # A spilled intermediate's content is not the host array's, so
            # a host-bytes cache key would alias stale content: skip cache.
            if (self.stage_cache.enabled and name not in self._fusion_spill
                    and (mode == ExecutionMode.FUNCTIONAL
                         or buf.is_virtual)):
                ckey = CacheKey.for_buffer(buf)
                cached = self.stage_cache.lookup(ckey)
                with self._backoff_lock:
                    probe_retries_before = self._pending_retries
                try:
                    cache_hit = cached is not None and self._with_retries(
                        "EXISTS", self.storage.exists, cached)
                except TransientStorageError:
                    cache_hit = False  # degrade to a re-stage, not a failure
                if cache_hit:
                    # Already staged with identical content: reuse in place.
                    # Retried EXISTS probes billed real storage round-trips,
                    # so their wire cost is netted out of the saved bytes.
                    assert cached is not None
                    with self._backoff_lock:
                        probe_retries = (self._pending_retries
                                         - probe_retries_before)
                    probe_cost = probe_retries * len(cached.encode("utf-8"))
                    saved = max(0, buf.nbytes - probe_cost)
                    input_keys[name] = cached
                    self.stage_cache.credit_saved(buf.nbytes,
                                                  probe_cost_bytes=probe_cost)
                    report.cache_hits += 1
                    report.cache_bytes_saved += saved
                    get_bus().emit(CacheHit(time=self.clock.now,
                                            resource=self.storage.name,
                                            buffer=name,
                                            bytes_saved=saved))
                    continue
            else:
                ckey = None
            compressed = (self.config.compression
                          and buf.nbytes >= self.config.min_compress_size)
            key = f"{key_prefix}/in/{name}.bin" + (".gz" if compressed else "")
            input_keys[name] = key
            plans.append(TransferPlan(name, buf.nbytes, model_for_density(buf.density)))
            to_stage.append((buf, key, ckey))
        try:
            wire_sizes = self._stage_inputs(to_stage, mode)
        except TransientStorageError as e:
            self._charge_retry_backoff(report)
            self._record_breaker_failure()
            raise DeviceError(
                f"staging inputs to {self.storage.name} failed after "
                f"{self.retry_policy.max_attempts} attempt(s): {e}"
            ) from e
        self._charge_retry_backoff(report)
        # Persistent entries that had no device copy yet (alloc-mapped, or
        # invalidated by a fallback) were staged above; remember the key so
        # the *next* target inside the environment reuses it in place.
        for name, key in input_keys.items():
            entry = self.env.entry_or_none(name)
            if (entry is not None and entry.ref_count > 1
                    and entry.device_handle is None):
                entry.device_handle = key
                entry.dirty = False
        for name in region.output_names:
            if name not in input_keys:
                self.env.begin(buffers[name], region.map_type_of(name) or MapType.FROM)
                begun.append(name)

        if plans:
            cost = self.comm.upload(plans)
            # Wire sizes are the *actual* staged sizes (real gzip output in
            # functional mode), not the model's estimate.  A colocated host
            # moves them over the cluster fabric instead of the WAN.
            link = self.network.lan if self.colocated else self.network.wan
            transfer_s = (
                link.parallel_transfer_time(wire_sizes)
                if self.comm.parallel_streams
                else link.serial_transfer_time(wire_sizes)
            )
            t0 = self.clock.now
            if cost.compress_s > 0:
                timeline.record(Phase.HOST_COMPRESS, t0, self.clock.advance(cost.compress_s),
                                resource="host")
            t1 = self.clock.now
            timeline.record(Phase.HOST_UPLOAD, t1, self.clock.advance(transfer_s),
                            resource="host")
            report.host_comm_up_s = self.clock.now - t0
            report.bytes_up_raw = sum(p.nbytes for p in plans)
            report.bytes_up_wire = sum(wire_sizes)
            bus = get_bus()
            for plan, wire in zip(plans, wire_sizes):
                bus.emit(MapUpload(time=self.clock.now, resource="host",
                                   buffer=plan.name, bytes_raw=plan.nbytes,
                                   bytes_wire=wire, start=t1,
                                   end=self.clock.now))

        self._pending = {
            "report": report,
            "input_keys": input_keys,
            "key_prefix": key_prefix,
            "buffers": dict(buffers),
            "begun": begun,
        }

    def _record_breaker_failure(self) -> None:
        """Count one offload-level failure; announce a fresh breaker trip."""
        was_open = self.breaker.is_open(self.clock.now)
        self.breaker.record_failure(self.clock.now)
        if not was_open and self.breaker.is_open(self.clock.now):
            get_bus().emit(BreakerOpen(
                time=self.clock.now, resource=self.name, device=self.name,
                consecutive_failures=self.breaker.consecutive_failures))

    def _with_retries(self, op_name: str, fn, *args, **kwargs):
        """Run a storage operation under :attr:`retry_policy` (thread-safe;
        the backoff is charged to the simulated clock once staging
        completes, via :meth:`_charge_retry_backoff`)."""

        def on_retry(failure: int, delay: float, exc: BaseException) -> None:
            with self._backoff_lock:
                self._pending_backoff_s += delay
                self._pending_retries += 1
            self.sc.log.warn(self.clock.now, "CloudPlugin",
                             f"{op_name} failed transiently ({exc}); "
                             f"retrying in {delay:.1f}s")

        return retry_call(self.retry_policy, fn, *args,
                          retry_on=(TransientStorageError,),
                          op_name=op_name, on_retry=on_retry,
                          now=lambda: self.clock.now, **kwargs)

    def _charge_retry_backoff(self, report: OffloadReport | None = None) -> None:
        """Flush accumulated backoff to the simulated clock and, when a
        report is given, into its observability counters + timeline."""
        with self._backoff_lock:
            delay, self._pending_backoff_s = self._pending_backoff_s, 0.0
            n_retries, self._pending_retries = self._pending_retries, 0
        if delay > 0.0:
            t0 = self.clock.now
            self.clock.advance(delay)
            if report is not None:
                report.timeline.record(Phase.RETRY_BACKOFF, t0, self.clock.now,
                                       resource="host", label="storage-backoff")
        if report is not None:
            report.retries += n_retries
            report.backoff_s += delay

    def _flush_corruptions(self, report: OffloadReport | None) -> None:
        """Attribute corrupt reads the storage detected since the last flush
        to ``report`` and journal them.  The storage layer counts every
        failed verification (host GETs and worker-side reads alike); the
        plugin takes deltas so each detection lands in exactly one report."""
        detected = self.storage.corruption_count - self._corruptions_attributed
        if detected <= 0:
            return
        self._corruptions_attributed = self.storage.corruption_count
        self.journal.record("corruption", get_bus().current_correlation(),
                            time=self.clock.now, count=detected)
        if report is not None:
            report.corruption_detected += detected

    def _stage_inputs(
        self, to_stage: list[tuple[Buffer, str, "CacheKey | None"]], mode: ExecutionMode
    ) -> list[int]:
        """Stage all buffers — really concurrently in functional mode, one
        thread per buffer, as the paper's plugin does ("automatically creates
        a new thread for transmitting each offloaded data")."""
        if not to_stage:
            return []
        if mode == ExecutionMode.FUNCTIONAL and len(to_stage) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(to_stage)) as pool:
                sizes = list(pool.map(
                    lambda item: self._stage_input(item[0], item[1], mode), to_stage
                ))
        else:
            sizes = [self._stage_input(buf, key, mode) for buf, key, _ in to_stage]
        for (buf, key, ckey), _size in zip(to_stage, sizes):
            if ckey is not None:
                self.stage_cache.record(ckey, key)
        return sizes

    def _stage_input(self, buf: Buffer, key: str, mode: ExecutionMode) -> int:
        codec = model_for_density(buf.density)
        if mode == ExecutionMode.FUNCTIONAL:
            # A fusion-elided intermediate has its live value in the spill,
            # not in the (never written-back) host array.
            spilled = self._fusion_spill.get(buf.name)
            if spilled is not None:
                src = (spilled if spilled.flags["C_CONTIGUOUS"]
                       else np.ascontiguousarray(spilled))
                view = memoryview(src).cast("B").toreadonly()
            else:
                view = buf.payload_view()
            # Compress straight off the zero-copy view; the old
            # ``tobytes()`` staged a full intermediate copy of every
            # payload.  Storage materialises its own bytes on PUT, so the
            # stored object never aliases the live host array.
            payload: "bytes | memoryview" = view
            if self.config.compression and buf.nbytes >= self.config.min_compress_size:
                payload = gzip_compress(view)
            obj = self._with_retries("PUT", self.storage.put, key, data=payload,
                                     credentials=self.config.credentials)
            with self._checksum_lock:
                self._staged_checksums[key] = obj.checksum
            return len(payload)
        wire = (
            codec.compressed_size(buf.nbytes, self.config.min_compress_size)
            if self.config.compression
            else buf.nbytes
        )
        obj = self._with_retries("PUT", self.storage.put, key, size=wire,
                                 credentials=self.config.credentials)
        with self._checksum_lock:
            self._staged_checksums[key] = obj.checksum
        return wire

    def data_end(self, buffers: Mapping[str, Buffer], region: TargetRegion,
                 mode: ExecutionMode) -> None:
        report: OffloadReport = self._pending["report"]  # type: ignore[assignment]
        out_keys: dict[str, str] = self._pending.get("output_keys", {})  # type: ignore[assignment]
        timeline = report.timeline

        plans = []
        wire_sizes = []
        downloads: list[tuple[str, int, int]] = []
        try:
            for name in region.output_names:
                buf = buffers[name]
                key = out_keys.get(name)
                entry = self.env.entry_or_none(name)
                if (entry is not None and entry.ref_count > 1
                        and key is not None):
                    # Enclosing `target data` environment: the output stays on
                    # the device (in storage) until `exit data` or an explicit
                    # `target update from`; no download here.
                    entry.device_handle = key
                    entry.dirty = True
                    continue
                plans.append(TransferPlan(name, buf.nbytes, model_for_density(buf.density)))
                if key is None:
                    continue
                wire = self._with_retries("HEAD", self.storage.size_of, key)
                wire_sizes.append(wire)
                downloads.append((name, buf.nbytes, wire))
                if mode == ExecutionMode.FUNCTIONAL:
                    payload = self._with_retries(
                        "GET", self.storage.get_bytes, key,
                        credentials=self.config.credentials)
                    self._charge_retry_backoff(report)
                    if key.endswith(".gz"):
                        payload = gzip_decompress(payload)
                    buf.require_data()[:] = np.frombuffer(payload, dtype=buf.dtype)
                    if self.stage_cache.enabled:
                        # The result now lives both on the host and in storage;
                        # re-offloading it later is a cache hit (no re-upload).
                        self.stage_cache.record(CacheKey.for_bytes(payload), key)
        except TransientStorageError as e:
            self._charge_retry_backoff(report)
            self._record_breaker_failure()
            raise DeviceError(
                f"downloading results from {self.storage.name} failed after "
                f"{self.retry_policy.max_attempts} attempt(s): {e}"
            ) from e
        self._charge_retry_backoff(report)

        if plans and wire_sizes:
            cost = self.comm.download(plans)
            link = self.network.lan if self.colocated else self.network.wan
            transfer_s = (
                link.parallel_transfer_time(wire_sizes)
                if self.comm.parallel_streams
                else link.serial_transfer_time(wire_sizes)
            )
            t0 = self.clock.now
            timeline.record(Phase.HOST_DOWNLOAD, t0, self.clock.advance(transfer_s),
                            resource="host")
            if cost.decompress_s > 0:
                timeline.record(Phase.HOST_DECOMPRESS, self.clock.now,
                                self.clock.advance(cost.decompress_s), resource="host")
            report.host_comm_down_s = self.clock.now - t0
            report.bytes_down_raw = sum(p.nbytes for p in plans)
            report.bytes_down_wire = sum(wire_sizes)
            bus = get_bus()
            for name, raw, wire in downloads:
                bus.emit(MapDownload(time=self.clock.now, resource="host",
                                     buffer=name, bytes_raw=raw,
                                     bytes_wire=wire, start=t0,
                                     end=self.clock.now))

        # Consume the list: if execute() failed, data_end runs in the
        # runtime's finally and abort() follows — popping here keeps the two
        # from releasing the same references twice.
        for name in self._pending.pop("begun", ()):  # type: ignore[union-attr]
            if self.env.is_mapped(name):
                self.env.end(name)

        mgmt_start = self.clock.now
        if self.config.manage_instances and self._provisioned is not None:
            billed_before = self._provider.ledger.total_usd() if self._provider else 0.0
            self._provisioned.stop_all(self.clock.now)
            if self._provider is not None:
                # Accumulate: a mid-run spot replacement may already have
                # billed its reclaimed predecessor.
                report.billed_usd += self._provider.ledger.total_usd() - billed_before
        report.instance_mgmt_s += self.clock.now - mgmt_start
        self._flush_corruptions(report)
        self._pending["done"] = True

    def _start_instances(self) -> None:
        if self._provisioned is None:
            return
        up = self._provisioned.start_all(self.clock.now)
        self.clock.advance_to(max(up, self.clock.now))

    # ------------------------------------------- persistent data environments
    def enter_data(self, buffers: Mapping[str, Buffer],
                   map_types: Mapping[str, MapType], mode: ExecutionMode,
                   report: DataEnvReport) -> None:
        """``__tgt_target_data_begin``: stage ``to``/``tofrom`` buffers into
        cloud storage once and pin them there (persistent map entries).
        ``alloc``/``from`` buffers get an entry without a device copy; the
        first target that produces them leaves its output key behind."""
        seq = next(self._offload_seq)
        key_prefix = f"env/{seq}"
        bus = get_bus()
        plans: list[TransferPlan] = []
        to_stage: list[tuple[Buffer, str, CacheKey | None]] = []
        staged_entries: list[tuple[MapEntry, str]] = []
        begun: list[str] = []
        for name, buf in buffers.items():
            existing = self.env.entry_or_none(name)
            if existing is not None:
                # Nested environment over an already-present variable: bump
                # the reference count, reuse the device copy in place.
                self.env.begin(buf, map_types[name])
                begun.append(name)
                report.resident_hits += 1
                if existing.device_handle is not None:
                    bus.emit(ResidentHit(time=self.clock.now,
                                         resource=self.name, device=self.name,
                                         buffer=name, bytes_saved=buf.nbytes))
                continue
            entry = self.env.begin(buf, map_types[name], persistent=True)
            begun.append(name)
            if not map_types[name].is_input:
                continue  # alloc / from: device space only, no motion
            compressed = (self.config.compression
                          and buf.nbytes >= self.config.min_compress_size)
            key = f"{key_prefix}/{name}.bin" + (".gz" if compressed else "")
            plans.append(TransferPlan(name, buf.nbytes,
                                      model_for_density(buf.density)))
            to_stage.append((buf, key, None))
            staged_entries.append((entry, key))
        try:
            wire_sizes = self._stage_inputs(to_stage, mode)
        except TransientStorageError as e:
            for name in begun:  # unwind: keep refcounts balanced
                if self.env.is_mapped(name):
                    self.env.end(name)
            self._charge_retry_backoff(report)
            self._record_breaker_failure()
            raise DeviceError(
                f"staging `target data` inputs to {self.storage.name} failed "
                f"after {self.retry_policy.max_attempts} attempt(s): {e}"
            ) from e
        self._charge_retry_backoff(report)
        for entry, key in staged_entries:
            entry.device_handle = key
            entry.dirty = False
            self.journal.record("env_enter", bus.current_correlation(),
                                time=self.clock.now,
                                name=entry.buffer.name, key=key,
                                checksum=self._staged_checksums.get(key, ""))
        if plans:
            cost = self.comm.upload(plans)
            link = self.network.lan if self.colocated else self.network.wan
            transfer_s = (
                link.parallel_transfer_time(wire_sizes)
                if self.comm.parallel_streams
                else link.serial_transfer_time(wire_sizes)
            )
            t0 = self.clock.now
            report.timeline.record(
                Phase.ENV_ENTER, t0,
                self.clock.advance(cost.compress_s + transfer_s),
                resource="host")
            report.enter_s += self.clock.now - t0
            report.bytes_up_raw += sum(p.nbytes for p in plans)
            report.bytes_up_wire += sum(wire_sizes)
            for plan, wire in zip(plans, wire_sizes):
                bus.emit(MapUpload(time=self.clock.now, resource="host",
                                   buffer=plan.name, bytes_raw=plan.nbytes,
                                   bytes_wire=wire, start=t0,
                                   end=self.clock.now))

    def exit_data(self, names: Sequence[str], mode: ExecutionMode,
                  report: DataEnvReport) -> None:
        """``__tgt_target_data_end``: drop one reference per name; entries
        reaching zero download their dirty outputs back into the host arrays
        and release the storage objects (logically — the simulated store has
        no delete cost worth modeling)."""
        bus = get_bus()
        # References settle first (so a failed download cannot unbalance the
        # mapping table), transfers follow.
        released: list[MapEntry] = []
        for name in names:
            if not self.env.is_mapped(name):
                continue
            entry = self.env.end(name)
            if entry is None:
                continue  # still referenced by an enclosing environment
            self.journal.record("env_exit", bus.current_correlation(),
                                time=self.clock.now, name=name)
            # OpenMP copies `from`/`tofrom` items out unconditionally at the
            # environment's end; here that needs a device copy to exist
            # (alloc-mapped entries nothing ever wrote have none).
            if entry.device_handle is None or not entry.map_type.is_output:
                continue
            released.append(entry)
        plans: list[TransferPlan] = []
        wire_sizes: list[int] = []
        downloads: list[tuple[str, int, int]] = []
        try:
            for entry in released:
                key: str = entry.device_handle
                buf = entry.buffer
                wire = self._with_retries("HEAD", self.storage.size_of, key)
                plans.append(TransferPlan(buf.name, buf.nbytes,
                                          model_for_density(buf.density)))
                wire_sizes.append(wire)
                downloads.append((buf.name, buf.nbytes, wire))
                if mode == ExecutionMode.FUNCTIONAL and not buf.is_virtual:
                    payload = self._with_retries(
                        "GET", self.storage.get_bytes, key,
                        credentials=self.config.credentials)
                    if key.endswith(".gz"):
                        payload = gzip_decompress(payload)
                    buf.require_data()[:] = np.frombuffer(payload,
                                                          dtype=buf.dtype)
        except TransientStorageError as e:
            self._charge_retry_backoff(report)
            self._record_breaker_failure()
            raise DeviceError(
                f"downloading `target data` outputs from {self.storage.name} "
                f"failed after {self.retry_policy.max_attempts} attempt(s): {e}"
            ) from e
        self._charge_retry_backoff(report)
        if plans:
            cost = self.comm.download(plans)
            link = self.network.lan if self.colocated else self.network.wan
            transfer_s = (
                link.parallel_transfer_time(wire_sizes)
                if self.comm.parallel_streams
                else link.serial_transfer_time(wire_sizes)
            )
            t0 = self.clock.now
            report.timeline.record(
                Phase.ENV_EXIT, t0,
                self.clock.advance(transfer_s + cost.decompress_s),
                resource="host")
            report.exit_s += self.clock.now - t0
            report.bytes_down_raw += sum(p.nbytes for p in plans)
            report.bytes_down_wire += sum(wire_sizes)
            for name, raw, wire in downloads:
                bus.emit(MapDownload(time=self.clock.now, resource="host",
                                     buffer=name, bytes_raw=raw,
                                     bytes_wire=wire, start=t0,
                                     end=self.clock.now))

    def update_data(self, to_names: Sequence[str], from_names: Sequence[str],
                    mode: ExecutionMode, report: DataEnvReport) -> None:
        """``__tgt_target_data_update``: re-stage host content over the
        device copy (``to``) or download the device copy into the host array
        (``from``).  Absent names are ignored (OpenMP 5.x motion-clause
        semantics)."""
        bus = get_bus()
        seq = next(self._offload_seq)
        # --- host -> device -------------------------------------------------
        plans: list[TransferPlan] = []
        to_stage: list[tuple[Buffer, str, CacheKey | None]] = []
        staged_entries: list[tuple[MapEntry, str]] = []
        for name in to_names:
            entry = self.env.entry_or_none(name)
            if entry is None:
                continue
            buf = entry.buffer
            compressed = (self.config.compression
                          and buf.nbytes >= self.config.min_compress_size)
            # Always a fresh key: the old handle may be a content-addressed
            # cache object whose hash would no longer match its content.
            key = (f"env/{seq}/update/{name}.bin"
                   + (".gz" if compressed else ""))
            plans.append(TransferPlan(name, buf.nbytes,
                                      model_for_density(buf.density)))
            to_stage.append((buf, key, None))
            staged_entries.append((entry, key))
        try:
            wire_sizes = self._stage_inputs(to_stage, mode)
        except TransientStorageError as e:
            self._charge_retry_backoff(report)
            self._record_breaker_failure()
            raise DeviceError(
                f"`target update to` staging to {self.storage.name} failed "
                f"after {self.retry_policy.max_attempts} attempt(s): {e}"
            ) from e
        self._charge_retry_backoff(report)
        for entry, key in staged_entries:
            entry.device_handle = key
            entry.dirty = False
            self.journal.record("env_update", bus.current_correlation(),
                                time=self.clock.now,
                                name=entry.buffer.name, key=key,
                                direction="to",
                                checksum=self._staged_checksums.get(key, ""))
        if plans:
            cost = self.comm.upload(plans)
            link = self.network.lan if self.colocated else self.network.wan
            transfer_s = (
                link.parallel_transfer_time(wire_sizes)
                if self.comm.parallel_streams
                else link.serial_transfer_time(wire_sizes)
            )
            t0 = self.clock.now
            report.timeline.record(
                Phase.TARGET_UPDATE, t0,
                self.clock.advance(cost.compress_s + transfer_s),
                resource="host", label="update-to")
            report.update_s += self.clock.now - t0
            report.bytes_up_raw += sum(p.nbytes for p in plans)
            report.bytes_up_wire += sum(wire_sizes)
            for plan, wire in zip(plans, wire_sizes):
                report.updates_to += 1
                bus.emit(TargetUpdate(time=self.clock.now, resource=self.name,
                                      device=self.name, buffer=plan.name,
                                      direction="to", bytes_raw=plan.nbytes,
                                      bytes_wire=wire))
        # --- device -> host -------------------------------------------------
        plans = []
        wire_sizes = []
        downloads = []
        try:
            for name in from_names:
                entry = self.env.entry_or_none(name)
                if entry is None or entry.device_handle is None:
                    continue
                key = entry.device_handle
                buf = entry.buffer
                wire = self._with_retries("HEAD", self.storage.size_of, key)
                plans.append(TransferPlan(name, buf.nbytes,
                                          model_for_density(buf.density)))
                wire_sizes.append(wire)
                downloads.append((entry, buf.nbytes, wire))
                if mode == ExecutionMode.FUNCTIONAL and not buf.is_virtual:
                    payload = self._with_retries(
                        "GET", self.storage.get_bytes, key,
                        credentials=self.config.credentials)
                    if key.endswith(".gz"):
                        payload = gzip_decompress(payload)
                    buf.require_data()[:] = np.frombuffer(payload,
                                                          dtype=buf.dtype)
        except TransientStorageError as e:
            self._charge_retry_backoff(report)
            self._record_breaker_failure()
            raise DeviceError(
                f"`target update from` download from {self.storage.name} "
                f"failed after {self.retry_policy.max_attempts} attempt(s): {e}"
            ) from e
        self._charge_retry_backoff(report)
        if plans:
            cost = self.comm.download(plans)
            link = self.network.lan if self.colocated else self.network.wan
            transfer_s = (
                link.parallel_transfer_time(wire_sizes)
                if self.comm.parallel_streams
                else link.serial_transfer_time(wire_sizes)
            )
            t0 = self.clock.now
            report.timeline.record(
                Phase.TARGET_UPDATE, t0,
                self.clock.advance(transfer_s + cost.decompress_s),
                resource="host", label="update-from")
            report.update_s += self.clock.now - t0
            report.bytes_down_raw += sum(p.nbytes for p in plans)
            report.bytes_down_wire += sum(wire_sizes)
            for entry, raw, wire in downloads:
                entry.dirty = False  # host and device agree again
                self.journal.record("env_sync", bus.current_correlation(),
                                    time=self.clock.now,
                                    name=entry.buffer.name,
                                    key=entry.device_handle)
                report.updates_from += 1
                bus.emit(TargetUpdate(time=self.clock.now, resource=self.name,
                                      device=self.name,
                                      buffer=entry.buffer.name,
                                      direction="from", bytes_raw=raw,
                                      bytes_wire=wire))

    def invalidate_data_env(self) -> None:
        """After a failed offload the staged objects can no longer be
        trusted.  Dirty copies are synced home best-effort (so the host
        rerun — and any later `exit data` — sees current data), then every
        handle is dropped: the next target inside the environment re-stages
        from the host.  Reference counts are untouched.

        The sync keys on ``dirty`` alone, not the map type: once a kernel
        wrote an entry on the device, the device copy is the authoritative
        one even for ``alloc``-mapped intermediates — the host rerun would
        otherwise compute on stale zeros.

        Syncs are journal-guarded: a ``(name, key)`` pair the journal already
        records as synced is not downloaded again, so a re-entered recovery
        re-syncs each dirty entry exactly once.  Each handle drop is also
        journaled (``env_exit``), so a later replay cannot resurrect a
        device copy the environment stopped trusting — the host rerun that
        follows a fallback makes the host arrays the authoritative ones."""
        state = self.journal.replay()
        now = self.clock.now
        for entry in self.env.live_entries():
            name = entry.buffer.name
            key = entry.device_handle
            if (entry.dirty and key is not None
                    and not entry.buffer.is_virtual
                    and not state.already_synced(name, key)):
                try:
                    payload = self.storage.get_bytes(
                        key, credentials=self.config.credentials)
                    if key.endswith(".gz"):
                        payload = gzip_decompress(payload)
                    entry.buffer.require_data()[:] = np.frombuffer(
                        payload, dtype=entry.buffer.dtype)
                    self.journal.record("env_sync", time=now,
                                        name=name, key=key)
                except (StorageError, ValueError):
                    pass  # best-effort: the host copy stays as-is
            if key is not None:
                self.journal.record("env_exit", time=now, name=name,
                                    reason="invalidated")
            entry.device_handle = None
            entry.dirty = False

    def _restore_env_handles(self) -> None:
        """Re-adopt device copies the journal proves are still durable.

        Only live mappings whose handle was lost qualify, and only when the
        recorded object still exists with its recorded checksum (a metadata
        round, no data motion).  Reference counts are untouched — recovery
        restores placement, not lifetime (:meth:`DataEnvironment.restore`)."""
        missing = [e for e in self.env.live_entries()
                   if e.device_handle is None]
        if not missing:
            return
        state = self.journal.replay()
        for entry in missing:
            name = entry.buffer.name
            handle = state.env_handle(name)
            if handle is None:
                continue
            key, checksum = handle
            try:
                actual = self._with_retries("CHECKSUM",
                                            self.storage.checksum_of, key)
            except (NoSuchObjectError, TransientStorageError):
                continue
            if checksum and actual != checksum:
                continue
            if self.env.restore(name, key):
                self.sc.log.warn(self.clock.now, "CloudPlugin",
                                 f"recovered device copy of {name!r} from "
                                 f"the journal ({key}); re-stage skipped")

    def _verify_staged_inputs(self, input_keys: Mapping[str, str],
                              buffers: Mapping[str, Buffer],
                              mode: ExecutionMode,
                              report: OffloadReport) -> None:
        """Validate the "implicit checkpoint" before a resubmission reuses it.

        A resubmitted job re-reads the staged inputs from storage, so before
        trusting them each one is verified against the checksum recorded at
        staging time — a metadata round (CHECKSUM), not a download.  A
        mismatch or a missing object is surfaced as a corruption event and
        the input is re-staged from the host (and billed like any upload)."""
        bus = get_bus()
        restage_wire: list[int] = []
        restage_raw = 0
        for name, key in input_keys.items():
            expected = self._staged_checksums.get(key, "")
            if not expected:
                continue  # resident/cached object this offload did not stage
            try:
                actual = self._with_retries(
                    "CHECKSUM", self.storage.checksum_of, key)
            except NoSuchObjectError:
                actual = ""
            except TransientStorageError:
                continue  # storage flaking, not evidence of corruption
            if actual == expected:
                continue
            bus.emit(CorruptionDetected(
                time=self.clock.now, resource=self.storage.name,
                store=self.storage.name, op="VERIFY", key=key,
                expected=expected, actual=actual))
            self.journal.record("corruption", bus.current_correlation(),
                                time=self.clock.now, key=key, op="VERIFY")
            buf = buffers.get(name)
            if buf is None:
                continue
            restage_wire.append(self._stage_input(buf, key, mode))
            restage_raw += buf.nbytes
            report.restaged_inputs += 1
        self._charge_retry_backoff(report)
        if restage_wire:
            link = self.network.lan if self.colocated else self.network.wan
            transfer_s = (
                link.parallel_transfer_time(restage_wire)
                if self.comm.parallel_streams
                else link.serial_transfer_time(restage_wire)
            )
            t0 = self.clock.now
            report.timeline.record(Phase.HOST_UPLOAD, t0,
                                   self.clock.advance(transfer_s),
                                   resource="host", label="restage")
            report.host_comm_up_s += self.clock.now - t0
            report.bytes_up_raw += restage_raw
            report.bytes_up_wire += sum(restage_wire)

    # ------------------------------------------------------------- execution
    def execute(
        self,
        region: TargetRegion,
        buffers: Mapping[str, Buffer],
        scalars: Mapping[str, Union[int, float]],
        mode: ExecutionMode,
    ) -> OffloadReport:
        report: OffloadReport = self._pending["report"]  # type: ignore[assignment]
        input_keys: dict[str, str] = self._pending["input_keys"]  # type: ignore[assignment]
        key_prefix: str = self._pending["key_prefix"]  # type: ignore[assignment]
        timeline = report.timeline

        ssh_creds = Credentials(
            provider=self.config.provider,
            username=self.config.spark_user,
            ssh_key_path=self.config.credentials.ssh_key_path,
        )
        # The staged inputs are an implicit checkpoint: a resubmitted job
        # re-reads them from storage, so nothing is re-uploaded over the WAN
        # (their integrity is verified before each reuse, below).
        max_submissions = 1 + self.config.max_resubmissions
        job_report: SparkJobReport | None = None
        last_error = ""
        bus = get_bus()
        corr = bus.current_correlation()
        self.journal.record("region_submit", corr, time=self.clock.now,
                            region=region.name, key_prefix=key_prefix,
                            mode=mode.value, inputs=sorted(input_keys))
        fused_members: tuple[str, ...] = getattr(region, "fused_members", ())
        if fused_members:
            # A fused submission is ONE journaled job: a resume replays
            # tile_done records against this correlation, never against the
            # member regions (which were never submitted on their own).
            self.journal.record("region_fused", corr, time=self.clock.now,
                                region=region.name,
                                members=list(fused_members),
                                elided=list(getattr(region, "fused_elided", ())),
                                key_prefix=key_prefix)
        fused_t0 = self.clock.now
        resume_tiles: Mapping[str, Mapping[int, object]] | None = None
        for submission in range(1, max_submissions + 1):
            if submission > 1:
                report.resubmissions += 1
                delay = self.retry_policy.delay_for(
                    submission - 1, key=f"resubmit-{region.name}")
                t0 = self.clock.now
                bus.emit(Resubmit(time=t0, resource="host",
                                  region=region.name, submission=submission,
                                  delay_s=delay))
                self.clock.advance(delay)
                report.backoff_s += delay
                timeline.record(Phase.RESUBMIT, t0, self.clock.now,
                                resource="host", label=f"resubmit-{submission - 1}")
                self.sc.log.warn(self.clock.now, "CloudPlugin",
                                 f"spark-submit failed ({last_error}); resubmitting "
                                 f"({submission - 1}/{self.config.max_resubmissions})")
                self._verify_staged_inputs(input_keys, buffers, mode, report)
                if (self.recovery != "none" and not self._driver_replaced
                        and self.fault_plan.driver_lost(self.clock.now)):
                    # Journal-driven driver replacement: a standby driver
                    # takes over; under "resume" it replays the journal and
                    # schedules only the tiles without committed checkpoints.
                    self._driver_replaced = True
                    report.resumes += 1
                    if self.recovery == "resume":
                        resume_tiles = self.journal.replay().completed_tiles(corr)
                    n_ckpt = sum(len(t) for t in (resume_tiles or {}).values())
                    self.journal.record("resume", corr, time=self.clock.now,
                                        submission=submission,
                                        policy=self.recovery, tiles=n_ckpt)
                    self.sc.log.warn(
                        self.clock.now, "CloudPlugin",
                        f"driver {self.config.spark_driver} lost; standby "
                        f"driver taking over (policy={self.recovery}, "
                        f"{n_ckpt} tile(s) checkpointed)")
            # Replace any spot instance reclaimed while the previous
            # submission was running, so the retried job has a full cluster.
            self._recover_preempted(report)
            self._install_job_handler(region, buffers, scalars, mode,
                                      input_keys, key_prefix, resume_tiles)
            try:
                result = self._submit_once(region, ssh_creds, report)
            except SSHError as e:
                last_error = str(e)
                bus.emit(SparkSubmit(time=self.clock.now, resource="host",
                                     region=region.name, submission=submission,
                                     ok=False, error=last_error))
                continue
            bus.emit(SparkSubmit(
                time=self.clock.now, resource="host", region=region.name,
                submission=submission, ok=result.ok,
                error="" if result.ok else (result.stderr
                                            or f"exit status {result.exit_status}"),
            ))
            if result.ok:
                job_report = self._pending.pop("job_report")  # type: ignore[assignment]
                break
            last_error = result.stderr or f"exit status {result.exit_status}"

        if job_report is None:
            self._record_breaker_failure()
            raise DeviceError(
                f"spark-submit failed on {self.config.spark_driver} after "
                f"{max_submissions} submission(s): {last_error}"
            )
        # A preemption during the final (successful) run still costs a
        # replacement before the cluster is whole again.
        self._recover_preempted(report)
        self.breaker.record_success()
        if self.config.verbose:
            for line in self.sc.log.lines():
                print(line)

        self._pending["output_keys"] = job_report.output_keys
        report.spark_job_s = job_report.job_s
        report.computation_s = job_report.computation_s
        report.tasks_run = job_report.tasks_run
        report.tasks_recomputed = job_report.tasks_recomputed
        report.tasks_speculated = job_report.tasks_speculated
        report.speculation_wins = job_report.speculation_wins
        report.speculation_saved_s = job_report.speculation_saved_s
        report.tiles_checkpointed = job_report.tiles_checkpointed
        report.tiles_skipped = job_report.tiles_skipped
        report.cluster_bytes_wire = job_report.task_bytes_wire
        report.storage_bytes_wire = job_report.storage_bytes_wire
        if fused_members:
            # One full-width span on a dedicated row: the gantt shows at a
            # glance which stretch of the run was a fused multi-region job.
            timeline.record(Phase.FUSED, fused_t0, self.clock.now,
                            resource="fusion", label=region.name)
            spill = self._pending.pop("fusion_spill", {})
            assert isinstance(spill, dict)
            self._fusion_spill.update(spill)
        # Anything this job durably wrote supersedes a previous spill.
        for name in job_report.output_keys:
            self._fusion_spill.pop(name, None)
        for name, key in job_report.output_keys.items():
            self.journal.record(
                "output_commit", corr, time=self.clock.now, name=name,
                key=key, checksum=job_report.output_checksums.get(name, ""))
        if report.tiles_skipped:
            bus.emit(ResumeFromCheckpoint(
                time=self.clock.now, resource=self.name, region=region.name,
                submission=submission, tiles_skipped=report.tiles_skipped,
                tiles_rerun=job_report.tasks_run,
                bytes_restored=job_report.bytes_restored))
        self._flush_corruptions(report)
        report.timeline.extend(self.sc.timeline)
        return report

    def _install_job_handler(self, region, buffers, scalars, mode,
                             input_keys, key_prefix,
                             resume_tiles=None) -> None:
        """Register the driver-side ``spark-submit`` handler.  Each call
        installs a *fresh* job (generator state is per-submission); the
        handler reports infrastructure failures as non-zero exits while
        deterministic user errors (codegen, OOM) propagate unchanged.

        Once a standby driver has taken over (``_driver_replaced``) the
        original driver's death no longer fails submissions, and the
        generator is told there is no pending death (``death_at=None``) so
        every completed tile of the rerun commits its checkpoint."""

        def handler(command: str) -> CommandResult:
            if (not self._driver_replaced
                    and self.fault_plan.driver_lost(self.clock.now)):
                return CommandResult(command=command, exit_status=255,
                                     stderr=f"Connection to "
                                            f"{self.config.spark_driver} lost")
            if self._submit_faults_left > 0:
                self._submit_faults_left -= 1
                return CommandResult(command=command, exit_status=1,
                                     stderr="spark-submit: transient submission "
                                            "failure (injected)")
            gen = SparkJobGenerator(
                region, scalars, self.sc,
                calibration=self.cal, mode=mode, tiling=self.tiling,
                intra_compression=self.intra_compression,
                fault_plan=self.fault_plan,
                host_compression=self.config.compression,
                min_compress_size=self.config.min_compress_size,
                retry_policy=self.retry_policy,
                schedule=self.schedule,
                journal=self.journal,
                checkpoint=(self.recovery == "resume"),
                resume=resume_tiles,
                death_at=(None if self._driver_replaced
                          else self.fault_plan.driver_dies_at),
            )
            try:
                job_report = gen.run(buffers, self.storage, input_keys, key_prefix)
            except (JobFailedError, TransientStorageError) as e:
                return CommandResult(command=command, exit_status=1,
                                     stderr=f"{type(e).__name__}: {e}")
            if (not self._driver_replaced
                    and self.fault_plan.driver_lost(self.clock.now)):
                # The job ran, but the driver died before reporting back:
                # its results are lost with it (committed tile checkpoints
                # and journal records survive — they live in storage).
                return CommandResult(command=command, exit_status=255,
                                     stderr=f"Connection to "
                                            f"{self.config.spark_driver} lost")
            elided = getattr(region, "fused_elided", ())
            if elided and mode == ExecutionMode.FUNCTIONAL:
                # Elided intermediates exist only in the fused driver's
                # memory; capture their final values so a later offload can
                # stage them (the host arrays stay pristine — alloc maps
                # never copy back).
                self._pending["fusion_spill"] = {
                    name: arr.copy() for name in elided
                    if (arr := gen.driver_array(name)) is not None
                }
            self._pending["job_report"] = job_report
            return CommandResult(command=command, exit_status=0,
                                 stdout=f"job finished in {job_report.job_s:.1f}s")

        self.endpoint.register_handler("spark-submit", handler)

    def _submit_once(self, region: TargetRegion, ssh_creds: Credentials,
                     report: OffloadReport) -> CommandResult:
        """One submission over a fresh SSH session; the connect itself is
        retried under the policy (flaky channels are the common case)."""
        ssh = SSHClient(self.endpoint, ssh_creds)

        def connect() -> float:
            if (not self._driver_replaced
                    and self.fault_plan.driver_lost(self.clock.now)):
                raise SSHError(
                    f"ssh: connect to host {self.config.spark_driver}: "
                    f"no route to host"
                )
            if self._ssh_faults_left > 0:
                self._ssh_faults_left -= 1
                raise SSHError(
                    f"ssh: connect to host {self.config.spark_driver}: "
                    f"connection reset by peer"
                )
            return ssh.connect()

        def on_retry(failure: int, delay: float, exc: BaseException) -> None:
            self.sc.log.warn(self.clock.now, "CloudPlugin",
                             f"SSH connect failed ({exc}); "
                             f"retrying in {delay:.1f}s")
            t0 = self.clock.now
            self.clock.advance(delay)
            report.retries += 1
            report.backoff_s += delay
            report.timeline.record(Phase.RETRY_BACKOFF, t0, self.clock.now,
                                   resource="host", label="ssh-backoff")

        handshake = retry_call(
            self.retry_policy, connect, retry_on=(SSHError,),
            op_name=f"ssh-{self.config.spark_driver}", on_retry=on_retry,
            now=lambda: self.clock.now,
        )
        t_conn = self.clock.now
        self.clock.advance(handshake)
        # The handshake is wall time the user waits through; give it a span
        # so the timeline covers the makespan gap-free (the critical-path
        # profiler partitions the makespan across recorded spans).  Recorded
        # on the Spark context's timeline — not the report's — so every
        # report sharing this cluster (chained offloads in one data
        # environment) sees it via the post-job extend.
        self.sc.timeline.record(Phase.CLUSTER_INIT, t_conn, self.clock.now,
                                resource="host", label="ssh-connect")
        try:
            return ssh.exec_command(
                f"spark-submit --class org.ompcloud.Job ompcloud-{region.name}.jar "
                f"--cores {self.cluster.total_physical_cores}"
            )
        finally:
            ssh.close()

    def _recover_preempted(self, report: OffloadReport) -> None:
        """Detect spot instances EC2 reclaimed, bill them, and provision
        replacement workers (new identity) so later jobs see a full cluster."""
        if not self.fault_plan.preempt_at:
            return
        timeline = report.timeline
        for ex in list(self.cluster.executors):
            t = self.fault_plan.preempt_at.get(ex.worker_id)
            if t is None or self.clock.now < t:
                continue
            timeline.record(Phase.PREEMPTION, t, self.clock.now,
                            resource=ex.worker_id, label="spot-reclaimed")
            get_bus().emit(Preemption(time=t, resource=ex.worker_id,
                                      worker=ex.worker_id))
            self.sc.log.warn(self.clock.now, "CloudPlugin",
                             f"spot instance backing {ex.worker_id} was "
                             f"reclaimed; provisioning a replacement")
            t0 = self.clock.now
            if self._provisioned is not None and self._provider is not None:
                idx = self.cluster.executors.index(ex)
                inst = (self._provisioned.workers[idx]
                        if idx < len(self._provisioned.workers) else None)
                billed_before = self._provider.ledger.total_usd()
                if inst is not None and inst.state.value == "running":
                    # A spot instance cannot be reclaimed before it is up.
                    when = max(t, inst.running_since or t)
                    self._provider.terminate(inst.instance_id, when)
                repl = self._provider.launch(self.config.instance_type, t0,
                                             count=1, tags={"role": "worker",
                                                            "spot": "replacement"})
                up = self._provider.wait_running(repl, t0)
                self.clock.advance_to(max(up, self.clock.now))
                if inst is not None:
                    self._provisioned.workers[idx] = repl[0]
                report.billed_usd += self._provider.ledger.total_usd() - billed_before
            else:
                # Unmanaged cluster: the replacement still takes one boot.
                boot = (self._provider.boot_delay_s if self._provider is not None
                        else EC2Provider.boot_delay_s)
                self.clock.advance(boot)
            timeline.record(Phase.RECOVERY, t0, self.clock.now,
                            resource=ex.worker_id, label="spot-replace")
            get_bus().emit(Recovery(time=self.clock.now, resource=ex.worker_id,
                                    worker=ex.worker_id,
                                    duration_s=self.clock.now - t0))
            self.cluster.replace_executor(ex.worker_id, now=self.clock.now)
            report.preemptions += 1

    def abort(self, region: TargetRegion) -> OffloadReport | None:
        """Tear down a failed offload: close the data environment, flush any
        accumulated backoff, park managed instances, and hand the partial
        report (with its recovery counters) back to the runtime."""
        report = self._pending.get("report")
        report = report if isinstance(report, OffloadReport) else None
        # Drop only the references *this* target took; entries held by an
        # enclosing `target data` environment survive (the runtime follows up
        # with invalidate_data_env, which clears their device handles).
        for name in self._pending.get("begun", ()):  # type: ignore[union-attr]
            if self.env.is_mapped(name):
                self.env.end(name)
        self._charge_retry_backoff(report)
        self._flush_corruptions(report)
        if self.config.manage_instances and self._provisioned is not None:
            self._provisioned.stop_all(self.clock.now)
        if report is not None:
            now = self.clock.now
            report.timeline.record(Phase.FALLBACK, now, now, resource="host",
                                   label=f"fallback-{region.name}")
        self._pending = {}
        return report
