"""Recursive-descent parser for the pragma dialect.

Accepts the pragmas of Listings 1-2 (with or without the leading
``#pragma``), the combined ``target parallel for`` form, and the rejected
synchronization directives (parsed into :class:`UnsupportedConstruct` so the
runtime can report *why* a region cannot offload, mirroring Section III-D).
"""

from __future__ import annotations

from repro.core.exprs import ExprError, parse_expr
from repro.core.lexer import LexError, TokenStream, tokenize
from repro.core.omp_ast import (
    UNSUPPORTED_DIRECTIVES,
    MapClause,
    MapItem,
    MapType,
    ParallelForConstruct,
    Pragma,
    ReductionClause,
    ScheduleClause,
    TargetConstruct,
    TargetDataConstruct,
    UnsupportedConstruct,
)


class DirectiveError(Exception):
    """Malformed or unsupported pragma."""


def parse_pragma(line: str) -> Pragma | tuple[Pragma, ...]:
    """Parse one pragma line into AST node(s).

    The combined ``omp target parallel for ...`` form returns a
    ``(TargetConstruct, ParallelForConstruct)`` pair, matching how Clang
    splits combined constructs.

    >>> p = parse_pragma("#pragma omp target device(CLOUD)")
    >>> p.device
    'CLOUD'
    """
    try:
        ts = TokenStream(tokenize(line), line)
    except LexError as e:
        raise DirectiveError(str(e)) from e
    try:
        return _parse(ts)
    except (LexError, ExprError) as e:
        raise DirectiveError(f"{e} (while parsing {line!r})") from e


def _parse(ts: TokenStream) -> Pragma | tuple[Pragma, ...]:
    ts.accept("#")
    ts.accept("pragma")
    ts.expect("omp")
    head = ts.next().text

    if head in UNSUPPORTED_DIRECTIVES:
        return UnsupportedConstruct(head)

    if head == "target":
        if ts.accept("data"):
            return TargetDataConstruct(maps=_parse_map_clauses(ts))
        if ts.peek_text() == "parallel":
            ts.next()
            ts.expect("for")
            target = _parse_target_clauses(ts, split_parallel=True)
            pf = _parse_parallel_for_clauses(ts)
            _expect_end(ts)
            return (target, pf)
        target = _parse_target_clauses(ts)
        _expect_end(ts)
        return target

    if head == "parallel":
        ts.expect("for")
        pf = _parse_parallel_for_clauses(ts)
        _expect_end(ts)
        return pf

    if head == "map":
        # Bare continuation pragma: "#pragma omp map(...)" as in Listing 1.
        ts.pos -= 1
        return TargetConstruct(maps=_parse_map_clauses(ts))

    raise DirectiveError(f"unknown OpenMP directive {head!r} in {ts.source!r}")


def _expect_end(ts: TokenStream) -> None:
    if not ts.at_end():
        raise DirectiveError(
            f"trailing tokens starting at {ts.peek_text()!r} in {ts.source!r}"
        )


# ---------------------------------------------------------------- clauses
def _parse_target_clauses(ts: TokenStream, split_parallel: bool = False) -> TargetConstruct:
    device: str | None = None
    maps: list[MapClause] = []
    while not ts.at_end():
        kw = ts.peek_text()
        if kw == "device":
            ts.next()
            ts.expect("(")
            device = ts.next().text
            ts.expect(")")
        elif kw == "map":
            maps.append(_parse_one_map(ts))
        elif split_parallel and kw in ("reduction", "schedule", "num_threads"):
            break
        else:
            raise DirectiveError(f"unexpected clause {kw!r} on target in {ts.source!r}")
    return TargetConstruct(device=device, maps=tuple(maps))


def _parse_map_clauses(ts: TokenStream) -> tuple[MapClause, ...]:
    maps: list[MapClause] = []
    while not ts.at_end():
        if ts.peek_text() != "map":
            raise DirectiveError(
                f"expected a map clause, found {ts.peek_text()!r} in {ts.source!r}"
            )
        maps.append(_parse_one_map(ts))
    if not maps:
        raise DirectiveError(f"expected at least one map clause in {ts.source!r}")
    return tuple(maps)


def _parse_one_map(ts: TokenStream) -> MapClause:
    ts.expect("map")
    ts.expect("(")
    type_tok = ts.next().text
    try:
        map_type = MapType(type_tok)
    except ValueError:
        raise DirectiveError(
            f"unknown map type {type_tok!r} (expected to/from/tofrom/alloc) in {ts.source!r}"
        ) from None
    ts.expect(":")
    items: list[MapItem] = [_parse_map_item(ts)]
    while ts.accept(","):
        items.append(_parse_map_item(ts))
    ts.expect(")")
    return MapClause(map_type=map_type, items=tuple(items))


def _parse_map_item(ts: TokenStream) -> MapItem:
    name_tok = ts.next()
    if name_tok.kind != "IDENT":
        raise DirectiveError(f"expected a variable name, got {name_tok.text!r} in {ts.source!r}")
    if not ts.accept("["):
        return MapItem(name=name_tok.text)
    lower_src = ts.collect_until({":"})
    ts.expect(":")
    upper_src = ts.collect_until({"]"})
    ts.expect("]")
    if not upper_src:
        raise DirectiveError(
            f"array section on {name_tok.text!r} needs an upper bound in {ts.source!r}"
        )
    lower = parse_expr(lower_src) if lower_src else None
    upper = parse_expr(upper_src)
    return MapItem(name=name_tok.text, lower=lower, upper=upper)


def _parse_parallel_for_clauses(ts: TokenStream) -> ParallelForConstruct:
    reductions: list[ReductionClause] = []
    schedule: ScheduleClause | None = None
    num_threads: int | None = None
    while not ts.at_end():
        kw = ts.next().text
        if kw == "reduction":
            ts.expect("(")
            op_parts = [ts.next().text]
            # max/min are identifiers; + * | & ^ are single punct tokens.
            op = op_parts[0]
            ts.expect(":")
            names = [ts.next().text]
            while ts.accept(","):
                names.append(ts.next().text)
            ts.expect(")")
            try:
                reductions.append(ReductionClause(op=op, variables=tuple(names)))
            except ValueError as e:
                raise DirectiveError(str(e)) from e
        elif kw == "schedule":
            ts.expect("(")
            kind = ts.next().text
            if kind not in ("static", "dynamic", "guided"):
                raise DirectiveError(f"unknown schedule kind {kind!r} in {ts.source!r}")
            chunk = None
            if ts.accept(","):
                chunk = int(ts.next().text)
            ts.expect(")")
            schedule = ScheduleClause(kind=kind, chunk=chunk)
        elif kw == "num_threads":
            ts.expect("(")
            num_threads = int(ts.next().text)
            ts.expect(")")
        else:
            raise DirectiveError(f"unexpected clause {kw!r} on parallel for in {ts.source!r}")
    return ParallelForConstruct(
        reductions=tuple(reductions), schedule=schedule, num_threads=num_threads
    )
