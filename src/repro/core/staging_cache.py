"""Host-target data caching — the paper's stated future work.

"In the future, we plan to implement data caching to limit the cost of
host-target communications."  This module implements it: the plugin
remembers, per storage, which buffer *contents* are already staged; an
offload whose input bytes match a previously staged object skips compression
and upload entirely and re-uses the object in place.

Content identity:

* functional mode — a SHA-1 over the raw buffer bytes (cheap next to gzip);
* modeled mode — (name, length, dtype, density), i.e. the full description of
  a virtual buffer; two virtual buffers with identical descriptions denote
  the same synthetic content by construction.

Downloaded outputs are registered too: re-offloading a result the cloud just
produced (`C` of one GEMM as `A` of the next) is a cache hit without the
host ever re-uploading it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.buffers import Buffer


@dataclass(frozen=True)
class CacheKey:
    """Identity of one staged payload."""

    digest: str

    @classmethod
    def for_buffer(cls, buf: Buffer) -> "CacheKey":
        if buf.is_virtual:
            token = f"virtual:{buf.name}:{buf.length}:{buf.dtype}:{buf.density}"
            return cls(hashlib.sha1(token.encode()).hexdigest())
        # Hash the buffer's bytes through its zero-copy view; ``tobytes()``
        # here would duplicate the whole payload just to feed the digest.
        return cls(hashlib.sha1(buf.payload_view()).hexdigest())

    @classmethod
    def for_bytes(cls, payload: "bytes | memoryview") -> "CacheKey":
        return cls(hashlib.sha1(payload).hexdigest())


@dataclass
class StagingCache:
    """digest -> storage key of the already-staged object."""

    enabled: bool = True
    _entries: dict[str, str] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    bytes_saved: int = 0

    def lookup(self, key: CacheKey) -> str | None:
        """Storage key holding this content, or None."""
        if not self.enabled:
            return None
        found = self._entries.get(key.digest)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def record(self, key: CacheKey, storage_key: str) -> None:
        if self.enabled:
            self._entries[key.digest] = storage_key

    def credit_saved(self, nbytes: int, probe_cost_bytes: int = 0) -> None:
        """Credit a hit's avoided upload.  When the EXISTS probe that
        confirmed the hit needed retries, those probes billed real storage
        round-trips — their wire cost is netted out so ``bytes_saved`` stays
        an honest account of traffic the cache removed."""
        self.bytes_saved += max(0, nbytes - probe_cost_bytes)

    def invalidate(self, storage_key: str) -> None:
        """Drop entries pointing at a deleted/overwritten object."""
        stale = [d for d, k in self._entries.items() if k == storage_key]
        for d in stale:
            del self._entries[d]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
