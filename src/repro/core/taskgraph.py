"""Deferred ``nowait`` offloads: region DAG construction and fusion.

The paper's runtime runs every ``target`` region as its own Spark job with a
full barrier after it, so chained regions (``chained_3mm``) serialize and
round-trip their intermediates through cluster storage even when a ``target
data`` environment keeps the buffers resident.  OpenMP 4.5 already has the
vocabulary for doing better: ``nowait`` turns a target region into a deferred
*target task* and ``depend(in/out/inout: ...)`` orders those tasks, with
``taskwait`` (or the end of the enclosing data environment) as the
synchronization point.

This module is the planning half of that extension:

* :class:`Depend` / :func:`depend` — the clause surface (`omp.depend`).
* :class:`TaskHandle` — the future-like value ``offload(..., nowait=True)``
  returns; resolved by ``omp.taskwait()``.
* :func:`build_plan` — turns the queue of deferred regions into a
  :class:`TaskGraphPlan`: dependence edges from explicit ``depend`` clauses
  and from inferred buffer dataflow (per-iteration access windows via
  :mod:`repro.analysis.infer` refine the edges — provably disjoint accesses
  do not order), fusion groups chosen under the legality rules below, and
  topological *waves* of independent groups.
* :func:`merge_group` — materializes a fusion group as one
  :class:`FusedRegion` whose member loops run inside a single Spark job and
  whose producer→consumer intermediates become region-local driver arrays
  (``locals_``) that never touch cluster storage.

Fusion legality (checked in :func:`build_plan`, reasons surfaced as
``FusionRejected`` entries in the offload report):

* every member resolves to the *same, available* cloud device
  (``host-fallback`` / ``device-mismatch``);
* identical execution modes and consistent scalar bindings
  (``mode-mismatch`` / ``scalar-conflict``);
* compatible tilings — every member loop has the same evaluated trip count,
  so tile boundaries per :mod:`repro.core.tiling` line up
  (``incompatible-tilings``);
* every producer→consumer intermediate is resident in the enclosing
  :class:`~repro.core.data_env.DataEnvironment`
  (``intermediate-not-resident``);
* no ``target update`` needs a materialized copy of an array the fusion
  would elide (``dirty-target-update``);
* the group is convex — no dependence path leaves the group and re-enters it
  (``dependency-interleaved``).

A group that fails any rule degrades to unfused, serialized execution of its
members; results are bit-identical either way, fusion only changes where
bytes and barriers go.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Optional, Union

from repro.core.api import ParallelLoop, RegionError, TargetRegion
from repro.core.buffers import Buffer, ExecutionMode
from repro.core.exprs import ExprError
from repro.core.omp_ast import MapClause, MapItem, MapType

if TYPE_CHECKING:  # pragma: no cover - import cycle (runtime imports us)
    from repro.core.report import OffloadReport
    from repro.core.runtime import OffloadRuntime

__all__ = [
    "Depend",
    "DepEdge",
    "FusedRegion",
    "FusionGroup",
    "GraphNode",
    "PendingRegion",
    "TaskGraphPlan",
    "TaskHandle",
    "build_plan",
    "depend",
    "merge_group",
]

Scalars = Mapping[str, Union[int, float]]

#: Residency oracle: ``(device_name, buffer_name)`` -> the map-type value
#: ("to"/"from"/"tofrom"/"alloc") of a buffer currently mapped in that
#: device's data environment, else ``None``.
ResidencyOracle = Callable[[str, str], Optional[str]]


# ------------------------------------------------------------------ clauses
def _names(value: Union[str, Iterable[str], None]) -> tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class Depend:
    """An OpenMP ``depend`` clause: ``depend(in: ...)``, ``depend(out: ...)``
    and ``depend(inout: ...)`` list items of one deferred target task.

    Dependences arise between two deferred regions that *both* carry depend
    clauses naming a common list item with at least one ``out``/``inout``
    side (OpenMP 4.5 §2.13.9).  Regions without clauses are ordered by
    inferred buffer dataflow instead — the runtime never reorders against a
    true data dependence it can see.
    """

    in_: tuple[str, ...] = ()
    out: tuple[str, ...] = ()
    inout: tuple[str, ...] = ()

    @property
    def reads(self) -> frozenset[str]:
        return frozenset(self.in_) | frozenset(self.inout)

    @property
    def writes(self) -> frozenset[str]:
        return frozenset(self.out) | frozenset(self.inout)

    def __str__(self) -> str:
        parts = []
        if self.in_:
            parts.append(f"depend(in: {', '.join(self.in_)})")
        if self.out:
            parts.append(f"depend(out: {', '.join(self.out)})")
        if self.inout:
            parts.append(f"depend(inout: {', '.join(self.inout)})")
        return " ".join(parts)


def depend(
    in_: Union[str, Iterable[str], None] = None,
    out: Union[str, Iterable[str], None] = None,
    inout: Union[str, Iterable[str], None] = None,
) -> Depend:
    """Build a :class:`Depend` clause (``omp.depend``).

    Accepts single names or iterables::

        omp.depend(in_=("A", "B"), out="E")
    """
    d = Depend(in_=_names(in_), out=_names(out), inout=_names(inout))
    if not (d.in_ or d.out or d.inout):
        raise RegionError("depend() needs at least one of in_/out/inout")
    return d


# ------------------------------------------------------------------- handles
class TaskHandle:
    """Future-like handle for one deferred (``nowait``) offload.

    ``wait()`` is a full ``taskwait`` — OpenMP has no per-task wait on
    target tasks, and neither does this runtime."""

    def __init__(self, region: str, runtime: "OffloadRuntime") -> None:
        self.region = region
        self.report: Optional["OffloadReport"] = None
        #: Name of the fused job this region became part of, if any.
        self.fused_into: Optional[str] = None
        self._runtime = runtime

    @property
    def done(self) -> bool:
        return self.report is not None

    def wait(self) -> "OffloadReport":
        """Flush the deferred queue (``taskwait``) and return this region's
        report (the fused job's report when the region was fused)."""
        if self.report is None:
            self._runtime.taskwait()
        if self.report is None:  # pragma: no cover - defensive
            raise RegionError(
                f"deferred region {self.region!r} did not resolve at taskwait")
        return self.report

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"TaskHandle({self.region!r}, {state})"


@dataclass
class PendingRegion:
    """One deferred offload sitting in the runtime's ``nowait`` queue."""

    region: TargetRegion
    buffers: dict[str, Buffer]
    scalars: dict[str, Union[int, float]]
    mode: ExecutionMode
    device: Union[int, str, None]
    infer_maps: bool
    strict: bool
    depend: Optional[Depend]
    handle: TaskHandle


# ----------------------------------------------------------------- plan model
@dataclass(frozen=True)
class GraphNode:
    """Planner's view of one deferred region (device already resolved)."""

    index: int
    region: TargetRegion
    device: str                  # resolved device name, for display/grouping
    host: bool                   # resolves to the host (or device is down)
    mode: str                    # ExecutionMode value
    strict: bool
    depend: Optional[Depend]
    scalars: Scalars
    nbytes: Mapping[str, int] = field(default_factory=dict)

    @property
    def reads(self) -> frozenset[str]:
        names = set(self.region.input_names)
        mapped = {i.name for c in self.region.maps for i in c.items}
        for loop in self.region.loops:
            names.update(n for n in loop.reads if n in mapped)
        return frozenset(names)

    @property
    def writes(self) -> frozenset[str]:
        names = set(self.region.output_names)
        mapped = {i.name for c in self.region.maps for i in c.items}
        for loop in self.region.loops:
            names.update(n for n in loop.writes if n in mapped)
        return frozenset(names)


@dataclass(frozen=True)
class DepEdge:
    """A dependence edge ``src -> dst`` (``src`` must run first)."""

    src: int
    dst: int
    arrays: tuple[str, ...]
    kind: str  # "depend" (explicit clauses) or "dataflow" (inferred)


@dataclass(frozen=True)
class FusionGroup:
    """One schedulable unit: either a single region or a fused chain."""

    members: tuple[int, ...]
    fused: bool
    wave: int = 0
    elided: tuple[str, ...] = ()        # intermediates that never materialize
    materialized: tuple[str, ...] = ()  # intermediates kept as `from` maps
    bytes_saved: int = 0                # estimated cluster<->storage bytes


@dataclass(frozen=True)
class TaskGraphPlan:
    """The full plan for one ``taskwait`` flush: DAG, groups, and waves."""

    nodes: tuple[GraphNode, ...]
    edges: tuple[DepEdge, ...]
    groups: tuple[FusionGroup, ...]
    waves: tuple[tuple[int, ...], ...]          # group indices per wave
    rejected: tuple[tuple[tuple[str, ...], str], ...]  # (member names, reason)

    def group_of(self, node_index: int) -> FusionGroup:
        for g in self.groups:
            if node_index in g.members:
                return g
        raise KeyError(node_index)


# ------------------------------------------------------------ window algebra
def _window_extent(
    node: GraphNode, name: str, kind: str
) -> tuple[bool, Optional[tuple[int, int]]]:
    """Union of the evaluated access extent of ``name`` across the node's
    loops.  Returns ``(touches, extent)`` — ``extent`` is ``None`` when the
    analysis is incomplete (callers must stay conservative).

    Windows from :func:`analyze_ranges` are affine in the loop variable, so
    the union over iterations is bounded by the endpoint evaluations.
    """
    touches = False
    known = True
    lo: Optional[int] = None
    hi: Optional[int] = None
    for loop in node.region.loops:
        declared = loop.writes if kind == "write" else loop.reads
        if name not in declared:
            continue
        touches = True
        # Imported lazily: repro.analysis pulls in repro.core at package
        # import time, so a module-level import here would be circular.
        from repro.analysis.infer import analyze_ranges

        ranges = analyze_ranges(loop)
        table = ranges.writes if kind == "write" else ranges.reads
        window = table.get(name) if ranges.complete else None
        if window is None:
            known = False
            continue
        try:
            n = loop.trip_count_value(node.scalars)
        except (ExprError, RegionError):
            known = False
            continue
        if n <= 0:
            continue
        for iteration in (0, n - 1):
            scope: dict[str, Union[int, float]] = dict(node.scalars)
            scope[loop.loop_var] = iteration
            try:
                w_lo = int(window[0].eval(scope))
                w_hi = int(window[1].eval(scope))
            except ExprError:
                known = False
                break
            lo = w_lo if lo is None else min(lo, w_lo)
            hi = w_hi if hi is None else max(hi, w_hi)
        if not known:
            break
    if not touches:
        return False, (0, 0)
    if not known or lo is None or hi is None:
        return True, None
    return True, (lo, hi)


def _provably_disjoint(src: GraphNode, src_kind: str,
                       dst: GraphNode, dst_kind: str, name: str) -> bool:
    """True only when both access extents are known and do not overlap."""
    s_touch, s_ext = _window_extent(src, name, src_kind)
    d_touch, d_ext = _window_extent(dst, name, dst_kind)
    if not s_touch or not d_touch:
        return True  # one side never touches it at all
    if s_ext is None or d_ext is None:
        return False
    return s_ext[1] <= d_ext[0] or d_ext[1] <= s_ext[0]


# ----------------------------------------------------------------- DAG edges
def _edges_between(src: GraphNode, dst: GraphNode) -> Optional[DepEdge]:
    """Dependence edge from ``src`` to the later ``dst``, or ``None``."""
    explicit: set[str] = set()
    if src.depend is not None and dst.depend is not None:
        explicit |= src.depend.writes & dst.depend.reads   # RAW
        explicit |= src.depend.writes & dst.depend.writes  # WAW
        explicit |= src.depend.reads & dst.depend.writes   # WAR
    inferred: set[str] = set()
    for name in sorted(src.writes & dst.reads):            # RAW
        if not _provably_disjoint(src, "write", dst, "read", name):
            inferred.add(name)
    for name in sorted(src.writes & dst.writes):           # WAW
        if not _provably_disjoint(src, "write", dst, "write", name):
            inferred.add(name)
    for name in sorted(src.reads & dst.writes):            # WAR
        if not _provably_disjoint(src, "read", dst, "write", name):
            inferred.add(name)
    arrays = explicit | inferred
    if not arrays:
        return None
    kind = "depend" if explicit else "dataflow"
    return DepEdge(src=src.index, dst=dst.index,
                   arrays=tuple(sorted(arrays)), kind=kind)


def _build_edges(nodes: list[GraphNode]) -> list[DepEdge]:
    edges: list[DepEdge] = []
    for i, dst in enumerate(nodes):
        for src in nodes[:i]:
            edge = _edges_between(src, dst)
            if edge is not None:
                edges.append(edge)
    return edges


def _reachability(n: int, edges: list[DepEdge]) -> list[set[int]]:
    """``reach[i]`` = every node transitively reachable from ``i``."""
    succ: list[set[int]] = [set() for _ in range(n)]
    for e in edges:
        succ[e.src].add(e.dst)
    reach: list[set[int]] = [set(s) for s in succ]
    changed = True
    while changed:
        changed = False
        for i in range(n):
            extra: set[int] = set()
            for j in reach[i]:
                extra |= reach[j]
            if not extra <= reach[i]:
                reach[i] |= extra
                changed = True
    return reach


# ------------------------------------------------------------ fusion grouping
def _trip_counts(node: GraphNode) -> Optional[frozenset[int]]:
    try:
        return frozenset(loop.trip_count_value(node.scalars)
                         for loop in node.region.loops)
    except (ExprError, RegionError):
        return None


def _attach_reason(
    members: list[GraphNode],
    node: GraphNode,
    raw_arrays: set[str],
    resident: ResidencyOracle,
) -> Optional[str]:
    """Why ``node`` cannot join the group, or ``None`` when it can."""
    if node.host or any(m.host for m in members):
        return "host-fallback"
    if any(m.device != node.device for m in members):
        return "device-mismatch"
    if any(m.mode != node.mode for m in members):
        return "mode-mismatch"
    for m in members:
        for key, value in m.scalars.items():
            if key in node.scalars and node.scalars[key] != value:
                return "scalar-conflict"
    trips = _trip_counts(node)
    if trips is None:
        return "incompatible-tilings"
    for m in members:
        m_trips = _trip_counts(m)
        if m_trips is None or m_trips != trips:
            return "incompatible-tilings"
    for name in sorted(raw_arrays):
        if resident(node.device, name) is None:
            return "intermediate-not-resident"
    return None


def build_plan(
    nodes: list[GraphNode],
    *,
    resident: ResidencyOracle,
    update_names: frozenset[str] = frozenset(),
) -> TaskGraphPlan:
    """Plan one ``taskwait`` flush.

    ``resident`` answers "is this buffer mapped in the (single) device data
    environment, and how" — fusion never invents residency.  ``update_names``
    are arrays a pending ``target update`` is about to touch; a group that
    would elide one of them is demoted (the update needs a materialized
    copy).
    """
    for pos, node in enumerate(nodes):
        if node.index != pos:
            raise RegionError(
                f"taskgraph nodes must be indexed by queue position "
                f"(node {node.region.name!r} has index {node.index}, "
                f"expected {pos})")
    edges = _build_edges(nodes)
    reach = _reachability(len(nodes), edges)
    preds: dict[int, list[DepEdge]] = {}
    for e in edges:
        preds.setdefault(e.dst, []).append(e)

    groups: list[list[int]] = []
    group_of: dict[int, int] = {}
    rejected: list[tuple[tuple[str, ...], str]] = []

    def names_of(indices: Iterable[int]) -> tuple[str, ...]:
        return tuple(nodes[i].region.name for i in indices)

    for node in nodes:
        incoming = preds.get(node.index, [])
        # Candidate groups: those holding a direct producer of this node,
        # most recently formed first (the natural chain continuation).
        candidates: list[int] = []
        for e in incoming:
            g = group_of[e.src]
            if g not in candidates:
                candidates.append(g)
        candidates.sort(reverse=True)
        # Candidate group *sets*, most ambitious first: all producer groups
        # merged into one (a consumer legally bridging independent chains,
        # e.g. 3mm's G joining the E- and F-producers), then each single
        # group on its own.
        candidate_sets: list[tuple[int, ...]] = []
        if len(candidates) > 1:
            candidate_sets.append(tuple(sorted(candidates)))
        candidate_sets.extend((g,) for g in candidates)
        attached = False
        failure: Optional[tuple[tuple[str, ...], str]] = None
        for gs in candidate_sets:
            member_idx = sorted(i for g in gs for i in groups[g])
            members = [nodes[i] for i in member_idx]
            raw = {name for e in incoming
                   if group_of[e.src] in gs for name in e.arrays
                   if name in nodes[e.src].writes and name in node.reads}
            reason = _attach_reason(members, node, raw, resident)
            if reason is None:
                # Convexity: fusing must not sandwich an outside node that
                # sits on a dependence path between two merged nodes.
                merged = set(member_idx) | {node.index}
                for k in range(node.index):
                    if k in merged:
                        continue
                    if (any(k in reach[i] for i in merged)
                            and reach[k] & merged):
                        reason = "dependency-interleaved"
                        break
            if reason is None:
                target = min(gs)
                for g in gs:
                    if g == target:
                        continue
                    groups[target].extend(groups[g])
                    for i in groups[g]:
                        group_of[i] = target
                    groups[g] = []
                groups[target].sort()
                groups[target].append(node.index)
                group_of[node.index] = target
                attached = True
                break
            if failure is None:
                failure = (names_of([*member_idx, node.index]), reason)
        if not attached:
            if failure is not None:
                rejected.append(failure)
            group_of[node.index] = len(groups)
            groups.append([node.index])

    # Group-merge leaves emptied slots behind; queue order is preserved
    # inside each surviving group.
    groups = [g for g in groups if g]

    # ---- per-group elision decisions -----------------------------------
    final: list[FusionGroup] = []
    readers: dict[str, set[int]] = {}
    for n in nodes:
        for name in n.reads:
            readers.setdefault(name, set()).add(n.index)
    for indices in groups:
        if len(indices) == 1:
            final.append(FusionGroup(members=tuple(indices), fused=False))
            continue
        member_set = set(indices)
        intermediates: set[str] = set()
        for e in edges:
            if e.src in member_set and e.dst in member_set:
                intermediates.update(
                    name for name in e.arrays
                    if name in nodes[e.src].writes
                    and name in nodes[e.dst].reads)
        elided: list[str] = []
        materialized: list[str] = []
        bytes_saved = 0
        sizes: dict[str, int] = {}
        for n in (nodes[i] for i in indices):
            sizes.update(n.nbytes)
        device = nodes[indices[0]].device
        for name in sorted(intermediates):
            consumers = len(readers.get(name, set()) & member_set)
            external = readers.get(name, set()) - member_set
            map_type = resident(device, name)
            nbytes = sizes.get(name, 0)
            if map_type == MapType.ALLOC.value and not external:
                # Scratch residency: never copied home at environment exit,
                # so skipping the materialization is invisible to the host.
                elided.append(name)
                bytes_saved += nbytes * (1 + consumers)
            else:
                # The host (or a region outside the group) observes this
                # array: it still writes to storage once, but in-group
                # consumers read it from driver memory.
                materialized.append(name)
                bytes_saved += nbytes * consumers
        if update_names & set(elided):
            rejected.append((names_of(indices), "dirty-target-update"))
            for i in indices:
                final.append(FusionGroup(members=(i,), fused=False))
            continue
        final.append(FusionGroup(
            members=tuple(indices), fused=True,
            elided=tuple(elided), materialized=tuple(materialized),
            bytes_saved=bytes_saved))

    # ---- wave layering (Kahn levels over the group DAG) ----------------
    node_group: dict[int, int] = {}
    for gi, g in enumerate(final):
        for i in g.members:
            node_group[i] = gi
    gpreds: dict[int, set[int]] = {gi: set() for gi in range(len(final))}
    for e in edges:
        sg, dg = node_group[e.src], node_group[e.dst]
        if sg != dg:
            gpreds[dg].add(sg)
    level: dict[int, int] = {}
    remaining = set(range(len(final)))
    depth = 0
    while remaining:
        ready = sorted(gi for gi in remaining
                       if gpreds[gi] <= set(level))
        if not ready:  # pragma: no cover - DAG by construction (j < i edges)
            ready = sorted(remaining)
        for gi in ready:
            level[gi] = depth
        remaining -= set(ready)
        depth += 1
    waves: list[tuple[int, ...]] = [
        tuple(gi for gi in range(len(final)) if level[gi] == d)
        for d in range(depth)
    ]
    final = [
        FusionGroup(members=g.members, fused=g.fused, wave=level[gi],
                    elided=g.elided, materialized=g.materialized,
                    bytes_saved=g.bytes_saved)
        for gi, g in enumerate(final)
    ]
    return TaskGraphPlan(
        nodes=tuple(nodes), edges=tuple(edges), groups=tuple(final),
        waves=tuple(waves), rejected=tuple(dict.fromkeys(rejected)))


# ------------------------------------------------------------- region merging
class FusedRegion(TargetRegion):
    """A :class:`TargetRegion` assembled from a fusion group.

    Carries the member names (``fused_members``) and the elided
    intermediates (``fused_elided``) so the device plugin can journal the
    fused submission and spill elided locals for later re-staging."""

    def __init__(
        self,
        name: str,
        pragmas: tuple[str, ...],
        loops: list[ParallelLoop],
        locals_: dict[str, str],
        memory_intensity: float,
        fused_members: tuple[str, ...],
        fused_elided: tuple[str, ...],
    ) -> None:
        super().__init__(name, pragmas, loops, locals_=locals_,
                         memory_intensity=memory_intensity)
        self.fused_members = fused_members
        self.fused_elided = fused_elided


def _rename_loop(loop: ParallelLoop, suffix: str,
                 taken: set[str]) -> ParallelLoop:
    """Give the loop a collision-free loop variable, rewriting the bound
    expressions in its partition pragma to match.  ``dataclasses.replace``
    re-runs the pragma analysis, so partitions re-derive for the new name."""
    new_var = f"{loop.loop_var}{suffix}"
    while new_var in taken:
        new_var += "_"
    taken.add(new_var)
    partition = loop.partition_pragma
    if partition:
        partition = re.sub(rf"\b{re.escape(loop.loop_var)}\b", new_var,
                           partition)
    return dataclasses.replace(loop, loop_var=new_var,
                               partition_pragma=partition)


def merge_group(
    members: list[GraphNode],
    elided: tuple[str, ...],
    scalars: Scalars,
) -> FusedRegion:
    """Build the fused region for one group (members in queue order).

    Loops concatenate with unique loop variables (their checkpoint keys and
    partition specs stay distinct), elided intermediates become region-local
    driver arrays, and the merged map set is the minimal cover: inputs only
    when no in-group producer precedes the first read, outputs whenever any
    member declared one.
    """
    elided_set = set(elided)
    produced: set[str] = set()
    need_in: set[str] = set()
    need_out: set[str] = set()
    first_item: dict[str, MapItem] = {}
    order: list[str] = []
    for node in members:
        for clause in node.region.maps:
            for item in clause.items:
                if item.name in elided_set:
                    continue
                if item.name not in first_item:
                    first_item[item.name] = item
                    order.append(item.name)
                if clause.map_type.is_input and item.name not in produced:
                    need_in.add(item.name)
                if clause.map_type.is_output:
                    need_out.add(item.name)
        produced.update(node.region.output_names)

    def merged_type(name: str) -> MapType:
        if name in need_in and name in need_out:
            return MapType.TOFROM
        if name in need_in:
            return MapType.TO
        if name in need_out:
            return MapType.FROM
        return MapType.ALLOC

    clauses: list[MapClause] = []
    for map_type in (MapType.TO, MapType.FROM, MapType.TOFROM, MapType.ALLOC):
        items = tuple(first_item[name] for name in order
                      if merged_type(name) == map_type)
        if items:
            clauses.append(MapClause(map_type=map_type, items=items))

    locals_: dict[str, str] = {}
    for name in elided:
        length: Optional[int] = None
        for node in members:
            try:
                length = node.region.declared_length(name, dict(scalars))
                break
            except RegionError:
                continue
        if length is None:
            raise RegionError(
                f"cannot size elided intermediate {name!r} for fusion")
        locals_[name] = str(length)

    taken = {name for node in members for name in
             (loop.loop_var for loop in node.region.loops)}
    taken |= set(scalars)
    loops: list[ParallelLoop] = []
    for k, node in enumerate(members):
        for loop in node.region.loops:
            loops.append(_rename_loop(loop, f"__f{k}", taken))

    devices = {node.region.device for node in members
               if node.region.device is not None}
    target = "omp target"
    if len(devices) == 1:
        target += f" device({next(iter(devices))})"
    pragmas = (target, "omp " + " ".join(str(c) for c in clauses))
    name = "+".join(node.region.name for node in members)
    intensity = max(node.region.memory_intensity for node in members)
    return FusedRegion(
        name, pragmas, loops, locals_, intensity,
        fused_members=tuple(node.region.name for node in members),
        fused_elided=elided,
    )
