"""AST for the OpenMP pragma dialect of the paper.

Covers the constructs Listings 1-2 use — ``target`` with ``device`` and
``map`` clauses, ``parallel for`` with ``reduction`` and ``schedule``, and the
partitioning ``target data map`` — plus the combined forms Clang accepts
(``target parallel for``).  The ``map`` item grammar follows the paper's
dialect: ``A[lb:ub]`` is the element range [lb, ub) ("the first element of
the partitioned data block followed by colon and the last element"); ``A[:ub]``
starts at 0, bare ``A`` maps the whole variable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.exprs import Expr


class MapType(enum.Enum):
    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"

    @property
    def is_input(self) -> bool:
        return self in (MapType.TO, MapType.TOFROM)

    @property
    def is_output(self) -> bool:
        return self in (MapType.FROM, MapType.TOFROM)


@dataclass(frozen=True)
class MapItem:
    """One variable reference inside a map clause."""

    name: str
    lower: Optional[Expr] = None
    upper: Optional[Expr] = None

    @property
    def has_section(self) -> bool:
        return self.upper is not None

    @property
    def is_loop_dependent(self) -> bool:
        """Does any bound reference a variable other than problem-size
        constants?  (The partition analysis refines this with the actual
        loop variable name.)"""
        vs = set()
        if self.lower is not None:
            vs |= self.lower.variables()
        if self.upper is not None:
            vs |= self.upper.variables()
        return bool(vs)

    def __str__(self) -> str:
        if not self.has_section:
            return self.name
        lo = str(self.lower) if self.lower is not None else ""
        return f"{self.name}[{lo}:{self.upper}]"


@dataclass(frozen=True)
class MapClause:
    map_type: MapType
    items: tuple[MapItem, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.items)
        return f"map({self.map_type.value}: {inner})"


#: OpenMP reduction operators and their identity/combiner semantics.
REDUCTION_OPS = {
    "+": (0, lambda a, b: a + b),
    "*": (1, lambda a, b: a * b),
    "max": (float("-inf"), max),
    "min": (float("inf"), min),
    "|": (0, lambda a, b: a | b),
    "&": (-1, lambda a, b: a & b),
    "^": (0, lambda a, b: a ^ b),
}


@dataclass(frozen=True)
class ReductionClause:
    op: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in REDUCTION_OPS:
            raise ValueError(
                f"unsupported reduction operator {self.op!r}; known: {sorted(REDUCTION_OPS)}"
            )

    def __str__(self) -> str:
        return f"reduction({self.op}: {', '.join(self.variables)})"


@dataclass(frozen=True)
class ScheduleClause:
    kind: str  # static | dynamic | guided
    chunk: Optional[int] = None


class Pragma:
    """Base class of parsed pragmas."""


@dataclass(frozen=True)
class TargetConstruct(Pragma):
    """``#pragma omp target [device(...)] [map(...)]*``"""

    device: Optional[str] = None
    maps: tuple[MapClause, ...] = ()

    def map_items(self, map_type: MapType | None = None) -> list[MapItem]:
        out = []
        for clause in self.maps:
            if map_type is None or clause.map_type == map_type:
                out.extend(clause.items)
        return out


@dataclass(frozen=True)
class TargetDataConstruct(Pragma):
    """``#pragma omp target data map(...)*`` — the partitioning extension.

    The paper reuses this directive (no new syntax) inside the parallel loop
    to declare per-iteration data blocks.
    """

    maps: tuple[MapClause, ...] = ()

    def map_items(self, map_type: MapType | None = None) -> list[MapItem]:
        out = []
        for clause in self.maps:
            if map_type is None or clause.map_type == map_type:
                out.extend(clause.items)
        return out


@dataclass(frozen=True)
class ParallelForConstruct(Pragma):
    """``#pragma omp parallel for [reduction(...)] [schedule(...)]``"""

    reductions: tuple[ReductionClause, ...] = ()
    schedule: Optional[ScheduleClause] = None
    num_threads: Optional[int] = None


#: Directives whose semantics require shared memory; the cloud device rejects
#: regions containing them (Section III-D).
UNSUPPORTED_DIRECTIVES = frozenset({"atomic", "flush", "barrier", "critical", "master"})


@dataclass(frozen=True)
class UnsupportedConstruct(Pragma):
    """A parsed-but-rejected synchronization directive."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in UNSUPPORTED_DIRECTIVES:
            raise ValueError(f"{self.name!r} is not one of the rejected directives")
