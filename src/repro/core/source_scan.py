"""Scanning annotated C source for offloadable regions.

The paper's front end is Clang: it sees Listing 1 as written.  This module
brings the reproduction as close as Python can get — it scans real C source
text for the pragma groups and loop headers of the OmpCloud dialect and
builds the corresponding :class:`~repro.core.api.TargetRegion` skeletons.
Loop *bodies* stay native in the paper (JNI kernels); here they are supplied
as Python tile functions keyed by loop variable, playing the JNI kernel's
role.

Supported shape (exactly the paper's listings):

    #pragma omp target device(CLOUD)
    #pragma omp map(to: A[:N*N], B[:N*N]) map(from: C[:N*N])
    #pragma omp parallel for
    for (int i = 0; i < N; ++i)
        ...loop body...
        #pragma omp target data map(to: A[i*N:(i+1)*N]) map(from: C[i*N:(i+1)*N])
        ...

Multiple ``parallel for`` loops inside one target region (2MM/3MM style) are
recognized; a ``target data`` pragma between a loop header and the next loop
attaches to the *preceding* loop (the paper places it inside the loop body,
line 5 of Listing 2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.api import ParallelLoop, TargetRegion
from repro.core.omp_ast import (
    ParallelForConstruct,
    TargetConstruct,
    TargetDataConstruct,
    UnsupportedConstruct,
)
from repro.core.parser import DirectiveError, parse_pragma


class SourceScanError(Exception):
    """The source does not follow the supported annotated shape."""


#: ``for (int i = 0; i < N; ++i)`` — the canonical normalized DOALL header.
_FOR_RE = re.compile(
    r"""for\s*\(\s*
        (?:int\s+)?(?P<var>[A-Za-z_]\w*)\s*=\s*0\s*;\s*
        (?P=var)\s*<\s*(?P<bound>[^;]+?)\s*;\s*
        (?:\+\+\s*(?P=var)|(?P=var)\s*\+\+)\s*
        \)""",
    re.VERBOSE,
)

_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+(omp\s.*?)\s*$")


@dataclass
class ScannedLoop:
    """One ``parallel for`` found in the source."""

    loop_var: str
    trip_count: str
    pragma: str
    partition_pragma: str | None = None


@dataclass
class ScannedRegion:
    """One ``target`` region found in the source."""

    pragmas: list[str] = field(default_factory=list)
    loops: list[ScannedLoop] = field(default_factory=list)
    device: str | None = None


def scan_source(source: str) -> list[ScannedRegion]:
    """Extract the offloadable regions of annotated C source text."""
    events = _lex_events(source)
    regions: list[ScannedRegion] = []
    current: ScannedRegion | None = None
    pending_pf: str | None = None

    for kind, payload in events:
        if kind == "pragma":
            parsed = _parse(payload)
            nodes = parsed if isinstance(parsed, tuple) else (parsed,)
            for node in nodes:
                if isinstance(node, UnsupportedConstruct):
                    raise SourceScanError(
                        f"region uses unsupported '{node.name}' directive "
                        f"(paper Section III-D)"
                    )
                if isinstance(node, TargetConstruct):
                    if node.device is not None or current is None:
                        current = ScannedRegion()
                        regions.append(current)
                    current.pragmas.append(payload)
                    if node.device is not None:
                        current.device = node.device
                elif isinstance(node, ParallelForConstruct):
                    if current is None:
                        raise SourceScanError(
                            f"'parallel for' outside any target region: {payload!r}"
                        )
                    pending_pf = payload
                elif isinstance(node, TargetDataConstruct):
                    if current is None or not current.loops:
                        raise SourceScanError(
                            f"'target data' with no preceding loop: {payload!r}"
                        )
                    current.loops[-1].partition_pragma = payload
        else:  # for-header
            var, bound = payload
            if current is None or pending_pf is None:
                continue  # an un-annotated loop: not offloaded
            current.loops.append(
                ScannedLoop(loop_var=var, trip_count=bound, pragma=pending_pf)
            )
            pending_pf = None

    return [r for r in regions if r.loops]


def region_from_source(
    source: str,
    name: str,
    bodies: Mapping[str, Callable] | Callable | None = None,
    reads: Mapping[str, tuple[str, ...]] | None = None,
    writes: Mapping[str, tuple[str, ...]] | None = None,
    locals_: Mapping[str, str] | None = None,
    memory_intensity: float = 1.0,
    flops_per_iter: Mapping[str, object] | None = None,
) -> TargetRegion:
    """Build a runnable :class:`TargetRegion` from annotated C source.

    ``bodies`` maps loop variable -> tile body (or a single callable when the
    region has one loop); ``reads``/``writes`` map loop variable -> variable
    names the kernel touches (defaulting to the partition pragma's variables).
    """
    scanned = scan_source(source)
    if len(scanned) != 1:
        raise SourceScanError(
            f"expected exactly one target region in the source, found {len(scanned)}"
        )
    region = scanned[0]
    loops = []
    for sl in region.loops:
        body = None
        if callable(bodies):
            if len(region.loops) != 1:
                raise SourceScanError(
                    "a single body callable needs a single-loop region; "
                    "pass a {loop_var: body} mapping instead"
                )
            body = bodies
        elif bodies is not None:
            body = bodies.get(sl.loop_var)
        loop_reads = (reads or {}).get(sl.loop_var)
        loop_writes = (writes or {}).get(sl.loop_var)
        if loop_reads is None or loop_writes is None:
            inferred_r, inferred_w = _infer_access(sl, body)
            loop_reads = loop_reads if loop_reads is not None else inferred_r
            loop_writes = loop_writes if loop_writes is not None else inferred_w
            if sl.partition_pragma is None and not loop_reads and not loop_writes:
                # Nothing to infer from: without access sets the runtime
                # would silently ship *no* data and the kernel would compute
                # on garbage.  Refuse loudly instead.
                raise SourceScanError(
                    f"loop over {sl.loop_var!r} has no partition pragma and "
                    f"no explicit reads=/writes=; cannot infer which "
                    f"variables the kernel touches — pass "
                    f"reads={{{sl.loop_var!r}: (...)}} and "
                    f"writes={{{sl.loop_var!r}: (...)}}, or add a "
                    f"'target data map(...)' pragma inside the loop"
                )
        loops.append(
            ParallelLoop(
                pragma=sl.pragma,
                loop_var=sl.loop_var,
                trip_count=sl.trip_count,
                reads=loop_reads,
                writes=loop_writes,
                partition_pragma=sl.partition_pragma,
                body=body,
                flops_per_iter=(flops_per_iter or {}).get(sl.loop_var),
            )
        )
    return TargetRegion(
        name=name,
        pragmas=region.pragmas,
        loops=loops,
        locals_=locals_,
        memory_intensity=memory_intensity,
    )


# ------------------------------------------------------------------ internals
def _lex_events(source: str) -> list[tuple[str, object]]:
    """Interleave pragma lines and for-headers in source order."""
    events: list[tuple[int, str, object]] = []
    for m in _FOR_RE.finditer(source):
        events.append((m.start(), "for", (m.group("var"), m.group("bound").strip())))
    offset = 0
    for line in source.splitlines(keepends=True):
        m = _PRAGMA_RE.match(line)
        if m:
            events.append((offset, "pragma", m.group(1).strip()))
        offset += len(line)
    events.sort(key=lambda e: e[0])
    return [(kind, payload) for _, kind, payload in events]


def _parse(pragma_text: str):
    try:
        return parse_pragma(pragma_text)
    except DirectiveError as e:
        raise SourceScanError(str(e)) from e


def _infer_access(sl: ScannedLoop, body=None) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Default reads/writes for a scanned loop.

    With a kernel ``body`` bound, the shared dataflow pass
    (:func:`repro.analysis.dataflow.analyze_body`) is authoritative — the
    same analysis ``repro lint`` uses, so source scanning can no longer
    misclassify a write-only array as an input just because its partition
    says ``map(to:)``.  When the dataflow summary is *incomplete*, the
    body-derived sets are unioned with the pragma-derived ones (degrade by
    widening, never by dropping).  Without a body, the partition pragma's
    map types remain the only evidence, as before.
    """
    pragma_reads: list[str] = []
    pragma_writes: list[str] = []
    if sl.partition_pragma is not None:
        parsed = parse_pragma(sl.partition_pragma)
        assert isinstance(parsed, TargetDataConstruct)
        for clause in parsed.maps:
            for item in clause.items:
                if clause.map_type.is_input and item.name not in pragma_reads:
                    pragma_reads.append(item.name)
                if clause.map_type.is_output and item.name not in pragma_writes:
                    pragma_writes.append(item.name)
    if body is None:
        return tuple(pragma_reads), tuple(pragma_writes)
    # Imported here: repro.analysis builds on repro.core, not the reverse.
    from repro.analysis.dataflow import analyze_body

    access = analyze_body(body)
    if not access.source_available:
        return tuple(pragma_reads), tuple(pragma_writes)
    reads = sorted(access.reads)
    writes = sorted(access.writes)
    if not access.complete:
        reads = sorted(set(reads) | set(pragma_reads))
        writes = sorted(set(writes) | set(pragma_writes))
    return tuple(reads), tuple(writes)
