"""Resilience subsystem: retry policy, circuit breaking, durable recovery.

Grown from the original single-module resilience layer (PR 1) into a
package:

* :mod:`repro.resilience.policies` — retry policies, ``retry_call``, the
  circuit breaker (the original module, unchanged semantics).
* :mod:`repro.resilience.integrity` — deterministic content checksums for
  end-to-end transfer verification.
* :mod:`repro.resilience.journal` — the write-ahead offload journal with
  crash-consistent (CRC-sealed, torn-tail-tolerant) JSONL records.
* :mod:`repro.resilience.recovery` — journal replay into the durable state
  a replacement driver resumes from (committed tiles, live data-environment
  handles, already-synced dirty entries).
* :mod:`repro.resilience.chaos` — the seeded fault-injection harness behind
  ``repro chaos`` (deterministic fault plans, oracle and invariant checks).

The original public names are re-exported here so ``from repro.resilience
import RetryPolicy`` keeps working everywhere.
"""

from repro.resilience.chaos import ChaosResult, chaos_faults, run_chaos
from repro.resilience.integrity import (
    checksum_matches,
    content_checksum,
    virtual_checksum,
)
from repro.resilience.journal import RECORD_KINDS, JournalRecord, OffloadJournal
from repro.resilience.policies import (
    CircuitBreaker,
    RetryHook,
    RetryPolicy,
    retry_call,
)
from repro.resilience.recovery import (
    RecoveryState,
    TileCheckpoint,
    replay_journal,
)

__all__ = [
    "RECORD_KINDS",
    "ChaosResult",
    "CircuitBreaker",
    "JournalRecord",
    "OffloadJournal",
    "RecoveryState",
    "RetryHook",
    "RetryPolicy",
    "TileCheckpoint",
    "chaos_faults",
    "checksum_matches",
    "content_checksum",
    "replay_journal",
    "retry_call",
    "run_chaos",
    "virtual_checksum",
]
