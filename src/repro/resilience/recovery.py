"""Recovery state: what the journal says survived a crash.

:func:`replay_journal` folds an offload journal into a
:class:`RecoveryState` — the durable facts a replacement driver can rely on:

* which tiles of which offload committed verified checkpoints
  (→ the resubmitted job schedules only the remainder);
* which mapped buffers still have a trustworthy device copy
  (→ ``data_begin`` re-adopts the handle instead of re-staging);
* which dirty entries were already synced back to the host
  (→ ``invalidate_data_env`` syncs each exactly once, even if recovery
  itself is interrupted and re-run).

Replay is pure and idempotent: the same journal always folds to the same
state, so recovery can be re-entered safely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.resilience.journal import JournalRecord


@dataclass(frozen=True)
class TileCheckpoint:
    """One committed tile output, verifiable by key + checksum."""

    region: str
    loop_var: str
    tile: int          # tile index within the loop's tiling
    lo: int            # iteration bounds the tile covered
    hi: int
    key: str           # storage key of the committed output
    checksum: str      # content/virtual checksum recorded at commit
    nbytes: int
    completed_at: float


class RecoveryState:
    """The fold of a journal: durable progress, keyed for fast lookup."""

    def __init__(self) -> None:
        #: correlation id -> number of region_submit records seen.
        self.submissions: dict[str, int] = {}
        #: correlation id -> member region names of a fused submission
        #: (docs/TASKGRAPH.md): checkpoints replay against the fused job's
        #: correlation, never against the member regions on their own.
        self.fused_members: dict[str, tuple[str, ...]] = {}
        #: (correlation id, loop var) -> {tile index: checkpoint}.
        self._tiles: dict[tuple[str, str], dict[int, TileCheckpoint]] = {}
        #: buffer name -> (storage key, checksum) of its live device copy.
        self._env_handles: dict[str, tuple[str, str]] = {}
        #: (buffer name, storage key) pairs already synced back to the host.
        self._synced: set[tuple[str, str]] = set()
        #: correlation id -> {output name: storage key} of committed outputs.
        self.output_commits: dict[str, dict[str, str]] = {}
        #: corruption detections recorded in the journal.
        self.corruptions: int = 0
        #: resume records seen (a resubmission picked up from checkpoints).
        self.resumes: int = 0

    # ------------------------------------------------------------------ tiles
    def completed_tiles(self, correlation_id: str
                        ) -> dict[str, dict[int, TileCheckpoint]]:
        """``{loop_var: {tile index: checkpoint}}`` for one offload."""
        out: dict[str, dict[int, TileCheckpoint]] = {}
        for (corr, loop_var), tiles in self._tiles.items():
            if corr == correlation_id and tiles:
                out[loop_var] = dict(tiles)
        return out

    # ----------------------------------------------------- data environments
    def env_handle(self, name: str) -> tuple[str, str] | None:
        """The (key, checksum) of ``name``'s durable device copy, if any."""
        return self._env_handles.get(name)

    def live_env_names(self) -> frozenset[str]:
        return frozenset(self._env_handles)

    def already_synced(self, name: str, key: str) -> bool:
        """Whether this dirty device copy was already synced to the host."""
        return (name, key) in self._synced


def replay_journal(records: Iterable[JournalRecord]) -> RecoveryState:
    """Fold ``records`` (in journal order) into a :class:`RecoveryState`."""
    state = RecoveryState()
    for rec in records:
        p: Mapping = rec.payload
        if rec.kind == "region_submit":
            corr = rec.correlation_id
            state.submissions[corr] = state.submissions.get(corr, 0) + 1
        elif rec.kind == "region_fused":
            state.fused_members[rec.correlation_id] = tuple(
                str(m) for m in p.get("members", ()))
        elif rec.kind == "tile_done":
            ckpt = TileCheckpoint(
                region=str(p.get("region", "")),
                loop_var=str(p.get("loop_var", "")),
                tile=int(p.get("tile", -1)),
                lo=int(p.get("lo", 0)), hi=int(p.get("hi", 0)),
                key=str(p.get("key", "")),
                checksum=str(p.get("checksum", "")),
                nbytes=int(p.get("nbytes", 0)),
                completed_at=float(p.get("end", rec.time)),
            )
            if ckpt.tile >= 0 and ckpt.key:
                bucket = state._tiles.setdefault(
                    (rec.correlation_id, ckpt.loop_var), {})
                bucket[ckpt.tile] = ckpt
        elif rec.kind == "output_commit":
            name = str(p.get("name", ""))
            key = str(p.get("key", ""))
            if name and key:
                outs = state.output_commits.setdefault(rec.correlation_id, {})
                outs[name] = key
                # A committed output *is* that buffer's device copy now
                # (data_end defers downloads for persistent mappings).
                state._env_handles[name] = (key, str(p.get("checksum", "")))
        elif rec.kind == "env_enter" or rec.kind == "env_update":
            name = str(p.get("name", ""))
            key = str(p.get("key", ""))
            if name and key:
                state._env_handles[name] = (key, str(p.get("checksum", "")))
        elif rec.kind == "env_exit":
            state._env_handles.pop(str(p.get("name", "")), None)
        elif rec.kind == "env_sync":
            name = str(p.get("name", ""))
            key = str(p.get("key", ""))
            if name and key:
                state._synced.add((name, key))
        elif rec.kind == "resume":
            state.resumes += 1
        elif rec.kind == "corruption":
            state.corruptions += 1
    return state
