"""Deterministic chaos harness: multi-seed fault sweeps with oracles.

``repro chaos`` drives this module.  Each (benchmark, seed) pair derives a
fault plan from a stable hash — SSH flakes, failed submissions, a corrupted
staged object, a driver death calibrated to land mid-way through the tile
wave — runs the workload functionally, and asserts two things:

* **bit-closeness** — the outputs match the NumPy oracle within the same
  tolerance the validation suite uses, no matter what faults were injected;
* **report invariants** — the offload report is internally consistent and
  agrees with the event stream (corruption detections match the storage's
  own counter, the ``target_end`` event carries the report's wall time,
  recovery counters respect the configured policy).

Everything is simulated time and stable hashing: the same seed always
produces the same faults, the same recovery, the same report.  Journals can
be dumped per run (``--journal-dir``) so CI failures ship the evidence.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
import zlib
from dataclasses import dataclass, field

TOLERANCE = {"rtol": 3e-5, "atol": 1e-4}


@dataclass
class ChaosResult:
    """Outcome of one seeded chaos run."""

    benchmark: str
    seed: int
    recovery: str
    ok: bool = True
    device: str = ""
    max_abs_error: float = 0.0
    resumes: int = 0
    tiles_skipped: int = 0
    tiles_checkpointed: int = 0
    corruption_detected: int = 0
    restaged_inputs: int = 0
    resubmissions: int = 0
    fell_back_to_host: bool = False
    injected: dict[str, object] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)

    def to_item(self) -> dict[str, object]:
        """One entry of the shared ``json_report`` item list."""
        return {
            "name": f"{self.benchmark}@seed{self.seed}",
            "ok": self.ok,
            "recovery": self.recovery,
            "device": self.device,
            "max_abs_error": self.max_abs_error,
            "resumes": self.resumes,
            "tiles_skipped": self.tiles_skipped,
            "tiles_checkpointed": self.tiles_checkpointed,
            "corruption_detected": self.corruption_detected,
            "restaged_inputs": self.restaged_inputs,
            "resubmissions": self.resubmissions,
            "fell_back_to_host": self.fell_back_to_host,
            "injected": dict(self.injected),
            "failures": list(self.failures),
        }


def chaos_faults(benchmark: str, seed: int
                 ) -> tuple[int, int, dict[str, int], bool, float]:
    """Derive the injected faults for one (benchmark, seed) pair.

    Stable hashing (zlib.crc32, like the rest of the simulator's jitter)
    keeps the sweep deterministic across processes and platforms.  Returns
    ``(ssh_failures, submit_failures, corrupt_keys, kill_driver,
    death_fraction)`` where ``death_fraction`` positions the driver death
    within the calibrated tile wave.
    """
    h = zlib.crc32(f"chaos:{benchmark}:{seed}".encode())
    ssh = h & 1
    submit = (h >> 1) & 1
    corrupt = {"in/": 1} if (h >> 2) & 1 else {}
    kill_driver = ((h >> 3) & 3) != 0  # 3 in 4 runs lose the driver mid-job
    death_fraction = 0.25 + ((h >> 5) % 51) / 100.0  # 0.25 .. 0.75
    return ssh, submit, corrupt, kill_driver, death_fraction


def _make_runtime(recovery: str, fault_plan, n_workers: int, cores: int):
    from repro.core.plugin_cloud import CloudDevice
    from repro.core.runtime import OffloadRuntime
    from repro.metrics.figures import demo_config

    config = dataclasses.replace(demo_config(n_workers=n_workers),
                                 min_compress_size=256, recovery=recovery)
    runtime = OffloadRuntime()
    runtime.register(CloudDevice(config, physical_cores=cores,
                                 fault_plan=fault_plan))
    return runtime


def _calibrate_death(spec, base_plan, seed: int, fraction: float,
                     n_workers: int, cores: int) -> float | None:
    """Dry-run the workload under the pre-death faults and place the death
    ``fraction`` of the way through the observed tile-commit wave.  The dry
    run uses the "resume" policy so every tile journals its completion."""
    from repro.core.api import offload

    runtime = _make_runtime("resume", base_plan, n_workers, cores)
    scalars = spec.scalars(spec.test_size)
    arrays = spec.inputs(spec.test_size, density=1.0, seed=seed)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        offload(spec.build_region("CLOUD"), arrays=arrays, scalars=scalars,
                runtime=runtime)
    journal = runtime.device("CLOUD").journal
    ends = sorted(r.payload["end"] for r in journal.records("tile_done"))
    if not ends:
        return None
    return ends[min(len(ends) - 1, int(fraction * len(ends)))]


def run_chaos(benchmark: str, seed: int, recovery: str = "resume",
              n_workers: int = 4, cores: int = 16,
              journal_dir: str | None = None) -> ChaosResult:
    """One seeded chaos run: inject, execute, verify, report."""
    import numpy as np

    from repro.core.api import offload
    from repro.obs.events import EventBus, use_bus
    from repro.spark.faults import FaultPlan
    from repro.workloads import WORKLOADS

    spec = WORKLOADS[benchmark]
    ssh, submit, corrupt, kill_driver, fraction = chaos_faults(benchmark, seed)
    base_plan = FaultPlan(ssh_connect_failures=ssh,
                          spark_submit_failures=submit,
                          corrupt_keys=corrupt)
    death_at = (_calibrate_death(spec, base_plan, seed, fraction,
                                 n_workers, cores)
                if kill_driver else None)
    plan = FaultPlan(ssh_connect_failures=ssh, spark_submit_failures=submit,
                     corrupt_keys=corrupt, driver_dies_at=death_at)

    result = ChaosResult(benchmark=benchmark, seed=seed, recovery=recovery,
                         injected={"ssh_failures": ssh,
                                   "submit_failures": submit,
                                   "corrupt_keys": dict(corrupt),
                                   "driver_dies_at": death_at})
    runtime = _make_runtime(recovery, plan, n_workers, cores)
    device = runtime.device("CLOUD")
    scalars = spec.scalars(spec.test_size)
    arrays = spec.inputs(spec.test_size, density=1.0, seed=seed)
    expected = spec.reference({k: v.copy() for k, v in arrays.items()}, scalars)

    bus = EventBus(keep_history=True)
    with use_bus(bus), warnings.catch_warnings():
        warnings.simplefilter("ignore")
        report = offload(spec.build_region("CLOUD"), arrays=arrays,
                         scalars=scalars, runtime=runtime)

    result.device = report.device_name
    result.resumes = report.resumes
    result.tiles_skipped = report.tiles_skipped
    result.tiles_checkpointed = report.tiles_checkpointed
    result.corruption_detected = report.corruption_detected
    result.restaged_inputs = report.restaged_inputs
    result.resubmissions = report.resubmissions
    result.fell_back_to_host = report.fell_back_to_host

    # --- bit-closeness against the oracle, faults notwithstanding ----------
    result.max_abs_error = max(
        (float(np.max(np.abs(arrays[k] - v))) for k, v in expected.items()),
        default=0.0,
    )
    for name, want in expected.items():
        if not np.allclose(arrays[name], want, **TOLERANCE):
            result.failures.append(f"output {name!r} diverged from the oracle")

    # --- report invariants --------------------------------------------------
    max_resub = device.config.max_resubmissions
    if report.resubmissions > max_resub:
        result.failures.append(
            f"resubmissions {report.resubmissions} > limit {max_resub}")
    if recovery != "resume" and report.tiles_skipped:
        result.failures.append(
            f"tiles_skipped={report.tiles_skipped} under policy {recovery!r}")
    if report.fell_back_to_host != (report.device_name == "HOST"):
        result.failures.append("fell_back_to_host disagrees with device_name")
    if not report.fell_back_to_host and report.tasks_run <= 0:
        result.failures.append("cloud offload reported no tasks run")
    if report.full_s < 0.0:
        result.failures.append(f"negative wall time {report.full_s}")

    # --- event-stream consistency ------------------------------------------
    detections = bus.events_of("corruption_detected")
    get_detections = [e for e in detections if e.op == "GET"]
    if len(get_detections) != device.storage.corruption_count:
        result.failures.append(
            f"{len(get_detections)} corruption events vs storage counter "
            f"{device.storage.corruption_count}")
    target_ends = bus.events_of("target_end")
    if not target_ends:
        result.failures.append("no target_end event observed")
    elif abs(target_ends[-1].full_s - report.full_s) > 1e-6:
        result.failures.append(
            f"target_end full_s {target_ends[-1].full_s} != report "
            f"{report.full_s}")

    result.ok = not result.failures
    if journal_dir:
        os.makedirs(journal_dir, exist_ok=True)
        device.journal.dump(os.path.join(
            journal_dir, f"journal_{benchmark}_seed{seed}.jsonl"))
    return result
