"""Write-ahead offload journal: crash-consistent records of offload progress.

The journal is the durability backbone of the recovery subsystem.  The
plugin appends a record *before or at* every state transition that recovery
may need to replay — region submission, per-tile completion, data-environment
enter/exit/update, dirty-entry sync, output commit — keyed by the offload's
correlation id.  After a driver death the resubmitted job replays the journal
(:meth:`OffloadJournal.replay`) and schedules only the tiles whose committed
checkpoints it can still verify.

Records serialize to JSON Lines.  Each line carries a monotonically
increasing sequence number and a CRC over its own canonical encoding, so a
journal truncated mid-write (a torn tail — the classic crash artifact) is
detected and the damaged suffix is dropped instead of poisoning recovery:
:meth:`OffloadJournal.from_lines` keeps the longest valid prefix.

Everything is in-memory and deterministic; ``dump``/``from_lines`` exist so
the chaos harness can persist journals as CI artifacts and tests can
round-trip them through real crash-shaped corruption.
"""

from __future__ import annotations

import itertools
import json
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

#: Every record kind the journal accepts.  Recovery understands all of them;
#: unknown kinds are rejected at write time so a typo fails fast.
RECORD_KINDS = frozenset({
    "region_submit",   # an offload region was handed to the device
    "region_fused",    # the submission is a fused multi-region job
    "tile_done",       # one tile's output was committed to storage
    "output_commit",   # a region output object became authoritative
    "env_enter",       # target data: a buffer was mapped (staged or alloc'd)
    "env_exit",        # target data: a mapping was released
    "env_update",      # target update / re-stage: device copy replaced
    "env_sync",        # a dirty device copy was synced back to the host
    "resume",          # a resubmission resumed from committed checkpoints
    "corruption",      # a corrupt object was detected on read
})


def _crc(payload: str) -> int:
    return zlib.crc32(payload.encode()) & 0xFFFFFFFF


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry.  ``payload`` is kind-specific detail (tile bounds,
    storage keys, checksums...); ``correlation_id`` ties the record to one
    offload (``"<region>#<seq>"``, as stamped by the event bus)."""

    seq: int
    kind: str
    correlation_id: str
    time: float
    payload: Mapping[str, Any] = field(default_factory=dict)

    def _body(self) -> str:
        return json.dumps(
            {"seq": self.seq, "kind": self.kind, "corr": self.correlation_id,
             "time": self.time, "payload": dict(self.payload)},
            sort_keys=True, separators=(",", ":"),
        )

    def encode(self) -> str:
        """One JSONL line, CRC-sealed against torn or bit-flipped writes."""
        body = self._body()
        return json.dumps({"crc": _crc(body), "rec": body},
                          separators=(",", ":"))

    @classmethod
    def decode(cls, line: str) -> "JournalRecord | None":
        """Parse one line; ``None`` for anything damaged (bad JSON, missing
        fields, CRC mismatch) — the caller decides how much tail to drop."""
        try:
            outer = json.loads(line)
            body = outer["rec"]
            if _crc(body) != outer["crc"]:
                return None
            raw = json.loads(body)
            kind = raw["kind"]
            if kind not in RECORD_KINDS:
                return None
            return cls(seq=int(raw["seq"]), kind=kind,
                       correlation_id=str(raw["corr"]),
                       time=float(raw["time"]),
                       payload=dict(raw.get("payload", {})))
        except (ValueError, KeyError, TypeError):
            return None


class OffloadJournal:
    """Append-only, thread-safe record log for one device.

    Thread-safe because buffer staging runs one thread per buffer; records
    from concurrent uploads interleave but each append is atomic and
    sequence numbers stay strictly increasing.
    """

    def __init__(self) -> None:
        self._records: list[JournalRecord] = []
        self._lock = threading.Lock()
        self._seq = itertools.count(1)

    def record(self, kind: str, correlation_id: str = "",
               time: float = 0.0, **payload: Any) -> JournalRecord:
        """Append one record and return it."""
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        with self._lock:
            rec = JournalRecord(seq=next(self._seq), kind=kind,
                                correlation_id=correlation_id,
                                time=time, payload=payload)
            self._records.append(rec)
        return rec

    def records(self, kind: str | None = None) -> list[JournalRecord]:
        with self._lock:
            recs = list(self._records)
        if kind is not None:
            recs = [r for r in recs if r.kind == kind]
        return recs

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self.records())

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # ------------------------------------------------------------ persistence
    def lines(self) -> list[str]:
        """The journal as JSONL lines (CRC-sealed, ready to write out)."""
        return [r.encode() for r in self.records()]

    def dump(self, path: str) -> None:
        """Write the journal to ``path`` as JSONL (chaos-harness artifacts)."""
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.lines():
                fh.write(line + "\n")

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "OffloadJournal":
        """Rebuild a journal from JSONL, keeping the longest valid prefix.

        A record that fails to decode — or whose sequence number does not
        follow its predecessor — marks the torn tail: it and everything
        after it are dropped.  This is the crash-consistency contract: a
        partially flushed journal yields a consistent (if shorter) history,
        never a corrupted one.
        """
        journal = cls()
        last_seq = 0
        kept: list[JournalRecord] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            rec = JournalRecord.decode(line)
            if rec is None or rec.seq <= last_seq:
                break
            kept.append(rec)
            last_seq = rec.seq
        journal._records = kept
        journal._seq = itertools.count(last_seq + 1)
        return journal

    # --------------------------------------------------------------- recovery
    def replay(self) -> "RecoveryState":
        """Fold the journal into the recovery view of durable state."""
        from repro.resilience.recovery import replay_journal
        return replay_journal(self.records())
