"""End-to-end transfer integrity: deterministic content checksums.

Every object that crosses the WAN or the cluster fabric carries a checksum
computed here.  Real payloads (functional mode) are digested byte-for-byte;
virtual objects (modeled mode, size-only) get a stable digest of their key
and size so the verification *protocol* is exercised even when no payload
exists.  CRC32 is plenty for a simulator — the point is the plumbing
(compute on write, verify on read, repair on mismatch), not cryptographic
strength — and it is fully deterministic, so simulated runs replay
bit-identically.

Checksum strings are self-describing (``crc32:...`` / ``virt:...``) so a
digest computed over real bytes never accidentally compares equal to one
computed for a virtual object of the same key.
"""

from __future__ import annotations

import zlib

#: Prefix for digests of materialized payloads.
CONTENT_PREFIX = "crc32"
#: Prefix for digests of virtual (size-only) objects.
VIRTUAL_PREFIX = "virt"


def content_checksum(data: bytes) -> str:
    """Digest of a real payload, e.g. ``crc32:0a1b2c3d``."""
    return f"{CONTENT_PREFIX}:{zlib.crc32(data) & 0xFFFFFFFF:08x}"


def virtual_checksum(key: str, size: int) -> str:
    """Stable digest standing in for a virtual object's (absent) payload."""
    digest = zlib.crc32(f"{key}:{size}".encode()) & 0xFFFFFFFF
    return f"{VIRTUAL_PREFIX}:{digest:08x}"


def checksum_matches(expected: str, actual: str) -> bool:
    """Whether two digests agree (empty ``expected`` means "not recorded",
    which verifies trivially — there is nothing to contradict)."""
    return not expected or expected == actual
