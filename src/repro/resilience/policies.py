"""Unified resilience primitives for the offload pipeline.

WAN offloading fails constantly in practice: storage services throttle, SSH
sessions drop, spot instances vanish, Spark drivers die.  The successor
system to the paper (OMPC, arXiv:2207.05677) made fault tolerance a
first-class runtime concern for exactly this reason.  This module is the one
place that failure-handling *policy* lives; the mechanisms (what to retry,
how to resubmit, when to fall back to the host) are threaded through
:mod:`repro.core.plugin_cloud` and :mod:`repro.core.runtime`.

Three pieces:

* :class:`RetryPolicy` — declarative exponential backoff with jitter, a
  per-delay cap and a per-operation deadline.  All delays are *simulated*
  seconds; callers charge them to the :class:`~repro.simtime.clock.SimClock`.
* :func:`retry_call` — run one operation under a policy, invoking an
  ``on_retry`` hook (logging, backoff accounting) between attempts.
* :class:`CircuitBreaker` — trips open after K consecutive offload-level
  failures so the runtime stops hammering a dead cloud and degrades to host
  execution; optionally half-opens after a simulated cool-down.

Everything here is deterministic: jitter comes from a stable hash of the
operation key, never from wall-clock entropy, so simulated runs replay
bit-identically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Tuple, Type

from repro.obs.events import Retry, get_bus


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures of one operation class are retried.

    ``max_attempts`` counts total tries (1 = no retries).  The delay before
    retry *n* (1-based failure count) is::

        min(base_delay_s * multiplier ** (n - 1), max_delay_s)

    optionally scaled by a deterministic jitter in ``[1 - jitter, 1 + jitter]``
    derived from the operation key.  ``deadline_s`` caps the *total* backoff
    one operation may accumulate: a retry whose delay would exceed the
    remaining deadline budget is not attempted.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0.0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay_s < 0.0:
            raise ValueError(f"max_delay_s must be >= 0, got {self.max_delay_s}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s < 0.0:
            raise ValueError(f"deadline_s must be >= 0, got {self.deadline_s}")

    def delay_for(self, failure: int, key: str = "") -> float:
        """Backoff (simulated seconds) before the retry after ``failure``
        consecutive failures (1-based)."""
        if failure < 1:
            raise ValueError(f"failure count must be >= 1, got {failure}")
        delay = min(self.base_delay_s * self.multiplier ** (failure - 1),
                    self.max_delay_s)
        if self.jitter > 0.0:
            # Stable hash -> fraction in [0, 1); no wall-clock entropy, so
            # simulated runs replay identically.
            frac = (zlib.crc32(f"{key}#{failure}".encode()) % 10_000) / 10_000.0
            delay *= 1.0 + self.jitter * (2.0 * frac - 1.0)
        return delay

    def backoff_schedule(self, key: str = "") -> list[float]:
        """The delays a fully-failing operation would sleep, deadline applied."""
        out: list[float] = []
        total = 0.0
        for failure in range(1, self.max_attempts):
            delay = self.delay_for(failure, key)
            if self.deadline_s is not None and total + delay > self.deadline_s:
                break
            out.append(delay)
            total += delay
        return out


#: on_retry(failure_number, delay_s, exception) -> None
RetryHook = Callable[[int, float, BaseException], None]


def retry_call(
    policy: RetryPolicy,
    fn: Callable[..., Any],
    *args: Any,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    op_name: str = "",
    on_retry: RetryHook | None = None,
    now: Callable[[], float] | None = None,
    **kwargs: Any,
):
    """Run ``fn(*args, **kwargs)`` under ``policy``.

    Exceptions matching ``retry_on`` are retried; anything else propagates
    immediately.  ``on_retry`` fires before each retry with the failure
    count, the backoff to charge, and the exception — callers use it to log
    and to advance the simulated clock.  The last exception is re-raised when
    attempts (or the deadline budget) run out.

    Every retry is also published to the process event bus as a
    :class:`~repro.obs.events.Retry`, stamped with the simulated time from
    ``now()`` when given (0.0 otherwise).
    """
    last: BaseException | None = None
    backoff_total = 0.0
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(*args, **kwargs)
        except retry_on as exc:  # type: ignore[misc]
            last = exc
            if attempt == policy.max_attempts:
                break
            delay = policy.delay_for(attempt, key=op_name)
            if (policy.deadline_s is not None
                    and backoff_total + delay > policy.deadline_s):
                break
            backoff_total += delay
            get_bus().emit(Retry(
                time=now() if now is not None else 0.0,
                resource="host",
                op=op_name or getattr(fn, "__name__", "op"),
                attempt=attempt,
                delay_s=delay,
                error=str(exc),
            ))
            if on_retry is not None:
                on_retry(attempt, delay, exc)
    assert last is not None
    raise last


class CircuitBreaker:
    """Trip after K consecutive failures; optionally half-open after a rest.

    All times are simulated seconds supplied by the caller (the breaker never
    reads a clock itself).  State machine::

        closed --(K consecutive failures)--> open
        open   --(reset_after_s elapsed)---> half-open (one probe allowed)
        half-open --success--> closed      half-open --failure--> open again
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_after_s: float | None = None) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s is not None and reset_after_s < 0.0:
            raise ValueError(f"reset_after_s must be >= 0, got {reset_after_s}")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self.consecutive_failures = 0
        self.total_failures = 0
        self.total_trips = 0
        self._opened_at: float | None = None

    def record_failure(self, now: float = 0.0) -> None:
        """Note one offload-level failure at simulated time ``now``."""
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            if self._opened_at is None:
                self.total_trips += 1
            self._opened_at = now

    def record_success(self) -> None:
        """A successful offload closes the circuit and resets the count."""
        self.consecutive_failures = 0
        self._opened_at = None

    def is_open(self, now: float = 0.0) -> bool:
        """Whether offloads should be refused at simulated time ``now``."""
        if self._opened_at is None:
            return False
        if (self.reset_after_s is not None
                and now - self._opened_at >= self.reset_after_s):
            return False  # half-open: let one probe offload through
        return True

    def state(self, now: float = 0.0) -> str:
        if self._opened_at is None:
            return "closed"
        return "half-open" if not self.is_open(now) else "open"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker(state={self.state()!r}, "
                f"consecutive_failures={self.consecutive_failures}, "
                f"threshold={self.failure_threshold})")
