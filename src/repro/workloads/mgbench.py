"""MgBench kernels: Mat-mul and Collinear-list.

Collinear-list is the paper's low-communication case: it "processes a much
smaller amount of data than the other benchmarks, showing that cloud
offloading scales well when the dataset size stays small according to the
computation".  It counts exactly-collinear point triples — O(M^3) work over
a few hundred kilobytes of input — and uses the OpenMP ``reduction(+:...)``
clause, exercising the reduction path of Eq. 8.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.api import ParallelLoop, TargetRegion
from repro.workloads.datagen import matrix_for_density, random_points

# ------------------------------------------------------------------- MatMul


def _matmul_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    bm = np.asarray(arrays["B"]).reshape(n, n)
    at = np.asarray(arrays["A"][lo * n : hi * n]).reshape(hi - lo, n)
    arrays["C"][lo * n : hi * n] = (at @ bm).reshape(-1)


def matmul_region(device: str = "CLOUD") -> TargetRegion:
    """Plain C = A*B — Listing 1 of the paper."""
    return TargetRegion(
        name="matmul",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], B[:N*N]) map(from: C[:N*N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "B"),
                writes=("C",),
                partition_pragma=(
                    "omp target data map(to: A[i*N:(i+1)*N]) map(from: C[i*N:(i+1)*N])"
                ),
                body=_matmul_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2,
            )
        ],
        memory_intensity=1.0,
    )


def matmul_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "B": matrix_for_density(n * n, density, seed + 1),
        "C": np.zeros(n * n, dtype=np.float32),
    }


def matmul_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a, b = arrays["A"].reshape(n, n), arrays["B"].reshape(n, n)
    return {"C": (a @ b).astype(np.float32).reshape(-1)}


# ----------------------------------------------------------- Collinear-list


def _collinear_tile(lo, hi, arrays, scalars):
    """For each anchor i, count unordered pairs (j < k), both != i, that are
    collinear with point i.  Every collinear triple is counted exactly three
    times (once per anchor), keeping each iteration's cost identical — the
    balanced GPU-style formulation."""
    m = int(scalars["M"])
    pts = np.asarray(arrays["points"]).reshape(m, 2).astype(np.float64)
    count = arrays["count"]
    total = 0
    for i in range(lo, hi):
        d = pts - pts[i]
        # cross[j, k] = dx_j * dy_k - dy_j * dx_k over ALL pairs.
        cross = np.outer(d[:, 0], d[:, 1]) - np.outer(d[:, 1], d[:, 0])
        hits = np.triu(np.abs(cross) < 1e-9, k=1)
        # Pairs involving i itself are degenerate (d[i] == 0): every pair
        # (i, k) and (j, i) registers as a hit; subtract them.
        total += int(hits.sum()) - (m - 1)
    count[0] += total


def collinear_region(device: str = "CLOUD") -> TargetRegion:
    """Count collinear point triples with a ``reduction(+: count)`` clause."""
    return TargetRegion(
        name="collinear",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: points[:2*M]) map(tofrom: count[0:1])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for reduction(+: count)",
                loop_var="i",
                trip_count="M",
                reads=("points",),
                writes=("count",),
                body=_collinear_tile,
                # ~4 flops per (j, k) pair; every anchor scans all pairs.
                flops_per_iter=lambda i, env: 4.0 * env["M"] ** 2,
            )
        ],
        memory_intensity=0.05,
    )


def collinear_inputs(m: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    """``density`` selects the point distribution seed family only: the
    benchmark's payload is small either way (the paper's point)."""
    del density
    return {
        "points": random_points(m, seed=seed),
        "count": np.zeros(1, dtype=np.int64),
    }


def collinear_reference(arrays: Mapping[str, np.ndarray], scalars) -> dict[str, np.ndarray]:
    """Independent oracle: enumerate unordered triples (i < j < k) and count
    the collinear ones; the kernel reports each such triple 3 times."""
    m = int(scalars["M"])
    pts = arrays["points"].reshape(m, 2).astype(np.float64)
    triples = 0
    for i in range(m):
        for j in range(i + 1, m):
            dj = pts[j] - pts[i]
            dk = pts[j + 1 :] - pts[i]
            cross = dj[0] * dk[:, 1] - dj[1] * dk[:, 0]
            triples += int((np.abs(cross) < 1e-9).sum())
    base = int(arrays["count"][0])
    return {"count": np.array([base + 3 * triples], dtype=np.int64)}
