"""Polybench kernels (SYRK, SYR2K, COVAR, GEMM, 2MM, 3MM) as target regions.

All kernels follow the paper's conventions: float32, linearized matrices,
annotated with ``target device(CLOUD)`` + ``map`` pragmas, with the
partitioning extension on the row-distributed variables.  SYRK, SYR2K and
COVAR use the rectangular PolyBench/GPU iteration shapes (each row costs the
same), matching the "previously adapted for the OpenMP accelerator model"
versions the paper benchmarks and keeping Algorithm 1's static tiles
balanced.  2MM and
3MM are regions with *multiple* parallel loops — "successive map-reduce
transformations within the Spark job" — whose intermediates are region-local
buffers that never cross the WAN.

COVAR note: the data matrix is stored column-major (``data[j*N+k]`` is
element (k, j)) so that one column is one contiguous block, which is what
makes the centering loop partitionable with the paper's contiguous-range
extension.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.api import ParallelLoop, TargetRegion
from repro.workloads.datagen import matrix_for_density

# --------------------------------------------------------------------- GEMM


def _gemm_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    alpha, beta = scalars["alpha"], scalars["beta"]
    bm = np.asarray(arrays["B"]).reshape(n, n)
    at = np.asarray(arrays["A"][lo * n : hi * n]).reshape(hi - lo, n)
    ct = np.asarray(arrays["C"][lo * n : hi * n]).reshape(hi - lo, n)
    arrays["C"][lo * n : hi * n] = (alpha * (at @ bm) + beta * ct).reshape(-1)


def gemm_region(device: str = "CLOUD") -> TargetRegion:
    """C = alpha*A*B + beta*C."""
    return TargetRegion(
        name="gemm",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], B[:N*N]) map(tofrom: C[:N*N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "B", "C"),
                writes=("C",),
                partition_pragma=(
                    "omp target data map(to: A[i*N:(i+1)*N]) "
                    "map(tofrom: C[i*N:(i+1)*N])"
                ),
                body=_gemm_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2 + 2.0 * env["N"],
            )
        ],
        memory_intensity=1.0,
    )


def gemm_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "B": matrix_for_density(n * n, density, seed + 1),
        "C": matrix_for_density(n * n, density, seed + 2),
    }


def gemm_reference(arrays: Mapping[str, np.ndarray], scalars: Mapping[str, float]) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a = arrays["A"].reshape(n, n)
    b = arrays["B"].reshape(n, n)
    c = arrays["C"].reshape(n, n)
    out = scalars["alpha"] * (a @ b) + scalars["beta"] * c
    return {"C": out.astype(np.float32).reshape(-1)}


# --------------------------------------------------------------------- SYRK


def _syrk_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    alpha, beta = scalars["alpha"], scalars["beta"]
    am = np.asarray(arrays["A"]).reshape(n, n)
    c = arrays["C"]
    for i in range(lo, hi):
        row = np.asarray(c[i * n : (i + 1) * n])
        row[:] = beta * row + alpha * (am @ am[i])


def syrk_region(device: str = "CLOUD") -> TargetRegion:
    """C = alpha*A*A^T + beta*C, full matrix (the PolyBench/GPU form used by
    accelerator-model adaptations; every row costs the same, so static tiles
    stay balanced)."""
    return TargetRegion(
        name="syrk",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N]) map(tofrom: C[:N*N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "C"),
                writes=("C",),
                partition_pragma="omp target data map(tofrom: C[i*N:(i+1)*N])",
                body=_syrk_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2 + env["N"],
            )
        ],
        memory_intensity=1.0,
    )


def syrk_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "C": matrix_for_density(n * n, density, seed + 1),
    }


def syrk_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a = arrays["A"].reshape(n, n)
    c0 = arrays["C"].reshape(n, n)
    alpha, beta = scalars["alpha"], scalars["beta"]
    out = alpha * (a @ a.T) + beta * c0
    return {"C": out.astype(np.float32).reshape(-1)}


# -------------------------------------------------------------------- SYR2K


def _syr2k_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    alpha, beta = scalars["alpha"], scalars["beta"]
    am = np.asarray(arrays["A"]).reshape(n, n)
    bm = np.asarray(arrays["B"]).reshape(n, n)
    c = arrays["C"]
    for i in range(lo, hi):
        row = np.asarray(c[i * n : (i + 1) * n])
        row[:] = beta * row + alpha * (am @ bm[i]) + alpha * (bm @ am[i])


def syr2k_region(device: str = "CLOUD") -> TargetRegion:
    """C = alpha*(A*B^T + B*A^T) + beta*C, full matrix (PolyBench/GPU form)."""
    return TargetRegion(
        name="syr2k",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], B[:N*N]) map(tofrom: C[:N*N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "B", "C"),
                writes=("C",),
                partition_pragma="omp target data map(tofrom: C[i*N:(i+1)*N])",
                body=_syr2k_tile,
                flops_per_iter=lambda i, env: 4.0 * env["N"] ** 2 + 2.0 * env["N"],
            )
        ],
        memory_intensity=1.0,
    )


def syr2k_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "B": matrix_for_density(n * n, density, seed + 1),
        "C": matrix_for_density(n * n, density, seed + 2),
    }


def syr2k_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a = arrays["A"].reshape(n, n)
    b = arrays["B"].reshape(n, n)
    c0 = arrays["C"].reshape(n, n)
    alpha, beta = scalars["alpha"], scalars["beta"]
    out = alpha * (a @ b.T) + alpha * (b @ a.T) + beta * c0
    return {"C": out.astype(np.float32).reshape(-1)}


# -------------------------------------------------------------------- COVAR


def _covar_center_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    data = arrays["data"]
    centered = arrays["centered"]
    cols = np.asarray(data[lo * n : hi * n]).reshape(hi - lo, n)
    means = cols.mean(axis=1, keepdims=True, dtype=np.float32)
    centered[lo * n : hi * n] = (cols - means).reshape(-1)


def _covar_cov_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    cm = np.asarray(arrays["centered"]).reshape(n, n)
    cov = arrays["cov"]
    denom = np.float32(scalars["N"] - 1)
    for i in range(lo, hi):
        cov[i * n : (i + 1) * n] = (cm @ cm[i]) / denom


def covar_region(device: str = "CLOUD") -> TargetRegion:
    """Covariance (column-major data layout); each row of cov is computed in
    full (symmetric entries recomputed rather than mirrored) so rows stay
    independent and partitionable, as accelerator-model adaptations do."""
    return TargetRegion(
        name="covar",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: data[:N*N]) map(from: cov[:N*N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="j",
                trip_count="N",
                reads=("data",),
                writes=("centered",),
                partition_pragma=(
                    "omp target data map(to: data[j*N:(j+1)*N]) "
                    "map(from: centered[j*N:(j+1)*N])"
                ),
                body=_covar_center_tile,
                flops_per_iter=lambda j, env: 2.0 * env["N"],
            ),
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("centered",),
                writes=("cov",),
                partition_pragma="omp target data map(from: cov[i*N:(i+1)*N])",
                body=_covar_cov_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2 + env["N"],
            ),
        ],
        locals_={"centered": "N*N"},
        memory_intensity=1.0,
    )


def covar_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "data": matrix_for_density(n * n, density, seed),
        "cov": np.zeros(n * n, dtype=np.float32),
    }


def covar_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    dm = arrays["data"].reshape(n, n)  # row j is column j of the data
    cm = (dm - dm.mean(axis=1, keepdims=True, dtype=np.float32)).astype(np.float32)
    cov = (cm @ cm.T) / np.float32(n - 1)
    return {"cov": cov.astype(np.float32).reshape(-1)}


# ---------------------------------------------------------------------- 2MM


def _mm_first_tile(out_name: str, a_name: str, b_name: str, scale_key: str | None):
    def tile(lo, hi, arrays, scalars):
        n = int(scalars["N"])
        bm = np.asarray(arrays[b_name]).reshape(n, n)
        at = np.asarray(arrays[a_name][lo * n : hi * n]).reshape(hi - lo, n)
        prod = at @ bm
        if scale_key is not None:
            prod = scalars[scale_key] * prod
        arrays[out_name][lo * n : hi * n] = prod.reshape(-1)

    return tile


def _mm2_second_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    cm = np.asarray(arrays["C"]).reshape(n, n)
    tt = np.asarray(arrays["tmp"][lo * n : hi * n]).reshape(hi - lo, n)
    dt = np.asarray(arrays["D"][lo * n : hi * n]).reshape(hi - lo, n)
    arrays["D"][lo * n : hi * n] = (tt @ cm + scalars["beta"] * dt).reshape(-1)


def mm2_region(device: str = "CLOUD") -> TargetRegion:
    """2MM: D = alpha*A*B*C + beta*D via the intermediate tmp = alpha*A*B."""
    return TargetRegion(
        name="2mm",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], B[:N*N], C[:N*N]) map(tofrom: D[:N*N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "B"),
                writes=("tmp",),
                partition_pragma=(
                    "omp target data map(to: A[i*N:(i+1)*N]) "
                    "map(from: tmp[i*N:(i+1)*N])"
                ),
                body=_mm_first_tile("tmp", "A", "B", "alpha"),
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2 + env["N"],
            ),
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("tmp", "C", "D"),
                writes=("D",),
                partition_pragma=(
                    "omp target data map(to: tmp[i*N:(i+1)*N]) "
                    "map(tofrom: D[i*N:(i+1)*N])"
                ),
                body=_mm2_second_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2 + 2.0 * env["N"],
            ),
        ],
        locals_={"tmp": "N*N"},
        memory_intensity=1.0,
    )


def mm2_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "B": matrix_for_density(n * n, density, seed + 1),
        "C": matrix_for_density(n * n, density, seed + 2),
        "D": matrix_for_density(n * n, density, seed + 3),
    }


def mm2_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a, b = arrays["A"].reshape(n, n), arrays["B"].reshape(n, n)
    c, d = arrays["C"].reshape(n, n), arrays["D"].reshape(n, n)
    tmp = (scalars["alpha"] * (a @ b)).astype(np.float32)
    out = tmp @ c + np.float32(scalars["beta"]) * d
    return {"D": out.astype(np.float32).reshape(-1)}


# ---------------------------------------------------------------------- 3MM


def _mm3_third_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    fm = np.asarray(arrays["F"]).reshape(n, n)
    et = np.asarray(arrays["E"][lo * n : hi * n]).reshape(hi - lo, n)
    arrays["G"][lo * n : hi * n] = (et @ fm).reshape(-1)


def mm3_region(device: str = "CLOUD") -> TargetRegion:
    """3MM: G = (A*B) * (C*D) via intermediates E and F."""
    return TargetRegion(
        name="3mm",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], B[:N*N], C[:N*N], D[:N*N]) map(from: G[:N*N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "B"),
                writes=("E",),
                partition_pragma=(
                    "omp target data map(to: A[i*N:(i+1)*N]) map(from: E[i*N:(i+1)*N])"
                ),
                body=_mm_first_tile("E", "A", "B", None),
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2,
            ),
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("C", "D"),
                writes=("F",),
                partition_pragma=(
                    "omp target data map(to: C[i*N:(i+1)*N]) map(from: F[i*N:(i+1)*N])"
                ),
                body=_mm_first_tile("F", "C", "D", None),
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2,
            ),
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("E", "F"),
                writes=("G",),
                partition_pragma=(
                    "omp target data map(to: E[i*N:(i+1)*N]) map(from: G[i*N:(i+1)*N])"
                ),
                body=_mm3_third_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2,
            ),
        ],
        locals_={"E": "N*N", "F": "N*N"},
        memory_intensity=1.0,
    )


def mm3_chain_regions(device: str = "CLOUD") -> tuple[TargetRegion, ...]:
    """3MM as *three separate offloads* (one region per matrix product),
    the shape a `target data` environment exists to serve: E and F cross
    between regions, so chaining them inside the environment keeps both on
    the device and re-uploads nothing; chaining them bare re-stages E and F
    over the WAN for the third product."""

    def single(name, reads, writes, body):
        to = ", ".join(f"{r}[:N*N]" for r in reads)
        return TargetRegion(
            name=name,
            pragmas=[
                f"omp target device({device})",
                f"omp map(to: {to}) map(from: {writes}[:N*N])",
            ],
            loops=[ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=reads,
                writes=(writes,),
                partition_pragma=(
                    f"omp target data map(to: {reads[0]}[i*N:(i+1)*N]) "
                    f"map(from: {writes}[i*N:(i+1)*N])"
                ),
                body=body,
                flops_per_iter=lambda i, env: 2.0 * env["N"] ** 2,
            )],
            memory_intensity=1.0,
        )

    return (
        single("3mm_e", ("A", "B"), "E", _mm_first_tile("E", "A", "B", None)),
        single("3mm_f", ("C", "D"), "F", _mm_first_tile("F", "C", "D", None)),
        single("3mm_g", ("E", "F"), "G", _mm3_third_tile),
    )


def mm3_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "B": matrix_for_density(n * n, density, seed + 1),
        "C": matrix_for_density(n * n, density, seed + 2),
        "D": matrix_for_density(n * n, density, seed + 3),
        "G": np.zeros(n * n, dtype=np.float32),
    }


def mm3_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a, b = arrays["A"].reshape(n, n), arrays["B"].reshape(n, n)
    c, d = arrays["C"].reshape(n, n), arrays["D"].reshape(n, n)
    e = (a @ b).astype(np.float32)
    f = (c @ d).astype(np.float32)
    return {"G": (e @ f).astype(np.float32).reshape(-1)}


#: Default Polybench scalar parameters.
DEFAULT_SCALARS = {"alpha": 1.5, "beta": 1.2}
