"""Benchmark workloads: Polybench + MgBench kernels as target regions.

The paper evaluates "SYRK, SYR2K, COVAR, GEMM, 2MM and 3MM from Polybench;
and Mat-mul and Collinear-list from MgBench", all on 32-bit floats with
matrices scaled to ~1 GB.  Each workload here provides:

* ``build_region()`` — the OpenMP-annotated target region (pragmas exactly in
  the paper's dialect, tile bodies in global coordinates);
* ``make_inputs(n, density, seed)`` — dense or sparse input generation;
* ``reference(...)`` — an independent NumPy oracle for correctness tests;
* a :class:`~repro.workloads.specs.WorkloadSpec` with the paper-scale problem
  size, flop model and memory intensity used by the figure benches.
"""

from repro.workloads.specs import WorkloadSpec, WORKLOADS, paper_scale_n, test_scale_n
from repro.workloads import polybench, mgbench
from repro.workloads.datagen import random_matrix, sparse_matrix, random_points

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "paper_scale_n",
    "test_scale_n",
    "polybench",
    "mgbench",
    "random_matrix",
    "sparse_matrix",
    "random_points",
]
