"""Workload registry: one spec per paper benchmark.

Problem sizes follow Section IV: "most matrices used by the benchmarks have
been scaled to about 1GB" — i.e. N = 16384 for square float32 — while
collinear-list keeps a small point list whose O(M^3) work is sized to land in
the same 8-core runtime band as the matrix kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.api import TargetRegion
from repro.workloads import mgbench, polybench

#: Square-matrix dimension giving 1 GiB float32 matrices (16384^2 * 4 B).
PAPER_N = 16384
#: Point count for collinear-list (~90 KB of input, ~1.5 h of single-core
#: work); divisible by every core count in the sweep so Algorithm 1's static
#: tiles land in exactly one wave, as the paper's power-of-two matrix sizes do.
PAPER_M = 11264

#: Small sizes for functional tests (seconds, not hours).
TEST_N = 48
TEST_M = 40


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the benches need to run one paper benchmark."""

    name: str
    figure_panel: str  # which Figure 4/5 chart this is
    build_region: Callable[..., TargetRegion]
    make_inputs: Callable[..., dict[str, np.ndarray]]
    reference: Callable[..., dict[str, np.ndarray]]
    size_var: str  # scalar holding the problem size ("N" or "M")
    paper_size: int
    test_size: int
    extra_scalars: Mapping[str, float]
    suite: str  # "polybench" | "mgbench"

    def scalars(self, size: int | None = None) -> dict[str, float]:
        out = dict(self.extra_scalars)
        out[self.size_var] = size if size is not None else self.paper_size
        return out

    def inputs(self, size: int | None = None, density: float = 1.0, seed: int = 0):
        n = size if size is not None else self.test_size
        return self.make_inputs(n, density=density, seed=seed)


WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            name="syrk",
            figure_panel="4a/5a",
            build_region=polybench.syrk_region,
            make_inputs=polybench.syrk_inputs,
            reference=polybench.syrk_reference,
            size_var="N",
            paper_size=PAPER_N,
            test_size=TEST_N,
            extra_scalars=polybench.DEFAULT_SCALARS,
            suite="polybench",
        ),
        WorkloadSpec(
            name="syr2k",
            figure_panel="4b/5b",
            build_region=polybench.syr2k_region,
            make_inputs=polybench.syr2k_inputs,
            reference=polybench.syr2k_reference,
            size_var="N",
            paper_size=PAPER_N,
            test_size=TEST_N,
            extra_scalars=polybench.DEFAULT_SCALARS,
            suite="polybench",
        ),
        WorkloadSpec(
            name="covar",
            figure_panel="4c/5c",
            build_region=polybench.covar_region,
            make_inputs=polybench.covar_inputs,
            reference=polybench.covar_reference,
            size_var="N",
            paper_size=PAPER_N,
            test_size=TEST_N,
            extra_scalars={},
            suite="polybench",
        ),
        WorkloadSpec(
            name="gemm",
            figure_panel="4d/5d",
            build_region=polybench.gemm_region,
            make_inputs=polybench.gemm_inputs,
            reference=polybench.gemm_reference,
            size_var="N",
            paper_size=PAPER_N,
            test_size=TEST_N,
            extra_scalars=polybench.DEFAULT_SCALARS,
            suite="polybench",
        ),
        WorkloadSpec(
            name="2mm",
            figure_panel="4e/5e",
            build_region=polybench.mm2_region,
            make_inputs=polybench.mm2_inputs,
            reference=polybench.mm2_reference,
            size_var="N",
            paper_size=PAPER_N,
            test_size=TEST_N,
            extra_scalars=polybench.DEFAULT_SCALARS,
            suite="polybench",
        ),
        WorkloadSpec(
            name="3mm",
            figure_panel="4f/5f",
            build_region=polybench.mm3_region,
            make_inputs=polybench.mm3_inputs,
            reference=polybench.mm3_reference,
            size_var="N",
            paper_size=PAPER_N,
            test_size=TEST_N,
            extra_scalars={},
            suite="polybench",
        ),
        WorkloadSpec(
            name="matmul",
            figure_panel="4g/5g",
            build_region=mgbench.matmul_region,
            make_inputs=mgbench.matmul_inputs,
            reference=mgbench.matmul_reference,
            size_var="N",
            paper_size=PAPER_N,
            test_size=TEST_N,
            extra_scalars={},
            suite="mgbench",
        ),
        WorkloadSpec(
            name="collinear",
            figure_panel="4h/5h",
            build_region=mgbench.collinear_region,
            make_inputs=mgbench.collinear_inputs,
            reference=mgbench.collinear_reference,
            size_var="M",
            paper_size=PAPER_M,
            test_size=TEST_M,
            extra_scalars={},
            suite="mgbench",
        ),
    )
}


def paper_scale_n(name: str) -> int:
    return WORKLOADS[name].paper_size


def test_scale_n(name: str) -> int:
    return WORKLOADS[name].test_size
