"""Input generation: dense and sparse float32 data.

"In order to evaluate the impact of the compression on performance, we have
deliberately executed the benchmarks using two types of input data: sparse
and dense matrices."  Dense matrices are uniform noise (nearly
incompressible); sparse ones keep only a small fraction of nonzeros, giving
gzip its long zero runs.
"""

from __future__ import annotations

import numpy as np

#: Nonzero fraction of the paper-style "sparse" inputs.
SPARSE_DENSITY = 0.05


def random_matrix(n_elements: int, seed: int = 0, lo: float = -1.0, hi: float = 1.0) -> np.ndarray:
    """A dense linearized float32 matrix of ``n_elements`` values."""
    if n_elements < 0:
        raise ValueError(f"negative element count {n_elements!r}")
    rng = np.random.default_rng(seed)
    return rng.uniform(lo, hi, size=n_elements).astype(np.float32)


def sparse_matrix(n_elements: int, density: float = SPARSE_DENSITY, seed: int = 0) -> np.ndarray:
    """A linearized float32 matrix with ~``density`` nonzero entries."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density!r}")
    rng = np.random.default_rng(seed)
    out = np.zeros(n_elements, dtype=np.float32)
    nnz = int(round(n_elements * density))
    if nnz:
        idx = rng.choice(n_elements, size=nnz, replace=False)
        out[idx] = rng.uniform(-1.0, 1.0, size=nnz).astype(np.float32)
    return out


def matrix_for_density(n_elements: int, density: float, seed: int = 0) -> np.ndarray:
    """Dense when ``density`` ~1, sparse otherwise."""
    if density >= 0.999:
        return random_matrix(n_elements, seed=seed)
    return sparse_matrix(n_elements, density=density, seed=seed)


def random_points(
    n_points: int,
    seed: int = 0,
    collinear_fraction: float = 0.2,
    grid: int = 64,
) -> np.ndarray:
    """2-D points for collinear-list, interleaved [x0, y0, x1, y1, ...].

    A fraction of points snaps to a small integer grid so that exactly-
    collinear triples actually occur (random reals are almost never
    collinear), mirroring MgBench's integer-coordinate inputs.
    """
    if n_points < 0:
        raise ValueError(f"negative point count {n_points!r}")
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, float(grid), size=(n_points, 2))
    n_snap = int(round(n_points * collinear_fraction))
    if n_snap:
        idx = rng.choice(n_points, size=n_snap, replace=False)
        pts[idx] = rng.integers(0, grid // 8, size=(n_snap, 2)).astype(float)
    return pts.astype(np.float32).reshape(-1)
