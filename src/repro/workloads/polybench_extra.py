"""Additional Polybench/GPU kernels beyond the paper's benchmark set.

The ompcloud project supported more of Polybench than the six kernels the
paper evaluates; these four matrix-vector kernels (ATAX, BICG, MVT, GESUMMV)
exercise corners the paper's set does not: multiple *small* outputs, two
independent outputs per loop, and regions whose second loop reduces over a
local produced by the first.  They are registered in
:data:`EXTRA_WORKLOADS` (suite ``polybench-extra``) and covered by the same
oracle tests, but do not appear in the Figure 4/5 benches.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import ParallelLoop, TargetRegion
from repro.workloads.datagen import matrix_for_density
from repro.workloads.specs import WorkloadSpec

# ---------------------------------------------------------------------- ATAX


def _atax_first_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    x = np.asarray(arrays["x"])
    rows = np.asarray(arrays["A"][lo * n : hi * n]).reshape(hi - lo, n)
    arrays["tmp"][lo:hi] = rows @ x


def _atax_second_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    am = np.asarray(arrays["A"]).reshape(n, n)
    tmp = np.asarray(arrays["tmp"])
    # y[j] = sum_i A[i][j] * tmp[i] for j in [lo, hi): columns of A.
    arrays["y"][lo:hi] = am[:, lo:hi].T @ tmp


def atax_region(device: str = "CLOUD") -> TargetRegion:
    """y = A^T (A x): two loops, the second reading the first's local."""
    return TargetRegion(
        name="atax",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], x[:N]) map(from: y[:N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "x"),
                writes=("tmp",),
                partition_pragma=(
                    "omp target data map(to: A[i*N:(i+1)*N]) map(from: tmp[i:i+1])"
                ),
                body=_atax_first_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"],
            ),
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="j",
                trip_count="N",
                reads=("A", "tmp"),
                writes=("y",),
                partition_pragma="omp target data map(from: y[j:j+1])",
                body=_atax_second_tile,
                flops_per_iter=lambda j, env: 2.0 * env["N"],
            ),
        ],
        locals_={"tmp": "N"},
        memory_intensity=1.0,
    )


def atax_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "x": matrix_for_density(n, 1.0, seed + 1),
        "y": np.zeros(n, dtype=np.float32),
    }


def atax_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a = arrays["A"].reshape(n, n)
    tmp = (a @ arrays["x"]).astype(np.float32)
    return {"y": (a.T @ tmp).astype(np.float32)}


# ---------------------------------------------------------------------- BICG


def _bicg_q_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    p = np.asarray(arrays["p"])
    rows = np.asarray(arrays["A"][lo * n : hi * n]).reshape(hi - lo, n)
    arrays["q"][lo:hi] = rows @ p


def _bicg_s_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    am = np.asarray(arrays["A"]).reshape(n, n)
    r = np.asarray(arrays["r"])
    arrays["s"][lo:hi] = am[:, lo:hi].T @ r


def bicg_region(device: str = "CLOUD") -> TargetRegion:
    """BiCG sub-kernel: q = A p and s = A^T r — two independent outputs."""
    return TargetRegion(
        name="bicg",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], p[:N], r[:N]) map(from: q[:N], s[:N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "p"),
                writes=("q",),
                partition_pragma=(
                    "omp target data map(to: A[i*N:(i+1)*N]) map(from: q[i:i+1])"
                ),
                body=_bicg_q_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"],
            ),
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="j",
                trip_count="N",
                reads=("A", "r"),
                writes=("s",),
                partition_pragma="omp target data map(from: s[j:j+1])",
                body=_bicg_s_tile,
                flops_per_iter=lambda j, env: 2.0 * env["N"],
            ),
        ],
        memory_intensity=1.0,
    )


def bicg_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "p": matrix_for_density(n, 1.0, seed + 1),
        "r": matrix_for_density(n, 1.0, seed + 2),
        "q": np.zeros(n, dtype=np.float32),
        "s": np.zeros(n, dtype=np.float32),
    }


def bicg_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a = arrays["A"].reshape(n, n)
    return {
        "q": (a @ arrays["p"]).astype(np.float32),
        "s": (a.T @ arrays["r"]).astype(np.float32),
    }


# ----------------------------------------------------------------------- MVT


def _mvt_x1_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    y1 = np.asarray(arrays["y1"])
    rows = np.asarray(arrays["A"][lo * n : hi * n]).reshape(hi - lo, n)
    x1 = arrays["x1"]
    x1[lo:hi] = np.asarray(x1[lo:hi]) + rows @ y1


def _mvt_x2_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    am = np.asarray(arrays["A"]).reshape(n, n)
    y2 = np.asarray(arrays["y2"])
    x2 = arrays["x2"]
    x2[lo:hi] = np.asarray(x2[lo:hi]) + am[:, lo:hi].T @ y2


def mvt_region(device: str = "CLOUD") -> TargetRegion:
    """x1 += A y1; x2 += A^T y2 (tofrom vector outputs)."""
    return TargetRegion(
        name="mvt",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], y1[:N], y2[:N]) map(tofrom: x1[:N], x2[:N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "y1", "x1"),
                writes=("x1",),
                partition_pragma=(
                    "omp target data map(to: A[i*N:(i+1)*N]) map(tofrom: x1[i:i+1])"
                ),
                body=_mvt_x1_tile,
                flops_per_iter=lambda i, env: 2.0 * env["N"],
            ),
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="j",
                trip_count="N",
                reads=("A", "y2", "x2"),
                writes=("x2",),
                partition_pragma="omp target data map(tofrom: x2[j:j+1])",
                body=_mvt_x2_tile,
                flops_per_iter=lambda j, env: 2.0 * env["N"],
            ),
        ],
        memory_intensity=1.0,
    )


def mvt_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "y1": matrix_for_density(n, 1.0, seed + 1),
        "y2": matrix_for_density(n, 1.0, seed + 2),
        "x1": matrix_for_density(n, 1.0, seed + 3),
        "x2": matrix_for_density(n, 1.0, seed + 4),
    }


def mvt_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a = arrays["A"].reshape(n, n)
    return {
        "x1": (arrays["x1"] + a @ arrays["y1"]).astype(np.float32),
        "x2": (arrays["x2"] + a.T @ arrays["y2"]).astype(np.float32),
    }


# ------------------------------------------------------------------- GESUMMV


def _gesummv_tile(lo, hi, arrays, scalars):
    n = int(scalars["N"])
    alpha, beta = scalars["alpha"], scalars["beta"]
    x = np.asarray(arrays["x"])
    a_rows = np.asarray(arrays["A"][lo * n : hi * n]).reshape(hi - lo, n)
    b_rows = np.asarray(arrays["B"][lo * n : hi * n]).reshape(hi - lo, n)
    arrays["y"][lo:hi] = alpha * (a_rows @ x) + beta * (b_rows @ x)


def gesummv_region(device: str = "CLOUD") -> TargetRegion:
    """y = alpha*A*x + beta*B*x, both matrices row-partitioned."""
    return TargetRegion(
        name="gesummv",
        pragmas=[
            f"omp target device({device})",
            "omp map(to: A[:N*N], B[:N*N], x[:N]) map(from: y[:N])",
        ],
        loops=[
            ParallelLoop(
                pragma="omp parallel for",
                loop_var="i",
                trip_count="N",
                reads=("A", "B", "x"),
                writes=("y",),
                partition_pragma=(
                    "omp target data map(to: A[i*N:(i+1)*N], B[i*N:(i+1)*N]) "
                    "map(from: y[i:i+1])"
                ),
                body=_gesummv_tile,
                flops_per_iter=lambda i, env: 4.0 * env["N"],
            )
        ],
        memory_intensity=1.0,
    )


def gesummv_inputs(n: int, density: float = 1.0, seed: int = 0) -> dict[str, np.ndarray]:
    return {
        "A": matrix_for_density(n * n, density, seed),
        "B": matrix_for_density(n * n, density, seed + 1),
        "x": matrix_for_density(n, 1.0, seed + 2),
        "y": np.zeros(n, dtype=np.float32),
    }


def gesummv_reference(arrays, scalars) -> dict[str, np.ndarray]:
    n = int(scalars["N"])
    a = arrays["A"].reshape(n, n)
    b = arrays["B"].reshape(n, n)
    out = scalars["alpha"] * (a @ arrays["x"]) + scalars["beta"] * (b @ arrays["x"])
    return {"y": out.astype(np.float32)}


#: Extension workloads: same spec interface, excluded from the figure benches.
EXTRA_WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            name="atax", figure_panel="-", build_region=atax_region,
            make_inputs=atax_inputs, reference=atax_reference,
            size_var="N", paper_size=16384, test_size=48,
            extra_scalars={}, suite="polybench-extra",
        ),
        WorkloadSpec(
            name="bicg", figure_panel="-", build_region=bicg_region,
            make_inputs=bicg_inputs, reference=bicg_reference,
            size_var="N", paper_size=16384, test_size=48,
            extra_scalars={}, suite="polybench-extra",
        ),
        WorkloadSpec(
            name="mvt", figure_panel="-", build_region=mvt_region,
            make_inputs=mvt_inputs, reference=mvt_reference,
            size_var="N", paper_size=16384, test_size=48,
            extra_scalars={}, suite="polybench-extra",
        ),
        WorkloadSpec(
            name="gesummv", figure_panel="-", build_region=gesummv_region,
            make_inputs=gesummv_inputs, reference=gesummv_reference,
            size_var="N", paper_size=16384, test_size=48,
            extra_scalars={"alpha": 1.5, "beta": 1.2}, suite="polybench-extra",
        ),
    )
}
