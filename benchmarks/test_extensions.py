"""Extension experiments beyond the paper's figures.

1. **The JVM array ceiling** — Section IV: "we were limited by the maximal
   size of the arrays supported by the Java Virtual Machine".  We sweep the
   matrix size upward and locate the exact wall.
2. **Cost efficiency** — the paper's pay-as-you-go motivation, quantified:
   dollars per run versus core count, with EC2's hour-rounded billing.
   More cores are *not* always cheaper-per-run once the runtime drops below
   the billing hour.
3. **Problem-size scaling** — speedups at 256 cores across matrix sizes:
   small problems are overhead-dominated ("the problem to be solved has to
   be sufficiently complex", Section III-D).
"""

import pytest

from repro.core.api import offload
from repro.core.buffers import ExecutionMode
from repro.core.plugin_cloud import CloudDevice
from repro.core.runtime import OffloadRuntime
from repro.metrics.figures import demo_config, run_point
from repro.metrics.sweep import cheapest_point, fastest_point, sweep, to_csv
from repro.metrics.tables import format_table
from repro.spark.serialization import JVM_MAX_ARRAY_BYTES, JavaArrayLimitError
from repro.workloads import WORKLOADS

from benchmarks.conftest import emit


def test_extension_jvm_array_ceiling(benchmark, out_dir):
    """Find the largest square float32 matrix a JVM byte[] can hold and show
    the offload failing exactly one step past it."""
    spec = WORKLOADS["matmul"]
    limit_elems = JVM_MAX_ARRAY_BYTES // 4
    n_max = int(limit_elems ** 0.5)  # largest N with N*N*4 <= cap

    def probe(n):
        rt = OffloadRuntime()
        rt.register(CloudDevice(demo_config(), physical_cores=256))
        return offload(spec.build_region("CLOUD"), scalars=spec.scalars(n),
                       runtime=rt, mode=ExecutionMode.MODELED)

    report = benchmark(probe, n_max)
    assert report.full_s > 0  # exactly at the cap: fine
    with pytest.raises(JavaArrayLimitError):
        probe(n_max + 1)
    emit(out_dir, "extension_jvm_limit.txt", format_table(
        ["N", "matrix bytes", "outcome"],
        [[n_max, n_max * n_max * 4, "runs"],
         [n_max + 1, (n_max + 1) ** 2 * 4, "JavaArrayLimitError"]],
        title="Extension 1: the JVM array ceiling the paper hit "
              f"(cap = {JVM_MAX_ARRAY_BYTES} bytes)",
    ))


def test_extension_cost_efficiency(benchmark, out_dir):
    """Dollars per GEMM run vs cores: hour-rounded billing makes the middle
    of the sweep the cheapest, not the fastest end."""
    rows = benchmark(sweep, ["gemm"], (8, 16, 32, 64, 128, 256))
    emit(out_dir, "extension_cost.txt", format_table(
        ["cores", "full (min)", "cost $"],
        [[r.cores, r.full_s / 60.0, r.cost_usd] for r in rows],
        title="Extension 2: cost per run (16 x c3.8xlarge, hour-rounded billing)",
    ))
    fastest = fastest_point(rows)
    cheapest = cheapest_point(rows)
    assert fastest.cores == 256  # speed always wants all the cores...
    # ...but the cost curve is flat once every run fits in one billed hour:
    one_hour_runs = [r for r in rows if r.full_s <= 3600.0]
    assert len(one_hour_runs) >= 2
    assert cheapest.cost_usd == min(r.cost_usd for r in rows)
    assert all(r.cost_usd == one_hour_runs[0].cost_usd for r in one_hour_runs)


def test_extension_problem_size_scaling(benchmark, out_dir):
    """Speedup at 256 cores across problem sizes: small problems drown in
    offloading overhead — the application-domain caveat of Section III-D."""
    sizes = (1024, 2048, 4096, 8192, 16384)

    def run():
        return [run_point("gemm", 256, 1.0, size=n) for n in sizes]

    points = benchmark(run)
    emit(out_dir, "extension_size_scaling.txt", format_table(
        ["N", "matrix MB", "full speedup", "computation speedup"],
        [[n, n * n * 4 / 1e6, p.speedup_full, p.speedup_computation]
         for n, p in zip(sizes, points)],
        title="Extension 3: GEMM speedup at 256 cores vs problem size",
    ))
    fulls = [p.speedup_full for p in points]
    assert fulls == sorted(fulls)  # bigger problems amortize the overheads
    assert fulls[0] < 0.35 * fulls[-1]  # small N: overhead-dominated


def test_extension_sweep_csv_export(benchmark, out_dir):
    rows = benchmark(sweep, ["collinear"], (8, 256))
    text = to_csv(rows)
    assert text.splitlines()[0].startswith("workload,cores")
    assert len(text.splitlines()) == 3
    (out_dir / "extension_sweep.csv").write_text(text)


def test_extension_wan_sensitivity(benchmark, out_dir):
    """Model-robustness check: how sensitive is the headline full-speedup to
    the one constant we know least about, the WAN bandwidth?  The qualitative
    conclusions must not hinge on the exact megabits of the authors' uplink."""
    import dataclasses

    from repro.perfmodel.calibration import DEFAULT_CALIBRATION

    def run_with_wan(multiplier):
        cal = dataclasses.replace(
            DEFAULT_CALIBRATION,
            wan_capacity_bps=DEFAULT_CALIBRATION.wan_capacity_bps * multiplier,
            wan_stream_cap_bps=DEFAULT_CALIBRATION.wan_stream_cap_bps * multiplier,
        )
        spec = WORKLOADS["2mm"]
        runtime = OffloadRuntime()
        runtime.register(CloudDevice(demo_config(), physical_cores=256,
                                     calibration=cal))
        report = offload(spec.build_region("CLOUD"), scalars=spec.scalars(),
                         runtime=runtime, mode=ExecutionMode.MODELED)
        from repro.perfmodel.compute import ComputeModel

        seq = ComputeModel(cal).sequential_time(2 * 2.0 * 16384**3 + 3 * 16384**2)
        return report, seq / report.full_s, seq / report.computation_s

    rows = []
    for mult in (0.5, 1.0, 2.0, 4.0):
        report, s_full, s_comp = run_with_wan(mult)
        rows.append([f"{mult:.1f}x", report.host_comm_s, s_full, s_comp])
    benchmark(run_with_wan, 1.0)
    emit(out_dir, "extension_wan_sensitivity.txt", format_table(
        ["WAN bandwidth", "host-comm s", "full speedup", "computation speedup"],
        rows,
        title="Extension 4: sensitivity of 2MM@256 (dense) to the WAN constant",
    ))
    fulls = [r[2] for r in rows]
    comps = [r[3] for r in rows]
    # Full speedup improves with bandwidth but stays bounded by the cluster...
    assert fulls == sorted(fulls)
    assert fulls[-1] < comps[-1]
    # ...and the computation curve is bandwidth-independent.
    assert max(comps) - min(comps) < 1e-6
    # Orderings hold across the whole 8x bandwidth range: the reproduction's
    # qualitative claims do not hinge on this constant.
    assert fulls[0] > 0.3 * fulls[-1]
