"""Shared helpers for the figure-regeneration benches.

Each bench regenerates one artifact of the paper's evaluation at full paper
scale (1 GB matrices, 16 c3.8xlarge workers, 8..256 cores) using the modeled
execution mode, asserts the *shape* properties the paper reports, and writes
the regenerated rows to ``benchmarks/out/`` (also printed; use ``pytest -s``
to see them live).
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/out/."""
    print()
    print(text)
    (out_dir / name).write_text(text + "\n")
